//! Graphviz (DOT) export of the analyzed call graph.
//!
//! "Ideally, we would like to print the call graph of the program, but we
//! are limited by the two-dimensional nature of our output devices"
//! (§5.2) — and by the character terminals of 1982. This module is the
//! escape hatch the authors did not have: the analyzed graph, with arc
//! counts, per-arc time flows, cycle membership, and heat shading, in a
//! format modern layout tools consume.

use std::fmt::Write as _;

use graphprof_callgraph::NodeId;

use crate::gprof::Analysis;

fn quote(name: &str) -> String {
    format!("\"{}\"", name.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders the analysis as a DOT digraph.
///
/// * Each routine node shows its self and total seconds and percentage,
///   shaded by how hot it is.
/// * Cycle members are grouped into `cluster_cycleN` subgraphs.
/// * Arc labels carry traversal counts; edge weight scales with the time
///   flowing along the arc. Static-only arcs are dashed; intra-cycle arcs
///   are gray (they never propagate time).
/// * The virtual `<spontaneous>` caller is omitted.
///
/// The output is deterministic: nodes and arcs appear in graph order.
pub fn render_dot(analysis: &Analysis) -> String {
    let graph = analysis.graph();
    let scc = analysis.scc();
    let prop = analysis.propagation();
    let spontaneous = analysis.spontaneous_node();
    let cps = analysis.cycles_per_second();
    let total_seconds = analysis.total_seconds().max(f64::MIN_POSITIVE);

    let mut out = String::new();
    out.push_str("digraph callgraph {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=box, style=filled, fontname=\"monospace\"];\n");

    // Group cycle members into clusters, numbered to match the profile.
    let mut cycles: Vec<_> = scc.cycles();
    cycles.sort_by(|&a, &b| {
        prop.comp_total(b).partial_cmp(&prop.comp_total(a)).expect("times are finite")
    });

    let node_line = |node: NodeId| -> String {
        let self_seconds = prop.node_self(node) / cps;
        let node_total = prop.node_total(node) / cps;
        let percent = 100.0 * node_total / total_seconds;
        // Shade by heat: 0% -> white, 100% -> strong gray.
        let shade = (95.0 - percent.clamp(0.0, 100.0) * 0.6) as u32;
        format!(
            "  {} [label=\"{}\\nself {:.3}s  total {:.3}s ({:.1}%)\", fillcolor=\"gray{}\"];\n",
            quote(graph.name(node)),
            graph.name(node),
            self_seconds,
            node_total,
            percent,
            shade.clamp(35, 100),
        )
    };

    let mut clustered = vec![false; graph.node_count()];
    for (i, &comp) in cycles.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_cycle{} {{", i + 1);
        let _ = writeln!(out, "    label=\"cycle {}\";", i + 1);
        out.push_str("    color=red;\n");
        for &member in scc.members(comp) {
            out.push_str(&format!("  {}", node_line(member)));
            clustered[member.index()] = true;
        }
        out.push_str("  }\n");
    }
    for node in graph.nodes() {
        if node == spontaneous || clustered[node.index()] {
            continue;
        }
        out.push_str(&node_line(node));
    }

    for (id, arc) in graph.arcs() {
        if arc.from == spontaneous {
            continue;
        }
        let flow_seconds = prop.arc_flow(id) / cps;
        let mut attrs = vec![format!("label=\"{}\"", arc.count)];
        if arc.is_static_only() {
            attrs.push("style=dashed".to_string());
        }
        if scc.comp(arc.from) == scc.comp(arc.to) {
            attrs.push("color=gray".to_string());
        } else if flow_seconds > 0.0 {
            let width = 1.0 + 4.0 * (flow_seconds / total_seconds).clamp(0.0, 1.0);
            attrs.push(format!("penwidth={width:.2}"));
        }
        let _ = writeln!(
            out,
            "  {} -> {} [{}];",
            quote(graph.name(arc.from)),
            quote(graph.name(arc.to)),
            attrs.join(", "),
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gprof::analyze;
    use graphprof_machine::CompileOptions;
    use graphprof_monitor::profiler::profile_to_completion;

    fn analysis_for(source: &str) -> Analysis {
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 5).unwrap();
        analyze(&exe, &gmon).unwrap()
    }

    #[test]
    fn dot_contains_nodes_arcs_and_counts() {
        let analysis = analysis_for(
            "routine main { loop 7 { call leaf } }
             routine leaf { work 100 }",
        );
        let dot = render_dot(&analysis);
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("\"main\""));
        assert!(dot.contains("\"leaf\""));
        assert!(dot.contains("\"main\" -> \"leaf\" [label=\"7\""), "{dot}");
        assert!(!dot.contains("<spontaneous>"));
    }

    #[test]
    fn cycles_become_clusters() {
        let analysis = analysis_for(
            "routine main { setcounter 7, 9 call ping }
             routine ping { work 10 callwhile 7, pong }
             routine pong { work 10 callwhile 7, ping }",
        );
        let dot = render_dot(&analysis);
        assert!(dot.contains("subgraph cluster_cycle1"), "{dot}");
        assert!(dot.contains("label=\"cycle 1\""));
        // Intra-cycle arcs are gray.
        let intra =
            dot.lines().find(|l| l.contains("\"ping\" -> \"pong\"")).expect("intra arc present");
        assert!(intra.contains("color=gray"), "{intra}");
    }

    #[test]
    fn static_only_arcs_are_dashed() {
        let analysis = analysis_for(
            "routine main { call used callwhile 7, rare }
             routine used { work 50 }
             routine rare { work 50 }",
        );
        let dot = render_dot(&analysis);
        let line =
            dot.lines().find(|l| l.contains("\"main\" -> \"rare\"")).expect("static arc present");
        assert!(line.contains("style=dashed"), "{line}");
        assert!(line.contains("label=\"0\""), "{line}");
    }

    #[test]
    fn output_is_deterministic() {
        let source = "routine main { call a call b }
                      routine a { work 60 }
                      routine b { work 40 }";
        let a = render_dot(&analysis_for(source));
        let b = render_dot(&analysis_for(source));
        assert_eq!(a, b);
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        // Routine names from the assembler are identifiers, but the
        // renderer must stay safe for any graph.
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("a\\b"), "\"a\\\\b\"");
    }
}
