//! Annotated listings: the profile projected back onto the code.
//!
//! The paper's §2 taxonomy distinguishes profiles "presented in tabular
//! form, often in parallel with a listing of the source code". prof(1)
//! had `-a` for exactly this; here the "source" is the executable's
//! disassembly, and each instruction is annotated with the samples that
//! landed on it and its share of total time. Because `work` occupies the
//! program counter for its whole duration, hot spots show up on the
//! instruction that caused them — including monitoring overhead on the
//! `mcount` prologues themselves.

use std::fmt::Write as _;

use graphprof_machine::{DecodeError, Executable};
use graphprof_monitor::Histogram;

/// One annotated instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedInst {
    /// The instruction's address.
    pub addr: graphprof_machine::Addr,
    /// Rendered instruction text.
    pub text: String,
    /// Samples attributed to this instruction's byte range.
    pub samples: f64,
    /// Percent of all in-range samples.
    pub percent: f64,
}

/// An annotated routine: its instructions with sample attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedRoutine {
    /// Routine name.
    pub name: String,
    /// Samples over the whole routine.
    pub samples: f64,
    /// Percent of all in-range samples.
    pub percent: f64,
    /// The instructions, in address order.
    pub instructions: Vec<AnnotatedInst>,
}

/// An annotated listing of the whole executable.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedListing {
    routines: Vec<AnnotatedRoutine>,
    total_samples: u64,
}

impl AnnotatedListing {
    /// The routines, in address order.
    pub fn routines(&self) -> &[AnnotatedRoutine] {
        &self.routines
    }

    /// Total in-range samples in the histogram.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Finds a routine's annotation by name.
    pub fn routine(&self, name: &str) -> Option<&AnnotatedRoutine> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// Renders the listing; instructions that attracted no samples are
    /// shown without numbers so the hot spots stand out.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "annotated listing ({} samples):", self.total_samples);
        for routine in &self.routines {
            let _ = writeln!(
                out,
                "\n{}: {:.0} samples ({:.1}%)",
                routine.name, routine.samples, routine.percent
            );
            for inst in &routine.instructions {
                if inst.samples > 0.0 {
                    let _ = writeln!(
                        out,
                        "  {}  {:<24} {:>8.0} {:>6.1}%",
                        inst.addr, inst.text, inst.samples, inst.percent
                    );
                } else {
                    let _ = writeln!(out, "  {}  {}", inst.addr, inst.text);
                }
            }
        }
        out
    }
}

/// Builds an annotated listing from an executable and the histogram of a
/// run of it.
///
/// With one-to-one histogram granularity the attribution is exact; with
/// coarser buckets each bucket's samples are apportioned over the
/// instructions it covers by byte overlap, mirroring the routine-level
/// assignment in [`profile`](crate::profile).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the executable text is malformed.
pub fn annotate(exe: &Executable, histogram: &Histogram) -> Result<AnnotatedListing, DecodeError> {
    let total_samples = histogram.total();
    let denom = if total_samples == 0 { 1.0 } else { total_samples as f64 };
    // Per-byte sample density from the histogram.
    let sample_share = |lo: graphprof_machine::Addr, hi: graphprof_machine::Addr| -> f64 {
        let mut sum = 0.0;
        // Walk the buckets overlapping [lo, hi).
        for (i, count) in histogram.iter_nonzero() {
            let (bs, be) = histogram.bucket_range(i);
            let ov_lo = bs.max(lo);
            let ov_hi = be.min(hi);
            if ov_lo < ov_hi {
                let bucket_len = f64::from(be.get() - bs.get());
                let overlap = f64::from(ov_hi.get() - ov_lo.get());
                sum += count as f64 * overlap / bucket_len;
            }
        }
        sum
    };
    let mut routines = Vec::with_capacity(exe.symbols().len());
    for (id, sym) in exe.symbols().iter() {
        let mut instructions = Vec::new();
        let mut routine_samples = 0.0;
        for (addr, inst) in exe.disassemble_symbol(id)? {
            let len = graphprof_machine::encoded_len(inst);
            let samples = sample_share(addr, addr.offset(len));
            routine_samples += samples;
            instructions.push(AnnotatedInst {
                addr,
                text: inst.to_string(),
                samples,
                percent: 100.0 * samples / denom,
            });
        }
        routines.push(AnnotatedRoutine {
            name: sym.name().to_string(),
            samples: routine_samples,
            percent: 100.0 * routine_samples / denom,
            instructions,
        });
    }
    Ok(AnnotatedListing { routines, total_samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::CompileOptions;
    use graphprof_monitor::profiler::profile_to_completion;

    fn listing_for(source: &str, tick: u64) -> AnnotatedListing {
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), tick).unwrap();
        annotate(&exe, gmon.histogram()).unwrap()
    }

    #[test]
    fn samples_land_on_the_work_instructions() {
        let listing = listing_for(
            "routine main { work 50 call leaf work 950 }
             routine leaf { work 3000 }",
            1,
        );
        let main = listing.routine("main").unwrap();
        // The hottest instruction in main is the 950-cycle work.
        let hottest = main
            .instructions
            .iter()
            .max_by(|a, b| a.samples.partial_cmp(&b.samples).unwrap())
            .unwrap();
        assert!(hottest.text.starts_with("work 950"), "{}", hottest.text);
        let leaf = listing.routine("leaf").unwrap();
        assert!(leaf.percent > main.percent);
    }

    #[test]
    fn instruction_samples_sum_to_total() {
        let listing = listing_for(
            "routine main { loop 10 { call leaf } work 777 }
             routine leaf { work 123 }",
            3,
        );
        let sum: f64 =
            listing.routines().iter().flat_map(|r| &r.instructions).map(|i| i.samples).sum();
        assert!((sum - listing.total_samples() as f64).abs() < 1e-6);
    }

    #[test]
    fn mcount_overhead_is_visible_on_the_prologue() {
        // A call-dense routine accumulates samples on its mcount.
        let listing = listing_for(
            "routine main { loop 200 { call leaf } }
             routine leaf { work 5 }",
            1,
        );
        let leaf = listing.routine("leaf").unwrap();
        let mcount = leaf
            .instructions
            .iter()
            .find(|i| i.text == "mcount")
            .expect("profiled build has a prologue");
        let work = leaf.instructions.iter().find(|i| i.text.starts_with("work")).unwrap();
        assert!(
            mcount.samples > work.samples,
            "monitoring dominates a 5-cycle body: {} vs {}",
            mcount.samples,
            work.samples
        );
    }

    #[test]
    fn render_shows_hot_lines_with_numbers_only() {
        let listing = listing_for(
            "routine main { work 10000 ret }
             routine never { work 5 }",
            7,
        );
        let text = listing.render();
        assert!(text.contains("annotated listing"));
        let work_line = text.lines().find(|l| l.contains("work 10000")).unwrap();
        assert!(work_line.contains('%'), "{work_line}");
        let never_work = text.lines().find(|l| l.contains("work 5")).unwrap();
        assert!(!never_work.contains('%'), "{never_work}");
    }

    #[test]
    fn coarse_buckets_apportion_across_instructions() {
        let exe = graphprof_machine::asm::parse("routine main { work 100 work 100 }")
            .unwrap()
            .compile(&CompileOptions::default())
            .unwrap();
        use graphprof_machine::{Machine, MachineConfig};
        use graphprof_monitor::RuntimeProfiler;
        let mut profiler = RuntimeProfiler::with_granularity(&exe, 1, 6); // 64-byte buckets
        let config = MachineConfig { cycles_per_tick: 1, ..MachineConfig::default() };
        let mut machine = Machine::with_config(exe.clone(), config);
        machine.run(&mut profiler).unwrap();
        let gmon = profiler.finish();
        let listing = annotate(&exe, gmon.histogram()).unwrap();
        let sum: f64 =
            listing.routines().iter().flat_map(|r| &r.instructions).map(|i| i.samples).sum();
        assert!((sum - listing.total_samples() as f64).abs() < 1e-6);
        // Both work instructions got a share despite sharing a bucket.
        let main = listing.routine("main").unwrap();
        let works: Vec<&AnnotatedInst> =
            main.instructions.iter().filter(|i| i.text.starts_with("work")).collect();
        assert_eq!(works.len(), 2);
        assert!(works.iter().all(|i| i.samples > 0.0));
    }

    #[test]
    fn empty_histogram_annotates_to_zeros() {
        let exe = graphprof_machine::asm::parse("routine main { work 10 }")
            .unwrap()
            .compile(&CompileOptions::default())
            .unwrap();
        let text_len = exe.end().checked_sub(exe.base()).unwrap();
        let h = Histogram::new(exe.base(), text_len, 0);
        let listing = annotate(&exe, &h).unwrap();
        assert_eq!(listing.total_samples(), 0);
        assert_eq!(listing.routine("main").unwrap().percent, 0.0);
    }
}
