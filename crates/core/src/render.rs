//! Character-based rendering of the profiles (§5).
//!
//! "We were limited by the output devices of the time to character-based
//! formatting. We ended up with a rather dense display of the information
//! at each node, and a view of the arcs into and out of that node."
//!
//! The call graph listing follows the Figure-4 layout: parent lines above
//! the primary line, child (or cycle-member) lines below, a
//! `called/total` fraction for propagating arcs, `called+self` on the
//! primary line, and a bracketed index after every name "to help us
//! navigate the output in the visual editors becoming popular at that
//! time".

use std::fmt::Write as _;

use crate::cg::{ArcLine, CallGraphProfile, Entry};
use crate::flat::FlatProfile;

/// Renders the flat profile as text.
pub fn render_flat(flat: &FlatProfile) -> String {
    let mut out = String::new();
    out.push_str("flat profile:\n\n");
    out.push_str(" %time  cumulative      self                 self     total\n");
    out.push_str("           seconds   seconds      calls  ms/call   ms/call  name\n");
    for row in flat.rows() {
        let calls = row.calls.map(|c| c.to_string()).unwrap_or_default();
        let self_ms = row.self_ms_per_call.map(|v| format!("{v:.2}")).unwrap_or_default();
        let total_ms = row.total_ms_per_call.map(|v| format!("{v:.2}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "{:>6.1}  {:>10.2} {:>9.2} {:>10} {:>9} {:>9}  {}",
            row.percent,
            row.cumulative_seconds,
            row.self_seconds,
            calls,
            self_ms,
            total_ms,
            row.name,
        );
    }
    let _ = writeln!(out, "\ntotal: {:.2} seconds", flat.total_seconds());
    if !flat.never_called().is_empty() {
        out.push_str("\nroutines never called:\n");
        let _ = writeln!(out, "    {}", flat.never_called().join(", "));
    }
    out
}

/// The explanation of the call-graph-profile fields that gprof prints
/// ahead of the listing (its `-b` flag suppresses it). Line-for-line
/// paraphrase of §5.2 and Figure 4's caption.
pub fn render_legend() -> &'static str {
    "\
Each entry of the call graph profile describes one routine, between rules.
The primary line is the routine itself:
  index        where the routine appears in the listing; bracketed
               references after names navigate to that entry
  %time        the share of total time accounted to this routine and its
               descendants (the listing is sorted on this)
  self         seconds spent in the routine itself
  descendants  seconds propagated to the routine from the routines it
               calls, each callee's time shared among its callers in
               proportion to their call counts
  called+self  times called from other routines, plus self-recursive calls
               (recursive calls are listed but never propagate time)
Lines above the primary line are parents; their self/descendants columns
show the share of THIS routine's time each parent receives, and called/total
gives this parent's calls over all non-recursive calls to the routine.
Lines below are children; their columns show the share of each child's time
this routine receives, over the child's total non-recursive calls.
Cycles are single entities: a <cycle N as a whole> entry lists the members
in place of children, with their calls from within the cycle; calls among
members never propagate time. Arcs discovered only in the program text
appear with a count of zero and propagate nothing.
<spontaneous> marks activations with no identifiable caller.
"
}

/// Renders the complete call graph profile as text.
pub fn render_call_graph(profile: &CallGraphProfile) -> String {
    let all: Vec<&Entry> = profile.entries().iter().collect();
    render_call_graph_entries(&all)
}

/// Renders a selected subset of entries (after filtering) as text.
pub fn render_call_graph_entries(entries: &[&Entry]) -> String {
    let mut out = String::new();
    out.push_str("call graph profile:\n\n");
    out.push_str("                                         called/total      parents\n");
    out.push_str("index  %time     self  descendants   called+self     name      index\n");
    out.push_str("                                         called/total      children\n\n");
    for entry in entries {
        for parent in &entry.parents {
            render_arc_line(&mut out, parent);
        }
        let calls = if entry.calls.recursive > 0 {
            format!("{}+{}", entry.calls.external, entry.calls.recursive)
        } else {
            entry.calls.external.to_string()
        };
        let _ = writeln!(
            out,
            "[{:<4}{:>7.1} {:>8.2} {:>12.2} {:>13}     {} [{}]",
            format!("{}]", entry.index),
            entry.percent,
            entry.self_seconds,
            entry.desc_seconds,
            calls,
            entry.name,
            entry.index,
        );
        for child in &entry.children {
            render_arc_line(&mut out, child);
        }
        out.push_str("-----------------------------------------------------------------\n");
    }
    out
}

fn render_arc_line(out: &mut String, line: &ArcLine) {
    let calls = match line.denom {
        Some(denom) => format!("{}/{}", line.count, denom),
        None => line.count.to_string(),
    };
    let index = line.entry_index.map(|i| format!(" [{i}]")).unwrap_or_default();
    let _ = writeln!(
        out,
        "            {:>8.2} {:>12.2} {:>13}         {}{}",
        line.self_seconds, line.desc_seconds, calls, line.name, index,
    );
}

#[cfg(test)]
mod tests {
    use crate::cg::{ArcLine, CallGraphProfile, CallsDisplay, Entry, EntryKind};
    use graphprof_callgraph::{propagate, CallGraph, NodeId, SccResult};

    use super::*;

    fn sample_profile() -> (crate::flat::FlatProfile, CallGraphProfile) {
        let mut graph = CallGraph::with_nodes(["main", "worker", "idle"]);
        let spont = graph.add_node("<spontaneous>");
        let main = NodeId::new(0);
        let worker = NodeId::new(1);
        graph.add_arc(spont, main, 1);
        graph.add_arc(main, worker, 12);
        let self_cycles = [2.5e6, 7.5e6, 0.0, 0.0];
        let scc = SccResult::analyze(&graph);
        let prop = propagate(&graph, &scc, &self_cycles);
        let flat = crate::flat::FlatProfile::build(
            &graph,
            spont,
            &self_cycles,
            &prop,
            &[true, true, true, false],
            1e6,
        );
        let cg = CallGraphProfile::build(&graph, spont, &scc, &prop, &self_cycles, 1e6);
        (flat, cg)
    }

    #[test]
    fn flat_render_contains_rows_and_total() {
        let (flat, _) = sample_profile();
        let text = render_flat(&flat);
        assert!(text.contains("flat profile:"));
        assert!(text.contains("worker"));
        assert!(text.contains("75.0"));
        assert!(text.contains("total: 10.00 seconds"));
        assert!(text.contains("routines never called:"));
        assert!(text.contains("idle"));
    }

    #[test]
    fn call_graph_render_shows_primary_and_arc_lines() {
        let (_, cg) = sample_profile();
        let text = render_call_graph(&cg);
        assert!(text.contains("call graph profile:"));
        // Primary line of main with its index.
        assert!(text.contains("main [1]"), "{text}");
        // worker as a child of main with 12/12.
        assert!(text.contains("12/12"), "{text}");
        // Separator after each entry.
        assert!(text.matches("-----").count() >= 2);
        // <spontaneous> has no index.
        assert!(text.contains("<spontaneous>\n"), "{text}");
    }

    #[test]
    fn recursive_calls_render_with_plus() {
        let entry = Entry {
            index: 2,
            kind: EntryKind::Routine(NodeId::new(0)),
            name: "EXAMPLE".to_string(),
            cycle: None,
            percent: 41.5,
            self_seconds: 0.5,
            desc_seconds: 3.0,
            calls: CallsDisplay { external: 10, recursive: 4 },
            parents: vec![ArcLine {
                name: "CALLER1".to_string(),
                node: None,
                entry_index: Some(7),
                cycle: None,
                self_seconds: 0.2,
                desc_seconds: 1.2,
                count: 4,
                denom: Some(10),
            }],
            children: vec![],
        };
        let text = render_call_graph_entries(&[&entry]);
        assert!(text.contains("10+4"), "{text}");
        assert!(text.contains("4/10"), "{text}");
        assert!(text.contains("EXAMPLE [2]"), "{text}");
        assert!(text.contains("CALLER1 [7]"), "{text}");
        assert!(text.contains("41.5"), "{text}");
    }

    #[test]
    fn legend_explains_every_column() {
        let legend = render_legend();
        for term in [
            "index",
            "%time",
            "self",
            "descendants",
            "called+self",
            "parents",
            "children",
            "cycle",
            "<spontaneous>",
        ] {
            assert!(legend.contains(term), "missing {term}");
        }
    }

    #[test]
    fn intra_cycle_lines_render_bare_counts() {
        let entry = Entry {
            index: 3,
            kind: EntryKind::Routine(NodeId::new(0)),
            name: "x <cycle1>".to_string(),
            cycle: Some(1),
            percent: 10.0,
            self_seconds: 1.0,
            desc_seconds: 0.0,
            calls: CallsDisplay { external: 99, recursive: 0 },
            parents: vec![ArcLine {
                name: "y <cycle1>".to_string(),
                node: None,
                entry_index: Some(4),
                cycle: Some(1),
                self_seconds: 0.0,
                desc_seconds: 0.0,
                count: 99,
                denom: None,
            }],
            children: vec![],
        };
        let text = render_call_graph_entries(&[&entry]);
        // A bare count with no slash for the intra-cycle arc line:
        // the line containing "y <cycle1>" must show "99" without "/".
        let line = text.lines().find(|l| l.contains("y <cycle1>")).unwrap();
        assert!(line.contains("99"));
        assert!(!line.contains('/'), "{line}");
    }
}
