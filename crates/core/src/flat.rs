//! The flat profile (§5.1).
//!
//! "The flat profile consists of a list of all the routines that are
//! called during execution of the program, with the count of the number of
//! times they are called and the number of seconds of execution time for
//! which they are themselves accountable. The routines are listed in
//! decreasing order of execution time. A list of the routines that are
//! never called during execution of the program is also available [...]
//! Notice that for this profile, the individual times sum to the total
//! execution time."

use graphprof_callgraph::{CallGraph, NodeId, Propagation};

/// One row of the flat profile: a passive data record.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatRow {
    /// Routine name.
    pub name: String,
    /// Graph node of the routine.
    pub node: NodeId,
    /// Percentage of total execution time spent in the routine itself.
    pub percent: f64,
    /// Running sum of self seconds down the sorted listing.
    pub cumulative_seconds: f64,
    /// Seconds the routine is itself accountable for.
    pub self_seconds: f64,
    /// Number of times the routine was called (all recorded arcs in,
    /// including recursive calls); `None` when the routine was compiled
    /// without profiling, so no call counts exist.
    pub calls: Option<u64>,
    /// Average self milliseconds per call, when calls were counted.
    pub self_ms_per_call: Option<f64>,
    /// Average total (self + descendants) milliseconds per call.
    pub total_ms_per_call: Option<f64>,
}

/// The flat profile: rows sorted by decreasing self time, plus the
/// never-called listing.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatProfile {
    rows: Vec<FlatRow>,
    never_called: Vec<String>,
    total_seconds: f64,
}

impl FlatProfile {
    /// Builds the flat profile. Public for the same reason as
    /// [`CallGraphProfile::build`](crate::CallGraphProfile::build):
    /// experiments assemble profiles from synthetic graphs.
    ///
    /// `self_cycles` is indexed by node; `instrumented[i]` says whether
    /// node `i`'s routine carries a profiling prologue (uninstrumented
    /// routines display no call counts). The virtual `spontaneous` node is
    /// skipped entirely.
    pub fn build(
        graph: &CallGraph,
        spontaneous: NodeId,
        self_cycles: &[f64],
        propagation: &Propagation,
        instrumented: &[bool],
        cycles_per_second: f64,
    ) -> FlatProfile {
        let total_cycles: f64 =
            graph.nodes().filter(|&n| n != spontaneous).map(|n| self_cycles[n.index()]).sum();
        let total_seconds = total_cycles / cycles_per_second;
        let mut rows = Vec::new();
        let mut never_called = Vec::new();
        for node in graph.nodes() {
            if node == spontaneous {
                continue;
            }
            let self_seconds = self_cycles[node.index()] / cycles_per_second;
            let calls_in = graph.calls_into(node);
            if calls_in == 0 && self_seconds == 0.0 {
                never_called.push(graph.name(node).to_string());
                continue;
            }
            let calls = instrumented[node.index()].then_some(calls_in);
            let per_call =
                |seconds: f64| calls.filter(|&c| c > 0).map(|c| seconds * 1e3 / c as f64);
            rows.push(FlatRow {
                name: graph.name(node).to_string(),
                node,
                percent: if total_cycles > 0.0 {
                    100.0 * self_cycles[node.index()] / total_cycles
                } else {
                    0.0
                },
                cumulative_seconds: 0.0, // filled after sorting
                self_seconds,
                calls,
                self_ms_per_call: per_call(self_seconds),
                total_ms_per_call: per_call(propagation.node_total(node) / cycles_per_second),
            });
        }
        rows.sort_by(|a, b| {
            b.self_seconds
                .partial_cmp(&a.self_seconds)
                .expect("self times are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut cumulative = 0.0;
        for row in &mut rows {
            cumulative += row.self_seconds;
            row.cumulative_seconds = cumulative;
        }
        never_called.sort_unstable();
        FlatProfile { rows, never_called, total_seconds }
    }

    /// The rows, in decreasing self-time order.
    pub fn rows(&self) -> &[FlatRow] {
        &self.rows
    }

    /// Routines never called (and never sampled) during the execution,
    /// "to verify that nothing important is omitted by this execution".
    pub fn never_called(&self) -> &[String] {
        &self.never_called
    }

    /// Total execution time in seconds; the rows' self times sum to this.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// Finds a row by routine name.
    pub fn row(&self, name: &str) -> Option<&FlatRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_callgraph::{propagate, SccResult};

    fn build_fixture() -> FlatProfile {
        // main(5s) -> hot(60s) x3, main -> cold(35s) x1, ghost never called.
        let mut graph = CallGraph::with_nodes(["main", "hot", "cold", "ghost"]);
        let spont = graph.add_node("<spontaneous>");
        let main = NodeId::new(0);
        let hot = NodeId::new(1);
        let cold = NodeId::new(2);
        graph.add_arc(spont, main, 1);
        graph.add_arc(main, hot, 3);
        graph.add_arc(main, cold, 1);
        let self_cycles = [5e6, 60e6, 35e6, 0.0, 0.0];
        let scc = SccResult::analyze(&graph);
        let prop = propagate(&graph, &scc, &self_cycles);
        FlatProfile::build(
            &graph,
            spont,
            &self_cycles,
            &prop,
            &[true, true, true, true, false],
            1e6,
        )
    }

    #[test]
    fn rows_sorted_by_decreasing_self_time() {
        let flat = build_fixture();
        let names: Vec<_> = flat.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["hot", "cold", "main"]);
    }

    #[test]
    fn self_times_sum_to_total() {
        let flat = build_fixture();
        let sum: f64 = flat.rows().iter().map(|r| r.self_seconds).sum();
        assert!((sum - flat.total_seconds()).abs() < 1e-9);
        assert!((flat.total_seconds() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_is_a_running_sum() {
        let flat = build_fixture();
        assert!((flat.rows()[0].cumulative_seconds - 60.0).abs() < 1e-9);
        assert!((flat.rows()[1].cumulative_seconds - 95.0).abs() < 1e-9);
        assert!((flat.rows()[2].cumulative_seconds - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percents_are_relative_to_total() {
        let flat = build_fixture();
        assert!((flat.row("hot").unwrap().percent - 60.0).abs() < 1e-9);
        assert!((flat.row("main").unwrap().percent - 5.0).abs() < 1e-9);
    }

    #[test]
    fn per_call_columns() {
        let flat = build_fixture();
        let hot = flat.row("hot").unwrap();
        assert_eq!(hot.calls, Some(3));
        assert!((hot.self_ms_per_call.unwrap() - 20_000.0).abs() < 1e-6);
        assert!((hot.total_ms_per_call.unwrap() - 20_000.0).abs() < 1e-6);
        let main = flat.row("main").unwrap();
        // main inherited everything: 100s total over 1 call.
        assert!((main.total_ms_per_call.unwrap() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn never_called_routines_are_listed_separately() {
        let flat = build_fixture();
        assert_eq!(flat.never_called(), ["ghost"]);
        assert!(flat.row("ghost").is_none());
    }

    #[test]
    fn spontaneous_node_is_hidden() {
        let flat = build_fixture();
        assert!(flat.row("<spontaneous>").is_none());
        assert!(!flat.never_called().iter().any(|n| n == "<spontaneous>"));
    }

    #[test]
    fn uninstrumented_routine_shows_no_calls() {
        let mut graph = CallGraph::with_nodes(["main", "lib"]);
        let spont = graph.add_node("<spontaneous>");
        let main = NodeId::new(0);
        let lib = NodeId::new(1);
        graph.add_arc(spont, main, 1);
        // lib gets samples but no arcs (compiled without profiling).
        let self_cycles = [10.0, 90.0, 0.0];
        let scc = SccResult::analyze(&graph);
        let prop = propagate(&graph, &scc, &self_cycles);
        let flat =
            FlatProfile::build(&graph, spont, &self_cycles, &prop, &[true, false, false], 1.0);
        let lib_row = flat.row("lib").unwrap();
        assert_eq!(lib_row.calls, None);
        assert_eq!(lib_row.self_ms_per_call, None);
        assert!(lib_row.self_seconds > 0.0);
        let _ = (main, lib);
    }

    #[test]
    fn zero_time_profile_has_zero_percents() {
        let mut graph = CallGraph::with_nodes(["main"]);
        let spont = graph.add_node("<spontaneous>");
        graph.add_arc(spont, NodeId::new(0), 1);
        let self_cycles = [0.0, 0.0];
        let scc = SccResult::analyze(&graph);
        let prop = propagate(&graph, &scc, &self_cycles);
        let flat = FlatProfile::build(&graph, spont, &self_cycles, &prop, &[true, true], 1.0);
        assert_eq!(flat.rows()[0].percent, 0.0);
        assert_eq!(flat.total_seconds(), 0.0);
    }
}
