//! Comparing profiles across optimization rounds (§6).
//!
//! "This tool is best used in an iterative approach: profiling the
//! program, eliminating one bottleneck, then finding some other part of
//! the program that begins to dominate execution time." The diff makes
//! the iteration legible: per-routine self and total deltas between two
//! analyses, rank movement in the flat profile, and routines that
//! appeared or vanished (e.g. after inline expansion, which the paper
//! warns "will also become less useful since the loss of routines will
//! make its output more granular").

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::gprof::Analysis;

/// One routine's change between two profiles: a passive data record.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineDelta {
    /// Routine name.
    pub name: String,
    /// Self seconds before (`None` if absent from the earlier profile).
    pub before_self: Option<f64>,
    /// Self seconds after (`None` if absent from the later profile —
    /// e.g. inlined away).
    pub after_self: Option<f64>,
    /// Self + descendants before.
    pub before_total: Option<f64>,
    /// Self + descendants after.
    pub after_total: Option<f64>,
    /// 1-based rank in the earlier flat profile.
    pub before_rank: Option<usize>,
    /// 1-based rank in the later flat profile.
    pub after_rank: Option<usize>,
}

impl RoutineDelta {
    /// Change in self seconds (absent sides count as zero).
    pub fn self_delta(&self) -> f64 {
        self.after_self.unwrap_or(0.0) - self.before_self.unwrap_or(0.0)
    }

    /// Change in total (self + descendants) seconds.
    pub fn total_delta(&self) -> f64 {
        self.after_total.unwrap_or(0.0) - self.before_total.unwrap_or(0.0)
    }
}

/// The comparison of two analyses of (versions of) the same program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    rows: Vec<RoutineDelta>,
    before_total: f64,
    after_total: f64,
}

impl ProfileDiff {
    /// Per-routine deltas, sorted by decreasing |self delta|.
    pub fn rows(&self) -> &[RoutineDelta] {
        &self.rows
    }

    /// Total seconds of the earlier profile.
    pub fn before_total(&self) -> f64 {
        self.before_total
    }

    /// Total seconds of the later profile.
    pub fn after_total(&self) -> f64 {
        self.after_total
    }

    /// Overall change in seconds (negative = the program got faster).
    pub fn total_delta(&self) -> f64 {
        self.after_total - self.before_total
    }

    /// Finds a routine's delta by name.
    pub fn row(&self, name: &str) -> Option<&RoutineDelta> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The hottest routine (by self time) of the later profile — the
    /// §6 "part of the program that begins to dominate".
    pub fn new_bottleneck(&self) -> Option<&RoutineDelta> {
        self.rows
            .iter()
            .filter(|r| r.after_self.is_some())
            .max_by(|a, b| a.after_self.partial_cmp(&b.after_self).expect("times are finite"))
    }

    /// Renders the diff as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile diff: {:.2}s -> {:.2}s ({:+.2}s, {:+.1}%)\n",
            self.before_total,
            self.after_total,
            self.total_delta(),
            if self.before_total > 0.0 {
                100.0 * self.total_delta() / self.before_total
            } else {
                0.0
            },
        );
        out.push_str("   self before    self after    delta     rank   name\n");
        for row in &self.rows {
            let fmt_opt = |v: Option<f64>| match v {
                Some(v) => format!("{v:.2}"),
                None => "-".to_string(),
            };
            let rank = match (row.before_rank, row.after_rank) {
                (Some(b), Some(a)) if a < b => format!("#{b}->#{a} ^"),
                (Some(b), Some(a)) if a > b => format!("#{b}->#{a} v"),
                (Some(b), Some(a)) => format!("#{b}->#{a}"),
                (Some(b), None) => format!("#{b}->gone"),
                (None, Some(a)) => format!("new->#{a}"),
                (None, None) => String::new(),
            };
            let _ = writeln!(
                out,
                "{:>14} {:>13} {:>+8.2} {:>10}   {}",
                fmt_opt(row.before_self),
                fmt_opt(row.after_self),
                row.self_delta(),
                rank,
                row.name,
            );
        }
        if let Some(next) = self.new_bottleneck() {
            let _ = writeln!(
                out,
                "\nnext bottleneck: {} ({:.2}s self)",
                next.name,
                next.after_self.unwrap_or(0.0),
            );
        }
        out
    }
}

/// Diffs two analyses.
///
/// The analyses may come from different builds of the program (routines
/// may appear or disappear); matching is by routine name.
pub fn diff_profiles(before: &Analysis, after: &Analysis) -> ProfileDiff {
    let index = |analysis: &Analysis| -> HashMap<String, (f64, f64, usize)> {
        analysis
            .flat()
            .rows()
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total = analysis
                    .call_graph()
                    .entry(&row.name)
                    .map(|e| e.total_seconds())
                    .unwrap_or(row.self_seconds);
                (row.name.clone(), (row.self_seconds, total, i + 1))
            })
            .collect()
    };
    let before_map = index(before);
    let after_map = index(after);
    let mut names: Vec<&String> = before_map.keys().chain(after_map.keys()).collect();
    names.sort_unstable();
    names.dedup();
    let mut rows: Vec<RoutineDelta> = names
        .into_iter()
        .map(|name| {
            let b = before_map.get(name);
            let a = after_map.get(name);
            RoutineDelta {
                name: name.clone(),
                before_self: b.map(|&(s, _, _)| s),
                after_self: a.map(|&(s, _, _)| s),
                before_total: b.map(|&(_, t, _)| t),
                after_total: a.map(|&(_, t, _)| t),
                before_rank: b.map(|&(_, _, r)| r),
                after_rank: a.map(|&(_, _, r)| r),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.self_delta()
            .abs()
            .partial_cmp(&a.self_delta().abs())
            .expect("times are finite")
            .then_with(|| a.name.cmp(&b.name))
    });
    ProfileDiff { rows, before_total: before.total_seconds(), after_total: after.total_seconds() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gprof::Gprof;
    use crate::options::Options;
    use graphprof_machine::CompileOptions;
    use graphprof_monitor::profiler::profile_to_completion;

    fn analysis_for(source: &str) -> Analysis {
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 1).unwrap();
        Gprof::new(Options::default().cycles_per_second(1.0)).analyze(&exe, &gmon).unwrap()
    }

    const BEFORE: &str = "
        routine main { call hot call warm }
        routine hot { work 6000 }
        routine warm { work 3000 }
    ";
    // The bottleneck got optimized; warm now dominates.
    const AFTER: &str = "
        routine main { call hot call warm }
        routine hot { work 1000 }
        routine warm { work 3000 }
    ";

    #[test]
    fn deltas_and_ranks_track_the_optimization() {
        let diff = diff_profiles(&analysis_for(BEFORE), &analysis_for(AFTER));
        assert!(diff.total_delta() < -4000.0);
        let hot = diff.row("hot").unwrap();
        assert!((hot.self_delta() + 5000.0).abs() < 10.0, "{hot:?}");
        assert_eq!(hot.before_rank, Some(1));
        assert_eq!(hot.after_rank, Some(2));
        let warm = diff.row("warm").unwrap();
        assert!(warm.self_delta().abs() < 10.0);
        assert_eq!(warm.after_rank, Some(1));
        // The §6 next bottleneck is warm.
        assert_eq!(diff.new_bottleneck().unwrap().name, "warm");
    }

    #[test]
    fn inlined_routines_show_as_gone() {
        // "after" inlines warm into main entirely.
        let after = "
            routine main { call hot work 3000 }
            routine hot { work 1000 }
        ";
        let diff = diff_profiles(&analysis_for(BEFORE), &analysis_for(after));
        let warm = diff.row("warm").unwrap();
        assert!(warm.after_self.is_none());
        assert_eq!(warm.after_rank, None);
        let main = diff.row("main").unwrap();
        assert!(main.self_delta() > 2500.0, "main absorbed warm's work");
        let text = diff.render();
        assert!(text.contains("gone"), "{text}");
    }

    #[test]
    fn new_routines_show_as_new() {
        let after = "
            routine main { call hot call warm call cache }
            routine hot { work 1000 }
            routine warm { work 3000 }
            routine cache { work 50 }
        ";
        let diff = diff_profiles(&analysis_for(BEFORE), &analysis_for(after));
        let cache = diff.row("cache").unwrap();
        assert!(cache.before_self.is_none());
        assert!(cache.after_self.is_some());
        let text = diff.render();
        assert!(text.contains("new->"), "{text}");
    }

    #[test]
    fn identical_profiles_diff_to_noise_only() {
        let a = analysis_for(BEFORE);
        let b = analysis_for(BEFORE);
        let diff = diff_profiles(&a, &b);
        assert_eq!(diff.total_delta(), 0.0);
        for row in diff.rows() {
            assert_eq!(row.self_delta(), 0.0, "{row:?}");
            assert_eq!(row.before_rank, row.after_rank);
        }
    }

    #[test]
    fn render_summarizes_direction() {
        let diff = diff_profiles(&analysis_for(BEFORE), &analysis_for(AFTER));
        let text = diff.render();
        assert!(text.contains("profile diff:"));
        assert!(text.contains("next bottleneck: warm"), "{text}");
        assert!(text.contains('^') || text.contains('v'), "rank movement shown");
    }
}
