//! Coverage reporting (§2).
//!
//! "Another view of such counters is as boolean values. One may be
//! interested that a portion of code has executed at all, for exhaustive
//! testing, or to check that one implementation of an abstraction
//! completely replaces a previous one."
//!
//! The report treats the analysis graph as the universe: routines from
//! the symbol table, arcs from the union of the dynamic call graph and
//! the statically discovered one. A statically apparent arc that was
//! never traversed is exactly the §2 signal — code that exists but did
//! not execute under this workload.

use std::fmt::Write as _;

use graphprof_callgraph::NodeId;

use crate::gprof::Analysis;

/// Coverage of one caller→callee arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArcCoverage {
    /// Caller routine name.
    pub caller: String,
    /// Callee routine name.
    pub callee: String,
    /// Traversals observed.
    pub count: u64,
}

/// A routine/arc coverage report derived from an [`Analysis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    routines_total: usize,
    executed: Vec<String>,
    never_called: Vec<String>,
    covered_arcs: usize,
    uncovered_arcs: Vec<ArcCoverage>,
}

impl CoverageReport {
    /// Total number of routines in the executable.
    pub fn routines_total(&self) -> usize {
        self.routines_total
    }

    /// Names of routines that executed (called at least once, or sampled).
    pub fn executed(&self) -> &[String] {
        &self.executed
    }

    /// Names of routines that never executed.
    pub fn never_called(&self) -> &[String] {
        &self.never_called
    }

    /// Number of known arcs that were traversed at least once.
    pub fn covered_arcs(&self) -> usize {
        self.covered_arcs
    }

    /// Known arcs never traversed by this execution, sorted by caller
    /// then callee. With the static graph enabled this is the §2
    /// exhaustiveness signal; without it the list is empty by definition.
    pub fn uncovered_arcs(&self) -> &[ArcCoverage] {
        &self.uncovered_arcs
    }

    /// Fraction of routines that executed, in `0..=1`.
    pub fn routine_coverage(&self) -> f64 {
        if self.routines_total == 0 {
            1.0
        } else {
            self.executed.len() as f64 / self.routines_total as f64
        }
    }

    /// Fraction of known arcs that were traversed, in `0..=1`.
    pub fn arc_coverage(&self) -> f64 {
        let total = self.covered_arcs + self.uncovered_arcs.len();
        if total == 0 {
            1.0
        } else {
            self.covered_arcs as f64 / total as f64
        }
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "coverage: {}/{} routines executed ({:.0}%), {}/{} known arcs traversed ({:.0}%)",
            self.executed.len(),
            self.routines_total,
            100.0 * self.routine_coverage(),
            self.covered_arcs,
            self.covered_arcs + self.uncovered_arcs.len(),
            100.0 * self.arc_coverage(),
        );
        if !self.never_called.is_empty() {
            let _ = writeln!(out, "\nroutines never executed:");
            let _ = writeln!(out, "    {}", self.never_called.join(", "));
        }
        if !self.uncovered_arcs.is_empty() {
            let _ = writeln!(out, "\ncalls apparent in the code but never made:");
            for arc in &self.uncovered_arcs {
                let _ = writeln!(out, "    {} -> {}", arc.caller, arc.callee);
            }
        }
        out
    }
}

/// Builds a coverage report from an analysis.
pub fn coverage(analysis: &Analysis) -> CoverageReport {
    let graph = analysis.graph();
    let spontaneous = analysis.spontaneous_node();
    let executed_node =
        |node: NodeId| graph.calls_into(node) > 0 || analysis.propagation().node_self(node) > 0.0;
    let mut executed = Vec::new();
    let mut never_called = Vec::new();
    for node in graph.nodes() {
        if node == spontaneous {
            continue;
        }
        if executed_node(node) {
            executed.push(graph.name(node).to_string());
        } else {
            never_called.push(graph.name(node).to_string());
        }
    }
    executed.sort_unstable();
    never_called.sort_unstable();
    let mut covered_arcs = 0;
    let mut uncovered_arcs = Vec::new();
    for (_, arc) in graph.arcs() {
        if arc.from == spontaneous {
            continue;
        }
        if arc.count > 0 {
            covered_arcs += 1;
        } else {
            uncovered_arcs.push(ArcCoverage {
                caller: graph.name(arc.from).to_string(),
                callee: graph.name(arc.to).to_string(),
                count: 0,
            });
        }
    }
    uncovered_arcs.sort_by(|a, b| (&a.caller, &a.callee).cmp(&(&b.caller, &b.callee)));
    CoverageReport {
        routines_total: executed.len() + never_called.len(),
        executed,
        never_called,
        covered_arcs,
        uncovered_arcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gprof::analyze;
    use graphprof_machine::CompileOptions;
    use graphprof_monitor::profiler::profile_to_completion;

    fn analysis_for(source: &str) -> Analysis {
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 5).unwrap();
        analyze(&exe, &gmon).unwrap()
    }

    #[test]
    fn full_coverage_program() {
        let analysis = analysis_for(
            "routine main { call a call b }
             routine a { work 100 }
             routine b { work 100 }",
        );
        let report = coverage(&analysis);
        assert_eq!(report.routine_coverage(), 1.0);
        assert_eq!(report.arc_coverage(), 1.0);
        assert!(report.never_called().is_empty());
        assert!(report.uncovered_arcs().is_empty());
        assert_eq!(report.routines_total(), 3);
    }

    #[test]
    fn dead_code_and_untraversed_arcs_are_reported() {
        let analysis = analysis_for(
            "routine main { call a callwhile 7, b }
             routine a { work 100 }
             routine b { work 100 }
             routine dead { call b }",
        );
        let report = coverage(&analysis);
        assert_eq!(report.never_called(), ["b", "dead"]);
        // Uncovered: main->b (conditional never armed) and dead->b.
        let pairs: Vec<(&str, &str)> = report
            .uncovered_arcs()
            .iter()
            .map(|a| (a.caller.as_str(), a.callee.as_str()))
            .collect();
        assert_eq!(pairs, [("dead", "b"), ("main", "b")]);
        assert!(report.routine_coverage() < 1.0);
        assert!(report.arc_coverage() < 1.0);
    }

    #[test]
    fn render_mentions_missing_pieces() {
        let analysis = analysis_for(
            "routine main { work 10 }
             routine unused { work 10 }",
        );
        let text = coverage(&analysis).render();
        assert!(text.contains("1/2 routines"));
        assert!(text.contains("unused"));
    }

    #[test]
    fn spontaneous_arcs_do_not_count() {
        let analysis = analysis_for("routine main { work 10 }");
        let report = coverage(&analysis);
        // Only real arcs counted: none here.
        assert_eq!(report.covered_arcs(), 0);
        assert_eq!(report.arc_coverage(), 1.0, "vacuously covered");
    }
}
