//! The analysis driver: from `(executable, profile data)` to profiles.

use std::collections::HashSet;

use graphprof_callgraph::{
    break_cycles_greedy, discover_arcs_with_indirect_jobs, discover_static_arcs_jobs,
    propagate_jobs, CallGraph, NodeId, Propagation, SccResult,
};
use graphprof_machine::Executable;
use graphprof_monitor::GmonData;

use crate::cg::{CallGraphProfile, Entry, EntryKind};
use crate::error::AnalyzeError;
use crate::filter::Filter;
use crate::flat::FlatProfile;
use crate::options::Options;
use crate::profile::{assign_self_cycles, build_graph};
use crate::render;

/// The gprof post-processor.
///
/// ```
/// use graphprof::{Gprof, Options};
/// use graphprof_machine::{CompileOptions, Program};
/// use graphprof_monitor::profiler::profile_to_completion;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Program::builder();
/// b.routine("main", |r| r.call_n("leaf", 10));
/// b.routine("leaf", |r| r.work(100));
/// let exe = b.build()?.compile(&CompileOptions::profiled())?;
/// let (gmon, _) = profile_to_completion(exe.clone(), 10)?;
/// let analysis = Gprof::new(Options::default()).analyze(&exe, &gmon)?;
/// let leaf = analysis.call_graph().entry("leaf").unwrap();
/// assert_eq!(leaf.calls.external, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gprof {
    options: Options,
}

impl Gprof {
    /// Creates a post-processor with the given options.
    pub fn new(options: Options) -> Self {
        Gprof { options }
    }

    /// The active options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Analyzes one profile against its executable.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalyzeError`] when the profile does not match the
    /// executable, the text cannot be disassembled, or an option names an
    /// unknown routine.
    pub fn analyze(&self, exe: &Executable, gmon: &GmonData) -> Result<Analysis, AnalyzeError> {
        let text_len = exe.end().checked_sub(exe.base()).expect("end >= base");
        let histogram = gmon.histogram();
        if histogram.base() != exe.base() || histogram.text_len() != text_len {
            return Err(AnalyzeError::ExecutableMismatch {
                reason: format!(
                    "profile covers {}+{}, executable is {}+{}",
                    histogram.base(),
                    histogram.text_len(),
                    exe.base(),
                    text_len
                ),
            });
        }

        // Histogram -> per-routine self time.
        let (mut self_cycles, unattributed_cycles) =
            assign_self_cycles(histogram, exe.symbols(), gmon.cycles_per_tick());

        // Arcs -> call graph (+ static arcs, optionally with indirect
        // call sites resolved by the slot dataflow).
        let mut unresolved_indirect = 0;
        let jobs = self.options.jobs.max(1);
        let static_arcs = if self.options.use_static_graph {
            if self.options.resolve_indirect {
                let discovery = discover_arcs_with_indirect_jobs(exe, jobs)?;
                unresolved_indirect = discovery.unresolved.len();
                discovery.arcs
            } else {
                discover_static_arcs_jobs(exe, jobs)?
            }
        } else {
            Vec::new()
        };
        let resolved = build_graph(exe, gmon.arcs(), &static_arcs);
        let spontaneous = resolved.spontaneous;
        let mut graph = resolved.graph;
        self_cycles.push(0.0); // the virtual spontaneous node

        // Manual arc exclusions.
        if !self.options.excluded_arcs.is_empty() {
            let mut pairs = Vec::new();
            for (from, to) in &self.options.excluded_arcs {
                let f = graph
                    .node_by_name(from)
                    .ok_or_else(|| AnalyzeError::UnknownRoutine { name: from.clone() })?;
                let t = graph
                    .node_by_name(to)
                    .ok_or_else(|| AnalyzeError::UnknownRoutine { name: to.clone() })?;
                pairs.push((f, t));
            }
            graph = graph.without_arcs(&pairs);
        }

        // Bounded heuristic cycle breaking.
        let mut removed_arcs = Vec::new();
        if let Some(bound) = self.options.auto_break_cycles {
            let outcome = break_cycles_greedy(&graph, bound);
            if !outcome.removed.is_empty() {
                graph = graph.without_arcs(&outcome.removed);
                removed_arcs = outcome
                    .removed
                    .iter()
                    .map(|&(f, t)| (graph.name(f).to_string(), graph.name(t).to_string()))
                    .collect();
            }
        }

        let scc = SccResult::analyze(&graph);
        let propagation = propagate_jobs(&graph, &scc, &self_cycles, jobs);

        let mut instrumented: Vec<bool> = exe.symbols().iter().map(|(_, s)| s.profiled()).collect();
        instrumented.push(false); // spontaneous node

        let flat = FlatProfile::build(
            &graph,
            spontaneous,
            &self_cycles,
            &propagation,
            &instrumented,
            self.options.cycles_per_second,
        );
        let callgraph = CallGraphProfile::build(
            &graph,
            spontaneous,
            &scc,
            &propagation,
            &self_cycles,
            self.options.cycles_per_second,
        );

        Ok(Analysis {
            options: self.options.clone(),
            flat,
            callgraph,
            graph,
            scc,
            propagation,
            spontaneous,
            removed_arcs,
            unattributed_seconds: unattributed_cycles / self.options.cycles_per_second,
            dropped_arcs: resolved.dropped_arcs,
            unresolved_indirect,
        })
    }
}

/// Analyzes with default [`Options`].
///
/// # Errors
///
/// See [`Gprof::analyze`].
pub fn analyze(exe: &Executable, gmon: &GmonData) -> Result<Analysis, AnalyzeError> {
    Gprof::default().analyze(exe, gmon)
}

/// A completed analysis: both profiles plus the underlying graph data.
#[derive(Debug, Clone)]
pub struct Analysis {
    options: Options,
    flat: FlatProfile,
    callgraph: CallGraphProfile,
    graph: CallGraph,
    scc: SccResult,
    propagation: Propagation,
    spontaneous: NodeId,
    removed_arcs: Vec<(String, String)>,
    unattributed_seconds: f64,
    dropped_arcs: u64,
    unresolved_indirect: usize,
}

impl Analysis {
    /// The flat profile (§5.1).
    pub fn flat(&self) -> &FlatProfile {
        &self.flat
    }

    /// The call graph profile (§5.2).
    pub fn call_graph(&self) -> &CallGraphProfile {
        &self.callgraph
    }

    /// The merged call graph the analysis ran over (after exclusions).
    pub fn graph(&self) -> &CallGraph {
        &self.graph
    }

    /// The cycle structure.
    pub fn scc(&self) -> &SccResult {
        &self.scc
    }

    /// The raw propagation results.
    pub fn propagation(&self) -> &Propagation {
        &self.propagation
    }

    /// The cycles the propagation pass collapses, as canonical
    /// routine-name sets: each multi-member strongly connected
    /// component becomes a lexicographically sorted name list, and the
    /// list of lists is sorted by first member. The spontaneous-caller
    /// node never appears. `graphprof analyze` computes the same shape
    /// from Tarjan SCCs over the static graph, so differential tests
    /// can pin the two pipelines against each other.
    pub fn cycle_sets(&self) -> Vec<Vec<String>> {
        let mut sets: Vec<Vec<String>> = self
            .scc
            .comps()
            .filter_map(|comp| {
                let mut members: Vec<String> = self
                    .scc
                    .members(comp)
                    .iter()
                    .filter(|&&n| n != self.spontaneous)
                    .map(|&n| self.graph.name(n).to_string())
                    .collect();
                members.sort();
                (members.len() > 1).then_some(members)
            })
            .collect();
        sets.sort();
        sets
    }

    /// The virtual node standing for spontaneous callers.
    pub fn spontaneous_node(&self) -> NodeId {
        self.spontaneous
    }

    /// Arcs removed by the bounded cycle-breaking heuristic, as
    /// `(caller, callee)` names.
    pub fn removed_arcs(&self) -> &[(String, String)] {
        &self.removed_arcs
    }

    /// Sampled time that could not be attributed to any routine.
    pub fn unattributed_seconds(&self) -> f64 {
        self.unattributed_seconds
    }

    /// Dynamic arc records whose callee resolved to no routine.
    pub fn dropped_arcs(&self) -> u64 {
        self.dropped_arcs
    }

    /// Indirect call sites the static analysis could not resolve to a
    /// single callee (zero when indirect resolution was disabled).
    pub fn unresolved_indirect_sites(&self) -> usize {
        self.unresolved_indirect
    }

    /// Total program time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.flat.total_seconds()
    }

    /// The cycles→seconds conversion the analysis was displayed with.
    pub fn cycles_per_second(&self) -> f64 {
        self.options.cycles_per_second
    }

    /// The call-graph-profile entries selected by the options' filter.
    pub fn selected_entries(&self) -> Vec<&Entry> {
        let entries = self.callgraph.entries();
        match &self.options.filter {
            Filter::All => entries.iter().collect(),
            Filter::MinPercent(p) => entries.iter().filter(|e| e.percent >= *p).collect(),
            Filter::Keep(names) => entries
                .iter()
                .filter(|e| match e.kind {
                    EntryKind::Routine(node) => names.iter().any(|n| n == self.graph.name(node)),
                    EntryKind::CycleWhole(_) => false,
                })
                .collect(),
            Filter::Exclude(names) => entries
                .iter()
                .filter(|e| match e.kind {
                    EntryKind::Routine(node) => !names.iter().any(|n| n == self.graph.name(node)),
                    EntryKind::CycleWhole(_) => true,
                })
                .collect(),
            Filter::Focus(name) => {
                let Some(focus) = self.graph.node_by_name(name) else {
                    return Vec::new();
                };
                let mut keep: HashSet<NodeId> = HashSet::new();
                keep.insert(focus);
                // Descendants.
                let mut stack = vec![focus];
                while let Some(v) = stack.pop() {
                    for &a in self.graph.out_arcs(v) {
                        let w = self.graph.arc(a).to;
                        if keep.insert(w) {
                            stack.push(w);
                        }
                    }
                }
                // Ancestors.
                let mut stack = vec![focus];
                let mut seen: HashSet<NodeId> = HashSet::new();
                seen.insert(focus);
                while let Some(v) = stack.pop() {
                    for &a in self.graph.in_arcs(v) {
                        let w = self.graph.arc(a).from;
                        if seen.insert(w) {
                            keep.insert(w);
                            stack.push(w);
                        }
                    }
                }
                entries
                    .iter()
                    .filter(|e| match e.kind {
                        EntryKind::Routine(node) => keep.contains(&node),
                        EntryKind::CycleWhole(comp) => {
                            self.scc.members(comp).iter().any(|m| keep.contains(m))
                        }
                    })
                    .collect()
            }
        }
    }

    /// A one-paragraph summary of the analysis: totals, entry counts,
    /// cycles, and anything dropped or unattributed.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:.2} seconds across {} routines ({} never called); {} cycle(s)",
            self.total_seconds(),
            self.flat.rows().len() + self.flat.never_called().len(),
            self.flat.never_called().len(),
            self.callgraph.cycle_count(),
        );
        if self.unattributed_seconds > 0.0 {
            let _ = writeln!(
                out,
                "{:.2} seconds sampled outside any routine",
                self.unattributed_seconds
            );
        }
        if self.dropped_arcs > 0 {
            let _ = writeln!(out, "{} arc record(s) resolved to no routine", self.dropped_arcs);
        }
        if self.unresolved_indirect > 0 {
            let _ = writeln!(
                out,
                "{} indirect call site(s) not statically resolvable",
                self.unresolved_indirect
            );
        }
        if !self.removed_arcs.is_empty() {
            let names: Vec<String> =
                self.removed_arcs.iter().map(|(a, b)| format!("{a}->{b}")).collect();
            let _ = writeln!(out, "cycle-breaking removed: {}", names.join(", "));
        }
        out
    }

    /// Renders the flat profile as text.
    pub fn render_flat(&self) -> String {
        render::render_flat(&self.flat)
    }

    /// Renders the call graph profile as text, honoring the display
    /// filter.
    pub fn render_call_graph(&self) -> String {
        render::render_call_graph_entries(&self.selected_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::CompileOptions;
    use graphprof_monitor::profiler::profile_to_completion;

    fn compile_and_profile(source: &str, tick: u64) -> (Executable, GmonData) {
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), tick).unwrap();
        (exe, gmon)
    }

    const ABSTRACTION: &str = "
        routine main { call producer call consumer }
        routine producer { loop 10 { call buffer } }
        routine consumer { loop 30 { call buffer } }
        routine buffer { work 100 }
    ";

    #[test]
    fn end_to_end_attribution() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let analysis = analyze(&exe, &gmon).unwrap();
        let buffer = analysis.call_graph().entry("buffer").unwrap();
        assert_eq!(buffer.calls.external, 40);
        // consumer gets ~3/4 of buffer's time, producer ~1/4.
        let producer = buffer.parents.iter().find(|p| p.name == "producer").unwrap();
        let consumer = buffer.parents.iter().find(|p| p.name == "consumer").unwrap();
        assert_eq!((producer.count, producer.denom), (10, Some(40)));
        assert_eq!((consumer.count, consumer.denom), (30, Some(40)));
        assert!(consumer.flow() > 2.5 * producer.flow());
        // consumer's entry total exceeds producer's.
        let p_entry = analysis.call_graph().entry("producer").unwrap();
        let c_entry = analysis.call_graph().entry("consumer").unwrap();
        assert!(c_entry.total_seconds() > p_entry.total_seconds());
    }

    #[test]
    fn mismatched_executable_is_rejected() {
        let (_, gmon) = compile_and_profile(ABSTRACTION, 10);
        let other = graphprof_machine::asm::parse("routine main { work 5 }")
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        assert!(matches!(analyze(&other, &gmon), Err(AnalyzeError::ExecutableMismatch { .. })));
    }

    #[test]
    fn unknown_excluded_routine_is_rejected() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let gprof = Gprof::new(Options::default().exclude_arc("ghost", "main"));
        assert!(matches!(gprof.analyze(&exe, &gmon), Err(AnalyzeError::UnknownRoutine { .. })));
    }

    #[test]
    fn excluding_an_arc_redirects_time() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let gprof = Gprof::new(Options::default().exclude_arc("producer", "buffer"));
        let analysis = gprof.analyze(&exe, &gmon).unwrap();
        let buffer = analysis.call_graph().entry("buffer").unwrap();
        // With producer's arc gone, consumer is the only caller and
        // inherits everything.
        assert_eq!(buffer.calls.external, 30);
        let consumer = buffer.parents.iter().find(|p| p.name == "consumer").unwrap();
        assert_eq!(consumer.denom, Some(30));
    }

    #[test]
    fn static_graph_completes_cycles() {
        // An untraversed closing arc: b's conditional call back to a sits
        // behind a counter that this run never arms, so the arc exists in
        // the text but not in the dynamic graph.
        let source = "
            routine main { call a }
            routine a { work 50 call b }
            routine b { work 50 callwhile 7, a }
        ";
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 10).unwrap();

        let with_static = analyze(&exe, &gmon).unwrap();
        assert_eq!(with_static.call_graph().cycle_count(), 1, "static arc closes the cycle");

        let without =
            Gprof::new(Options::default().static_graph(false)).analyze(&exe, &gmon).unwrap();
        assert_eq!(without.call_graph().cycle_count(), 0);
    }

    #[test]
    fn resolved_indirect_arcs_join_the_static_graph() {
        // `b`'s indirect call never runs (it sits behind a never-armed
        // conditional call chain), so no dynamic arc into `helper`
        // exists. The slot dataflow proves slot 0 can only hold
        // `helper`, so with resolution enabled the arc appears anyway —
        // the blind-spot case made visible.
        let source = "
            routine main { setslot 0, helper call a }
            routine a { work 50 callwhile 6, b }
            routine b { calli 0 }
            routine helper { work 5 }
        ";
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 10).unwrap();

        let with = analyze(&exe, &gmon).unwrap();
        let helper = with.graph().node_by_name("helper").unwrap();
        assert_eq!(with.graph().in_arcs(helper).len(), 1, "resolved arc present");
        assert_eq!(with.unresolved_indirect_sites(), 0);

        let without =
            Gprof::new(Options::default().resolve_indirect(false)).analyze(&exe, &gmon).unwrap();
        let helper = without.graph().node_by_name("helper").unwrap();
        assert!(without.graph().in_arcs(helper).is_empty(), "blind spot");
    }

    #[test]
    fn unresolved_indirect_sites_surface_in_the_summary() {
        let source = "
            routine main { setslot 0, x setslot 0, y call go }
            routine go { calli 0 }
            routine x { work 10 }
            routine y { work 10 }
        ";
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 10).unwrap();
        let analysis = analyze(&exe, &gmon).unwrap();
        assert_eq!(analysis.unresolved_indirect_sites(), 1);
        assert!(
            analysis.render_summary().contains("1 indirect call site(s) not statically resolvable"),
            "{}",
            analysis.render_summary()
        );
    }

    #[test]
    fn auto_cycle_breaking_records_removed_arcs() {
        // Terminating mutual recursion: x <-> y, bounded by a counter.
        let source = "
            routine main { setcounter 7, 20 call x }
            routine x { work 10 callwhile 7, y }
            routine y { work 10 callwhile 7, x }
        ";
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 10).unwrap();
        let plain = analyze(&exe, &gmon).unwrap();
        assert_eq!(plain.call_graph().cycle_count(), 1);

        let broken = Gprof::new(Options::default().break_cycles(4)).analyze(&exe, &gmon).unwrap();
        assert_eq!(broken.call_graph().cycle_count(), 0);
        assert!(!broken.removed_arcs().is_empty());
    }

    #[test]
    fn filters_select_entries() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let keep = Gprof::new(Options::default().filter(Filter::keep(["buffer"])))
            .analyze(&exe, &gmon)
            .unwrap();
        assert_eq!(keep.selected_entries().len(), 1);

        let focus = Gprof::new(Options::default().filter(Filter::Focus("producer".into())))
            .analyze(&exe, &gmon)
            .unwrap();
        let names: Vec<&str> = focus.selected_entries().iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"producer"));
        assert!(names.contains(&"buffer"), "descendant");
        assert!(names.contains(&"main"), "ancestor");
        assert!(!names.contains(&"consumer"), "sibling excluded: {names:?}");

        let hot = Gprof::new(Options::default().filter(Filter::MinPercent(50.0)))
            .analyze(&exe, &gmon)
            .unwrap();
        assert!(!hot.selected_entries().is_empty());
        assert!(hot.selected_entries().len() < hot.call_graph().entries().len());
    }

    #[test]
    fn exclude_filter_hides_named_entries_only() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let analysis = Gprof::new(Options::default().filter(Filter::exclude(["buffer"])))
            .analyze(&exe, &gmon)
            .unwrap();
        let names: Vec<&str> =
            analysis.selected_entries().iter().map(|e| e.name.as_str()).collect();
        assert!(!names.contains(&"buffer"), "{names:?}");
        assert!(names.contains(&"producer"));
        // buffer still shows up as a child line of its callers.
        let text = analysis.render_call_graph();
        assert!(text.contains("buffer ["), "{text}");
    }

    #[test]
    fn summary_reports_totals_and_cycles() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let analysis = analyze(&exe, &gmon).unwrap();
        let summary = analysis.render_summary();
        assert!(summary.contains("4 routines"), "{summary}");
        assert!(summary.contains("0 cycle(s)"), "{summary}");
        // With the heuristic engaged on a cyclic program, removals appear.
        let source = "
            routine main { setcounter 7, 20 call x }
            routine x { work 10 callwhile 7, y }
            routine y { work 10 callwhile 7, x }
        ";
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 10).unwrap();
        let broken = Gprof::new(Options::default().break_cycles(4)).analyze(&exe, &gmon).unwrap();
        let summary = broken.render_summary();
        assert!(summary.contains("cycle-breaking removed:"), "{summary}");
    }

    #[test]
    fn cycle_sets_are_canonical_name_sets() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        assert!(analyze(&exe, &gmon).unwrap().cycle_sets().is_empty(), "acyclic program");

        let source = "
            routine main { setcounter 7, 20 call y }
            routine y { work 10 callwhile 7, x }
            routine x { work 10 callwhile 7, y }
        ";
        let exe = graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 10).unwrap();
        let sets = analyze(&exe, &gmon).unwrap().cycle_sets();
        // Members sorted within the set regardless of call order.
        assert_eq!(sets, vec![vec!["x".to_string(), "y".to_string()]]);
    }

    #[test]
    fn focus_on_unknown_routine_selects_nothing() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let a = Gprof::new(Options::default().filter(Filter::Focus("ghost".into())))
            .analyze(&exe, &gmon)
            .unwrap();
        assert!(a.selected_entries().is_empty());
    }

    #[test]
    fn renders_are_consistent_with_filter() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let analysis = Gprof::new(Options::default().filter(Filter::keep(["buffer"])))
            .analyze(&exe, &gmon)
            .unwrap();
        let text = analysis.render_call_graph();
        assert!(text.contains("buffer"));
        // consumer still appears as a parent *line* of buffer, but gets no
        // entry of its own (no primary line, which starts with `[`).
        assert!(!text.lines().any(|l| l.starts_with('[') && l.contains("consumer")), "{text}");
        let flat = analysis.render_flat();
        assert!(flat.contains("buffer"));
    }

    #[test]
    fn self_times_sum_to_machine_clock() {
        let (exe, gmon) = compile_and_profile(ABSTRACTION, 10);
        let analysis = analyze(&exe, &gmon).unwrap();
        // Every tick lands inside a routine (the text has no gaps), so the
        // sampled total matches the flat profile total exactly.
        let sampled = gmon.sampled_cycles() as f64 / 1e6;
        assert!((analysis.total_seconds() - sampled).abs() < 1e-9);
        assert_eq!(analysis.unattributed_seconds(), 0.0);
        assert_eq!(analysis.dropped_arcs(), 0);
    }
}
