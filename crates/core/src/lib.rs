//! `graphprof` — a call graph execution profiler.
//!
//! A from-scratch reproduction of the system described in Graham, Kessler
//! & McKusick, *gprof: a Call Graph Execution Profiler* (SIGPLAN '82),
//! together with the features added in the 2003 retrospective. This crate
//! is the post-processor and presenter; the run-time half lives in
//! [`graphprof_monitor`] and the execution substrate in
//! [`graphprof_machine`].
//!
//! The pipeline (§4–§5 of the paper):
//!
//! 1. read a profile file ([`GmonData`](graphprof_monitor::GmonData)) and
//!    the executable it came from;
//! 2. charge histogram samples to routines ([`profile`]);
//! 3. build the dynamic call graph from arc records, merge in statically
//!    discovered arcs, apply arc exclusions or bounded automatic cycle
//!    breaking ([`Options`]);
//! 4. find cycles and propagate time from callees to callers
//!    (via [`graphprof_callgraph`]);
//! 5. present the [flat profile](FlatProfile) and the
//!    [call graph profile](CallGraphProfile), rendered in the paper's
//!    Figure-4 character layout ([`render`]).
//!
//! # Example
//!
//! ```
//! use graphprof::{analyze, Options};
//! use graphprof_machine::{CompileOptions, Program};
//! use graphprof_monitor::profiler::profile_to_completion;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // "Compile" a program with profiling prologues (cc -pg)...
//! let mut b = Program::builder();
//! b.routine("main", |r| r.call_n("format", 20).work(50));
//! b.routine("format", |r| r.work(200));
//! let exe = b.build()?.compile(&CompileOptions::profiled())?;
//!
//! // ...run it under the monitor (sampling every 10 cycles)...
//! let (gmon, _) = profile_to_completion(exe.clone(), 10)?;
//!
//! // ...and post-process.
//! let analysis = analyze(&exe, &gmon)?;
//! println!("{}", analysis.render_flat());
//! println!("{}", analysis.render_call_graph());
//! let format = analysis.call_graph().entry("format").unwrap();
//! assert_eq!(format.calls.external, 20);
//! # let _ = Options::default();
//! # Ok(())
//! # }
//! ```

pub mod annotate;
pub mod cg;
pub mod coverage;
pub mod diff;
pub mod dot;
mod error;
pub mod exec;
pub mod export;
pub mod filter;
pub mod flat;
mod gprof;
mod options;
pub mod profile;
pub mod render;
pub mod sum;

pub use annotate::{annotate, AnnotatedInst, AnnotatedListing, AnnotatedRoutine};
pub use cg::{ArcLine, CallGraphProfile, CallsDisplay, Entry, EntryKind};
pub use coverage::{coverage, ArcCoverage, CoverageReport};
pub use diff::{diff_profiles, ProfileDiff, RoutineDelta};
pub use dot::render_dot;
pub use error::AnalyzeError;
pub use export::{call_graph_to_tsv, flat_to_tsv};
pub use filter::Filter;
pub use flat::{FlatProfile, FlatRow};
pub use gprof::{analyze, Analysis, Gprof};
pub use options::Options;
pub use sum::{sum_profile_bytes, sum_profiles, sum_profiles_jobs, ProfileAccumulator};

// The profile-file type and its crash-recovery surface, re-exported so
// post-processing consumers can salvage a torn `gmon.out`
// ([`GmonData::from_bytes_salvage`]) without naming the monitor crate.
pub use graphprof_monitor::{GmonData, SalvageReport};
