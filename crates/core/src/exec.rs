//! The post-processor's concurrency layer.
//!
//! This is a façade over the [`graphprof_exec`] crate, which lives at
//! the bottom of the workspace dependency graph so that every pipeline
//! stage — static arc discovery and slot dataflow
//! (`graphprof-analysis`), crawling and time propagation
//! (`graphprof-callgraph`), interpreter predecode
//! (`graphprof-machine`), and profile summation (this crate) — can fan
//! work out over the same dependency-free scoped worker pool.
//!
//! The contract everywhere: **a `jobs` value never changes an output
//! byte.** [`parallel_map`] returns results in input order,
//! [`tree_reduce`] uses a fixed pairing shape, and every `_jobs` entry
//! point in the workspace preserves the serial pass's iteration and
//! accumulation order. Parallelism buys wall-clock time, nothing else.
//!
//! Worker counts resolve through [`resolve_jobs`]: an explicit request
//! (a `--jobs N` flag) wins, then the `GRAPHPROF_JOBS` environment
//! variable, then the machine's available parallelism.

pub use graphprof_exec::{
    parallel_map, resolve_jobs, tree_reduce, try_parallel_map, try_tree_reduce, JOBS_ENV,
};
