//! Analysis options.
//!
//! The knobs correspond to the features described in the paper and the
//! retrospective: incorporating the static call graph (§4), excluding a
//! user-chosen arc set or letting the bounded heuristic pick one
//! (retrospective), and display filtering (retrospective).

use crate::filter::Filter;

/// Options controlling an analysis. Construct with [`Options::default`]
/// and adjust with the builder-style methods.
///
/// ```
/// use graphprof::Options;
///
/// let options = Options::default()
///     .static_graph(true)
///     .exclude_arc("netoutput", "netinput")
///     .cycles_per_second(1_000_000.0);
/// assert_eq!(options.excluded_arcs.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Merge statically discovered arcs (traversal count zero) into the
    /// dynamic graph before cycle discovery, "so that cycles will have the
    /// same members regardless of how the program runs" (§4).
    pub use_static_graph: bool,
    /// When the static graph is in use, also run the slot dataflow and
    /// merge arcs for indirect call sites that provably reach a single
    /// callee — narrowing the §2 blind spot ("the static call graph may
    /// omit arcs to functional parameters or variables").
    pub resolve_indirect: bool,
    /// Arcs (caller name, callee name) removed from the analysis before
    /// cycle discovery — the retrospective's manual cycle-breaking option.
    pub excluded_arcs: Vec<(String, String)>,
    /// When set, run the bounded greedy cycle-breaking heuristic with this
    /// bound on the number of removed arcs, after manual exclusions.
    pub auto_break_cycles: Option<usize>,
    /// Conversion from machine cycles to displayed seconds.
    pub cycles_per_second: f64,
    /// Display filter applied by the renderers.
    pub filter: Filter,
    /// Worker threads for the parallel pipeline stages (static arc
    /// discovery, slot dataflow, time propagation). `1` keeps every
    /// stage on the calling thread; any value yields byte-identical
    /// output — see [`crate::exec`] for the contract.
    pub jobs: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            use_static_graph: true,
            resolve_indirect: true,
            excluded_arcs: Vec::new(),
            auto_break_cycles: None,
            cycles_per_second: 1_000_000.0,
            filter: Filter::All,
            jobs: 1,
        }
    }
}

impl Options {
    /// Enables or disables static call graph incorporation.
    pub fn static_graph(mut self, on: bool) -> Self {
        self.use_static_graph = on;
        self
    }

    /// Enables or disables static resolution of indirect call sites
    /// (only effective while the static graph itself is enabled).
    pub fn resolve_indirect(mut self, on: bool) -> Self {
        self.resolve_indirect = on;
        self
    }

    /// Excludes the arc from `caller` to `callee` from the analysis.
    pub fn exclude_arc(mut self, caller: impl Into<String>, callee: impl Into<String>) -> Self {
        self.excluded_arcs.push((caller.into(), callee.into()));
        self
    }

    /// Enables the bounded cycle-breaking heuristic.
    pub fn break_cycles(mut self, max_arcs: usize) -> Self {
        self.auto_break_cycles = Some(max_arcs);
        self
    }

    /// Sets the cycles→seconds display conversion.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn cycles_per_second(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "cycles_per_second must be positive");
        self.cycles_per_second = rate;
        self
    }

    /// Sets the display filter.
    pub fn filter(mut self, filter: Filter) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the worker count for the parallel pipeline stages. Clamped
    /// up to 1; the output is byte-identical at any value.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_behavior() {
        let o = Options::default();
        assert!(o.use_static_graph);
        assert!(o.resolve_indirect);
        assert!(o.excluded_arcs.is_empty());
        assert_eq!(o.auto_break_cycles, None);
        assert_eq!(o.filter, Filter::All);
        assert_eq!(o.jobs, 1);
    }

    #[test]
    fn jobs_clamps_to_at_least_one() {
        assert_eq!(Options::default().jobs(0).jobs, 1);
        assert_eq!(Options::default().jobs(8).jobs, 8);
    }

    #[test]
    fn builder_methods_compose() {
        let o = Options::default()
            .static_graph(false)
            .exclude_arc("a", "b")
            .exclude_arc("c", "d")
            .break_cycles(5);
        assert!(!o.use_static_graph);
        assert_eq!(o.excluded_arcs.len(), 2);
        assert_eq!(o.auto_break_cycles, Some(5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_is_rejected() {
        let _ = Options::default().cycles_per_second(0.0);
    }
}
