//! Machine-readable (tab-separated) exports of the profiles.
//!
//! The paper's listings were designed for humans at character terminals;
//! downstream tooling wants columns it can parse without knowing the
//! Figure-4 layout. One row per routine (flat) or per entry line (call
//! graph), tab-separated, header first, stable column order. Numeric
//! fields use plain decimal; absent values are empty fields.

use std::fmt::Write as _;

use crate::cg::{CallGraphProfile, EntryKind};
use crate::flat::FlatProfile;

fn tsv_escape(field: &str) -> String {
    // Routine names contain no tabs or newlines by construction, but the
    // export must never produce a malformed row regardless.
    field.replace(['\t', '\n'], " ")
}

/// Exports the flat profile as TSV.
///
/// Columns: `name`, `percent`, `cumulative_seconds`, `self_seconds`,
/// `calls`, `self_ms_per_call`, `total_ms_per_call`.
pub fn flat_to_tsv(flat: &FlatProfile) -> String {
    let mut out = String::from(
        "name\tpercent\tcumulative_seconds\tself_seconds\tcalls\tself_ms_per_call\ttotal_ms_per_call\n",
    );
    for row in flat.rows() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            tsv_escape(&row.name),
            row.percent,
            row.cumulative_seconds,
            row.self_seconds,
            row.calls.map(|c| c.to_string()).unwrap_or_default(),
            row.self_ms_per_call.map(|v| v.to_string()).unwrap_or_default(),
            row.total_ms_per_call.map(|v| v.to_string()).unwrap_or_default(),
        );
    }
    out
}

/// Exports the call graph profile as TSV, one row per listing line.
///
/// Columns: `entry_index`, `kind` (`primary`/`parent`/`child`), `name`,
/// `cycle`, `percent` (primary only), `self_seconds`, `desc_seconds`,
/// `count`, `denom`. Parent and child rows describe the arcs of the entry
/// whose index is in the first column.
pub fn call_graph_to_tsv(profile: &CallGraphProfile) -> String {
    let mut out = String::from(
        "entry_index\tkind\tname\tcycle\tpercent\tself_seconds\tdesc_seconds\tcount\tdenom\n",
    );
    for entry in profile.entries() {
        let cycle = entry.cycle.map(|c| c.to_string()).unwrap_or_default();
        for parent in &entry.parents {
            let _ = writeln!(
                out,
                "{}\tparent\t{}\t{}\t\t{}\t{}\t{}\t{}",
                entry.index,
                tsv_escape(&parent.name),
                parent.cycle.map(|c| c.to_string()).unwrap_or_default(),
                parent.self_seconds,
                parent.desc_seconds,
                parent.count,
                parent.denom.map(|d| d.to_string()).unwrap_or_default(),
            );
        }
        let kind = match entry.kind {
            EntryKind::Routine(_) => "primary",
            EntryKind::CycleWhole(_) => "cycle",
        };
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            entry.index,
            kind,
            tsv_escape(&entry.name),
            cycle,
            entry.percent,
            entry.self_seconds,
            entry.desc_seconds,
            entry.calls.external,
            entry.calls.recursive,
        );
        for child in &entry.children {
            let _ = writeln!(
                out,
                "{}\tchild\t{}\t{}\t\t{}\t{}\t{}\t{}",
                entry.index,
                tsv_escape(&child.name),
                child.cycle.map(|c| c.to_string()).unwrap_or_default(),
                child.self_seconds,
                child.desc_seconds,
                child.count,
                child.denom.map(|d| d.to_string()).unwrap_or_default(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gprof::{analyze, Analysis};
    use graphprof_machine::CompileOptions;
    use graphprof_monitor::profiler::profile_to_completion;

    fn analysis() -> Analysis {
        let exe = graphprof_machine::asm::parse(
            "routine main { loop 4 { call leaf } }
             routine leaf { work 500 }",
        )
        .unwrap()
        .compile(&CompileOptions::profiled())
        .unwrap();
        let (gmon, _) = profile_to_completion(exe.clone(), 5).unwrap();
        analyze(&exe, &gmon).unwrap()
    }

    #[test]
    fn flat_tsv_has_header_and_one_row_per_routine() {
        let a = analysis();
        let tsv = flat_to_tsv(a.flat());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 1 + a.flat().rows().len());
        assert!(lines[0].starts_with("name\tpercent"));
        let columns = lines[0].split('\t').count();
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), columns, "{line}");
        }
        assert!(tsv.contains("leaf\t"));
    }

    #[test]
    fn call_graph_tsv_rows_are_structurally_sound() {
        let a = analysis();
        let tsv = call_graph_to_tsv(a.call_graph());
        let lines: Vec<&str> = tsv.lines().collect();
        let columns = lines[0].split('\t').count();
        let mut primaries = 0;
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), columns, "{line}");
            if line.split('\t').nth(1) == Some("primary") {
                primaries += 1;
            }
        }
        assert_eq!(primaries, a.call_graph().entries().len());
        // leaf's parent row names main with the 4/4 fraction.
        assert!(lines.iter().any(|l| l.contains("parent\tmain") && l.ends_with("4\t4")), "{tsv}");
    }

    #[test]
    fn tsv_escape_strips_separators() {
        assert_eq!(tsv_escape("a\tb\nc"), "a b c");
    }
}
