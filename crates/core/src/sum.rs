//! Summing profile data over several runs (§3, retrospective).
//!
//! "An advantage of this approach is that the profile data for several
//! executions of a program can be combined by the post-processing to
//! provide a profile of many executions" — and, per the retrospective,
//! summation lets short-running routines "accumulate enough time [...] to
//! get an idea of their performance".

use graphprof_monitor::GmonData;

use crate::error::AnalyzeError;

/// Sums any number of profile files into one.
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, or a merge
/// mismatch when the profiles come from different executables or sampling
/// configurations.
pub fn sum_profiles<'a, I>(profiles: I) -> Result<GmonData, AnalyzeError>
where
    I: IntoIterator<Item = &'a GmonData>,
{
    let mut iter = profiles.into_iter();
    let mut acc = iter.next().ok_or(AnalyzeError::NoProfiles)?.clone();
    for p in iter {
        acc.merge(p)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::Addr;
    use graphprof_monitor::{Histogram, RawArc};

    fn profile(samples: u64, count: u64) -> GmonData {
        let mut h = Histogram::new(Addr::new(0x1000), 32, 0);
        h.record(Addr::new(0x1004), samples);
        GmonData::new(
            50,
            h,
            vec![RawArc { from_pc: Addr::NULL, self_pc: Addr::new(0x1000), count }],
        )
    }

    #[test]
    fn sums_many_runs() {
        let runs: Vec<GmonData> = (1..=4).map(|i| profile(i, 10 * i)).collect();
        let total = sum_profiles(&runs).unwrap();
        assert_eq!(total.histogram().total(), 10);
        assert_eq!(total.arcs()[0].count, 100);
    }

    #[test]
    fn single_run_is_identity() {
        let p = profile(3, 7);
        assert_eq!(sum_profiles([&p]).unwrap(), p);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            sum_profiles(std::iter::empty::<&GmonData>()).unwrap_err(),
            AnalyzeError::NoProfiles
        );
    }

    #[test]
    fn mismatched_profiles_are_rejected() {
        let a = profile(1, 1);
        let b = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        assert!(matches!(sum_profiles([&a, &b]), Err(AnalyzeError::Gmon(_))));
    }
}
