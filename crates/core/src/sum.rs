//! Summing profile data over several runs (§3, retrospective).
//!
//! "An advantage of this approach is that the profile data for several
//! executions of a program can be combined by the post-processing to
//! provide a profile of many executions" — and, per the retrospective,
//! summation lets short-running routines "accumulate enough time [...] to
//! get an idea of their performance".

use graphprof_monitor::GmonData;

use crate::error::AnalyzeError;

/// Sums any number of profile files into one.
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, or a merge
/// mismatch when the profiles come from different executables or sampling
/// configurations.
pub fn sum_profiles<'a, I>(profiles: I) -> Result<GmonData, AnalyzeError>
where
    I: IntoIterator<Item = &'a GmonData>,
{
    let mut iter = profiles.into_iter();
    let mut acc = iter.next().ok_or(AnalyzeError::NoProfiles)?.clone();
    for p in iter {
        acc.merge(p)?;
    }
    Ok(acc)
}

/// [`sum_profiles`] with an explicit worker count.
///
/// Profiles merge pairwise up a fixed-shape reduction tree spread over
/// `jobs` workers. [`GmonData::merge`] is commutative and associative —
/// sorted arc lists with integer count addition, bucket-wise histogram
/// addition — so the tree shape cannot change the result: the summed
/// profile is byte-identical to the serial left fold for every `jobs`
/// value.
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, or a merge
/// mismatch when the profiles come from different executables or
/// sampling configurations (with several mismatches, which one is
/// reported may differ from the serial fold's; whether the sum fails
/// does not).
pub fn sum_profiles_jobs(profiles: &[GmonData], jobs: usize) -> Result<GmonData, AnalyzeError> {
    reduce_profiles(profiles.to_vec(), jobs)
}

fn reduce_profiles(owned: Vec<GmonData>, jobs: usize) -> Result<GmonData, AnalyzeError> {
    let merged = graphprof_exec::try_tree_reduce(jobs, owned, |mut acc, next| {
        acc.merge(&next).map(|()| acc)
    })?;
    merged.ok_or(AnalyzeError::NoProfiles)
}

/// Parses raw `gmon.out` blobs and sums them, fanning both stages out
/// over `jobs` workers. The parse of each blob is independent; the
/// merge is the same fixed-shape reduction as [`sum_profiles_jobs`].
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, the
/// lowest-indexed blob's parse error if any blob is malformed, or a
/// merge mismatch.
pub fn sum_profile_bytes<B: AsRef<[u8]> + Sync>(
    blobs: &[B],
    jobs: usize,
) -> Result<GmonData, AnalyzeError> {
    let parsed = graphprof_exec::try_parallel_map(jobs, blobs, |_, blob| {
        GmonData::from_bytes(blob.as_ref())
    })?;
    reduce_profiles(parsed, jobs)
}

/// Incremental profile summation for long-running collectors.
///
/// A continuous-profiling server cannot afford either face of the offline
/// API: [`sum_profiles`] wants every input alive at once, and re-summing
/// from scratch on each upload is quadratic. `ProfileAccumulator` folds
/// profiles in as they arrive using the binary-counter realization of the
/// fixed-pairing reduction tree: level *k* holds the merged sum of a
/// complete, aligned block of 2^k inputs, so pushing the *n*-th profile
/// performs the same pairwise merges bottom-up that
/// [`sum_profiles_jobs`]'s tree performs all at once. Memory is
/// O(log n) partial aggregates instead of O(n) inputs.
///
/// # Determinism contract
///
/// [`GmonData::merge`] is commutative and associative — sorted arc lists
/// with integer count addition, bucket-wise histogram addition — so the
/// fold shape and arrival order cannot change a byte: for any interleaving
/// of pushes, [`ProfileAccumulator::aggregate`] is byte-identical to
/// [`sum_profiles`] (and to [`sum_profiles_jobs`] at every `jobs`) over
/// the same profiles in any order. `graphprof-serve` leans on this to
/// promise that its live aggregate equals an offline `graphprof -s` over
/// the same blobs in canonical (series, sequence-number) order.
#[derive(Debug, Clone, Default)]
pub struct ProfileAccumulator {
    /// `levels[k]` holds the sum of an aligned 2^k-input block, exactly
    /// like the bits of `count`.
    levels: Vec<Option<GmonData>>,
    count: u64,
    /// Header fields every subsequent profile must match, captured from
    /// the first push so later pushes are infallible (a mismatch is
    /// rejected before any level is touched).
    shape: Option<ProfileShape>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProfileShape {
    cycles_per_tick: u64,
    base: graphprof_machine::Addr,
    text_len: u32,
    shift: u8,
}

impl ProfileShape {
    fn of(p: &GmonData) -> ProfileShape {
        let h = p.histogram();
        ProfileShape {
            cycles_per_tick: p.cycles_per_tick(),
            base: h.base(),
            text_len: h.text_len(),
            shift: h.shift(),
        }
    }
}

impl ProfileAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        ProfileAccumulator::default()
    }

    /// Profiles folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one profile into the running sum.
    ///
    /// The compatibility check (sampling period, histogram geometry)
    /// happens before any state changes: a rejected profile leaves the
    /// accumulator exactly as it was, so a collector can keep serving the
    /// series after refusing a stray upload.
    ///
    /// # Errors
    ///
    /// Returns the same merge-mismatch error [`sum_profiles`] would for
    /// profiles from different executables or sampling configurations.
    pub fn push(&mut self, profile: GmonData) -> Result<(), AnalyzeError> {
        match self.shape {
            None => self.shape = Some(ProfileShape::of(&profile)),
            Some(shape) => {
                if shape != ProfileShape::of(&profile) {
                    // Produce the precise mismatch message a direct merge
                    // would have; the probe merge cannot mutate `probe`
                    // because GmonData::merge checks before it writes.
                    let mut probe = self
                        .levels
                        .iter()
                        .flatten()
                        .next()
                        .cloned()
                        .expect("non-empty accumulator has a level");
                    let err = probe.merge(&profile).expect_err("shape mismatch must fail");
                    return Err(AnalyzeError::Gmon(err));
                }
            }
        }
        // Binary-counter carry: merging an aligned 2^k block with its
        // sibling, earliest block on the left, bottom-up.
        let mut carry = profile;
        for level in self.levels.iter_mut() {
            match level.take() {
                None => {
                    *level = Some(carry);
                    self.count += 1;
                    return Ok(());
                }
                Some(mut earlier) => {
                    earlier.merge(&carry).expect("shape was checked");
                    carry = earlier;
                }
            }
        }
        self.levels.push(Some(carry));
        self.count += 1;
        Ok(())
    }

    /// Rebuilds an accumulator from a previously computed aggregate and
    /// the number of profiles it summed.
    ///
    /// Because [`GmonData::merge`] is commutative and associative, an
    /// accumulator holding `{aggregate}` as its only level behaves
    /// exactly like one that folded the original `count` profiles: its
    /// [`aggregate`](ProfileAccumulator::aggregate) returns the stored
    /// sum byte-for-byte, and every subsequent push merges into the same
    /// running total the original accumulator would have produced. A
    /// checkpointed collector uses this to restore a series from its
    /// snapshot and keep folding the WAL suffix on top.
    pub fn from_aggregate(aggregate: GmonData, count: u64) -> Self {
        let shape = ProfileShape::of(&aggregate);
        ProfileAccumulator { levels: vec![Some(aggregate)], count, shape: Some(shape) }
    }

    /// The sum of everything pushed so far, without consuming the
    /// accumulator (more pushes may follow).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::NoProfiles`] when nothing has been pushed.
    pub fn aggregate(&self) -> Result<GmonData, AnalyzeError> {
        let mut acc: Option<GmonData> = None;
        // Higher levels hold earlier inputs; keep them on the left.
        for level in self.levels.iter().rev().flatten() {
            match acc.as_mut() {
                None => acc = Some(level.clone()),
                Some(sum) => sum.merge(level).expect("levels share a shape"),
            }
        }
        acc.ok_or(AnalyzeError::NoProfiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::Addr;
    use graphprof_monitor::{Histogram, RawArc};

    fn profile(samples: u64, count: u64) -> GmonData {
        let mut h = Histogram::new(Addr::new(0x1000), 32, 0);
        h.record(Addr::new(0x1004), samples);
        GmonData::new(
            50,
            h,
            vec![RawArc { from_pc: Addr::NULL, self_pc: Addr::new(0x1000), count }],
        )
    }

    #[test]
    fn sums_many_runs() {
        let runs: Vec<GmonData> = (1..=4).map(|i| profile(i, 10 * i)).collect();
        let total = sum_profiles(&runs).unwrap();
        assert_eq!(total.histogram().total(), 10);
        assert_eq!(total.arcs()[0].count, 100);
    }

    #[test]
    fn single_run_is_identity() {
        let p = profile(3, 7);
        assert_eq!(sum_profiles([&p]).unwrap(), p);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            sum_profiles(std::iter::empty::<&GmonData>()).unwrap_err(),
            AnalyzeError::NoProfiles
        );
    }

    #[test]
    fn tree_reduction_is_byte_identical_to_serial_fold() {
        let runs: Vec<GmonData> = (1..=20).map(|i| profile(i, 3 * i + 1)).collect();
        let serial = sum_profiles(&runs).unwrap();
        for jobs in [1, 2, 8] {
            assert_eq!(sum_profiles_jobs(&runs, jobs).unwrap().to_bytes(), serial.to_bytes());
        }
        let blobs: Vec<Vec<u8>> = runs.iter().map(GmonData::to_bytes).collect();
        assert_eq!(sum_profile_bytes(&blobs, 8).unwrap().to_bytes(), serial.to_bytes());
    }

    #[test]
    fn parallel_sum_propagates_errors() {
        assert_eq!(sum_profiles_jobs(&[], 4).unwrap_err(), AnalyzeError::NoProfiles);
        assert_eq!(sum_profile_bytes::<Vec<u8>>(&[], 4).unwrap_err(), AnalyzeError::NoProfiles);
        let mut blobs: Vec<Vec<u8>> = (1..=6).map(|i| profile(i, i).to_bytes()).collect();
        blobs[3] = b"not a gmon file".to_vec();
        assert!(matches!(sum_profile_bytes(&blobs, 4), Err(AnalyzeError::Gmon(_))));
        let runs: Vec<GmonData> = (1..=3).map(|i| profile(i, i)).collect();
        let odd = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        let mixed = [runs, vec![odd]].concat();
        assert!(matches!(sum_profiles_jobs(&mixed, 4), Err(AnalyzeError::Gmon(_))));
    }

    #[test]
    fn accumulator_matches_offline_sum_at_every_length() {
        let runs: Vec<GmonData> = (1..=20).map(|i| profile(i, 3 * i + 1)).collect();
        let mut acc = ProfileAccumulator::new();
        assert!(acc.is_empty());
        assert_eq!(acc.aggregate().unwrap_err(), AnalyzeError::NoProfiles);
        for n in 1..=runs.len() {
            acc.push(runs[n - 1].clone()).unwrap();
            assert_eq!(acc.count(), n as u64);
            let offline = sum_profiles(&runs[..n]).unwrap();
            assert_eq!(acc.aggregate().unwrap().to_bytes(), offline.to_bytes(), "n={n}");
            for jobs in [1, 4] {
                assert_eq!(
                    sum_profiles_jobs(&runs[..n], jobs).unwrap().to_bytes(),
                    offline.to_bytes()
                );
            }
        }
    }

    #[test]
    fn accumulator_is_order_invariant() {
        let runs: Vec<GmonData> = (1..=9).map(|i| profile(i, 2 * i)).collect();
        let forward = {
            let mut acc = ProfileAccumulator::new();
            runs.iter().cloned().for_each(|p| acc.push(p).unwrap());
            acc.aggregate().unwrap().to_bytes()
        };
        let backward = {
            let mut acc = ProfileAccumulator::new();
            runs.iter().rev().cloned().for_each(|p| acc.push(p).unwrap());
            acc.aggregate().unwrap().to_bytes()
        };
        assert_eq!(forward, backward);
    }

    #[test]
    fn restored_accumulator_continues_byte_identically() {
        let runs: Vec<GmonData> = (1..=11).map(|i| profile(i, 5 * i + 2)).collect();
        for split in 1..runs.len() {
            let mut full = ProfileAccumulator::new();
            runs.iter().cloned().for_each(|p| full.push(p).unwrap());
            let mut prefix = ProfileAccumulator::new();
            runs[..split].iter().cloned().for_each(|p| prefix.push(p).unwrap());
            let mut restored =
                ProfileAccumulator::from_aggregate(prefix.aggregate().unwrap(), prefix.count());
            assert_eq!(
                restored.aggregate().unwrap().to_bytes(),
                prefix.aggregate().unwrap().to_bytes(),
                "split={split}: restore is the identity before any push"
            );
            runs[split..].iter().cloned().for_each(|p| restored.push(p).unwrap());
            assert_eq!(restored.count(), runs.len() as u64);
            assert_eq!(
                restored.aggregate().unwrap().to_bytes(),
                full.aggregate().unwrap().to_bytes(),
                "split={split}"
            );
        }
        // A restored accumulator still rejects shape mismatches.
        let mut restored = ProfileAccumulator::from_aggregate(profile(2, 2), 1);
        let odd = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        assert!(matches!(restored.push(odd), Err(AnalyzeError::Gmon(_))));
        assert_eq!(restored.count(), 1);
    }

    #[test]
    fn accumulator_rejects_mismatches_without_corrupting_state() {
        let mut acc = ProfileAccumulator::new();
        acc.push(profile(3, 7)).unwrap();
        let odd = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        assert!(matches!(acc.push(odd), Err(AnalyzeError::Gmon(_))));
        // The reject left the sum untouched and the accumulator usable.
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.aggregate().unwrap(), profile(3, 7));
        acc.push(profile(1, 1)).unwrap();
        assert_eq!(acc.count(), 2);
        assert_eq!(
            acc.aggregate().unwrap().to_bytes(),
            sum_profiles([&profile(3, 7), &profile(1, 1)]).unwrap().to_bytes()
        );
    }

    #[test]
    fn mismatched_profiles_are_rejected() {
        let a = profile(1, 1);
        let b = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        assert!(matches!(sum_profiles([&a, &b]), Err(AnalyzeError::Gmon(_))));
    }
}
