//! Summing profile data over several runs (§3, retrospective).
//!
//! "An advantage of this approach is that the profile data for several
//! executions of a program can be combined by the post-processing to
//! provide a profile of many executions" — and, per the retrospective,
//! summation lets short-running routines "accumulate enough time [...] to
//! get an idea of their performance".

use graphprof_monitor::GmonData;

use crate::error::AnalyzeError;

/// Sums any number of profile files into one.
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, or a merge
/// mismatch when the profiles come from different executables or sampling
/// configurations.
pub fn sum_profiles<'a, I>(profiles: I) -> Result<GmonData, AnalyzeError>
where
    I: IntoIterator<Item = &'a GmonData>,
{
    let mut iter = profiles.into_iter();
    let mut acc = iter.next().ok_or(AnalyzeError::NoProfiles)?.clone();
    for p in iter {
        acc.merge(p)?;
    }
    Ok(acc)
}

/// [`sum_profiles`] with an explicit worker count.
///
/// Profiles merge pairwise up a fixed-shape reduction tree spread over
/// `jobs` workers. [`GmonData::merge`] is commutative and associative —
/// sorted arc lists with integer count addition, bucket-wise histogram
/// addition — so the tree shape cannot change the result: the summed
/// profile is byte-identical to the serial left fold for every `jobs`
/// value.
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, or a merge
/// mismatch when the profiles come from different executables or
/// sampling configurations (with several mismatches, which one is
/// reported may differ from the serial fold's; whether the sum fails
/// does not).
pub fn sum_profiles_jobs(profiles: &[GmonData], jobs: usize) -> Result<GmonData, AnalyzeError> {
    reduce_profiles(profiles.to_vec(), jobs)
}

fn reduce_profiles(owned: Vec<GmonData>, jobs: usize) -> Result<GmonData, AnalyzeError> {
    let merged = graphprof_exec::try_tree_reduce(jobs, owned, |mut acc, next| {
        acc.merge(&next).map(|()| acc)
    })?;
    merged.ok_or(AnalyzeError::NoProfiles)
}

/// Parses raw `gmon.out` blobs and sums them, fanning both stages out
/// over `jobs` workers. The parse of each blob is independent; the
/// merge is the same fixed-shape reduction as [`sum_profiles_jobs`].
///
/// # Errors
///
/// Returns [`AnalyzeError::NoProfiles`] for an empty input, the
/// lowest-indexed blob's parse error if any blob is malformed, or a
/// merge mismatch.
pub fn sum_profile_bytes<B: AsRef<[u8]> + Sync>(
    blobs: &[B],
    jobs: usize,
) -> Result<GmonData, AnalyzeError> {
    let parsed = graphprof_exec::try_parallel_map(jobs, blobs, |_, blob| {
        GmonData::from_bytes(blob.as_ref())
    })?;
    reduce_profiles(parsed, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::Addr;
    use graphprof_monitor::{Histogram, RawArc};

    fn profile(samples: u64, count: u64) -> GmonData {
        let mut h = Histogram::new(Addr::new(0x1000), 32, 0);
        h.record(Addr::new(0x1004), samples);
        GmonData::new(
            50,
            h,
            vec![RawArc { from_pc: Addr::NULL, self_pc: Addr::new(0x1000), count }],
        )
    }

    #[test]
    fn sums_many_runs() {
        let runs: Vec<GmonData> = (1..=4).map(|i| profile(i, 10 * i)).collect();
        let total = sum_profiles(&runs).unwrap();
        assert_eq!(total.histogram().total(), 10);
        assert_eq!(total.arcs()[0].count, 100);
    }

    #[test]
    fn single_run_is_identity() {
        let p = profile(3, 7);
        assert_eq!(sum_profiles([&p]).unwrap(), p);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            sum_profiles(std::iter::empty::<&GmonData>()).unwrap_err(),
            AnalyzeError::NoProfiles
        );
    }

    #[test]
    fn tree_reduction_is_byte_identical_to_serial_fold() {
        let runs: Vec<GmonData> = (1..=20).map(|i| profile(i, 3 * i + 1)).collect();
        let serial = sum_profiles(&runs).unwrap();
        for jobs in [1, 2, 8] {
            assert_eq!(sum_profiles_jobs(&runs, jobs).unwrap().to_bytes(), serial.to_bytes());
        }
        let blobs: Vec<Vec<u8>> = runs.iter().map(GmonData::to_bytes).collect();
        assert_eq!(sum_profile_bytes(&blobs, 8).unwrap().to_bytes(), serial.to_bytes());
    }

    #[test]
    fn parallel_sum_propagates_errors() {
        assert_eq!(sum_profiles_jobs(&[], 4).unwrap_err(), AnalyzeError::NoProfiles);
        assert_eq!(sum_profile_bytes::<Vec<u8>>(&[], 4).unwrap_err(), AnalyzeError::NoProfiles);
        let mut blobs: Vec<Vec<u8>> = (1..=6).map(|i| profile(i, i).to_bytes()).collect();
        blobs[3] = b"not a gmon file".to_vec();
        assert!(matches!(sum_profile_bytes(&blobs, 4), Err(AnalyzeError::Gmon(_))));
        let runs: Vec<GmonData> = (1..=3).map(|i| profile(i, i)).collect();
        let odd = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        let mixed = [runs, vec![odd]].concat();
        assert!(matches!(sum_profiles_jobs(&mixed, 4), Err(AnalyzeError::Gmon(_))));
    }

    #[test]
    fn mismatched_profiles_are_rejected() {
        let a = profile(1, 1);
        let b = GmonData::new(99, Histogram::new(Addr::new(0x1000), 32, 0), vec![]);
        assert!(matches!(sum_profiles([&a, &b]), Err(AnalyzeError::Gmon(_))));
    }
}
