//! Display filtering (retrospective).
//!
//! "After using the profiles for a while we discovered the need to filter
//! the data, i.e., to show only hot functions, or only parts of the graph
//! containing certain methods."
//!
//! Filters select which entries the renderers show; they do not change the
//! analysis itself (propagation always runs over the whole graph, so the
//! numbers shown for a filtered entry are identical to the unfiltered
//! ones).

/// A display filter over call-graph-profile entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Filter {
    /// Show everything.
    #[default]
    All,
    /// Show only entries accounting for at least this percentage of total
    /// time ("only hot functions").
    MinPercent(f64),
    /// Show only the named routines' entries.
    Keep(Vec<String>),
    /// Hide the named routines' entries (they still appear as parent and
    /// child lines of others, and their times still propagate) — gprof's
    /// `-e`.
    Exclude(Vec<String>),
    /// Show the part of the graph containing the named routine: the
    /// routine itself plus everything it can reach and everything that can
    /// reach it.
    Focus(String),
}

impl Filter {
    /// Convenience constructor for [`Filter::Keep`].
    pub fn keep<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Filter::Keep(names.into_iter().map(Into::into).collect())
    }

    /// Convenience constructor for [`Filter::Exclude`].
    pub fn exclude<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Filter::Exclude(names.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all() {
        assert_eq!(Filter::default(), Filter::All);
    }

    #[test]
    fn keep_collects_names() {
        let f = Filter::keep(["a", "b"]);
        assert_eq!(f, Filter::Keep(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn exclude_collects_names() {
        let f = Filter::exclude(["x"]);
        assert_eq!(f, Filter::Exclude(vec!["x".into()]));
    }
}
