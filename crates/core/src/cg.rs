//! The call graph profile (§5.2).
//!
//! "We choose to list each routine, together with information about the
//! routines that are its direct parents and children. This listing
//! presents a window into the call graph." Each entry shows the routine's
//! self and descendant time, its call counts (self-recursive calls split
//! out, as in `10+4`), parents with the share of self and descendant time
//! propagated to each, and children with the share received from each,
//! alongside `called/total` fractions. "Cycles are handled as single
//! entities. The cycle as a whole is shown as though it were a single
//! routine, except that members of the cycle are listed in place of the
//! children."

use std::collections::HashMap;

use graphprof_callgraph::{CallGraph, CompId, NodeId, Propagation, SccResult};

/// What an entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A routine (possibly a member of a cycle).
    Routine(NodeId),
    /// A whole cycle, "as though it were a single routine".
    CycleWhole(CompId),
}

/// Call counts for an entry's primary line: displayed as
/// `external+recursive` (the `10+4` of Figure 4; the `+recursive` part is
/// omitted when zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallsDisplay {
    /// Calls from other routines (for a cycle: calls from outside it).
    pub external: u64,
    /// Self-recursive calls (for a cycle: calls among its members).
    pub recursive: u64,
}

/// One parent or child line of an entry: a passive data record.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcLine {
    /// Display name (routine name, with a ` <cycleN>` suffix for cycle
    /// members, or `<spontaneous>`).
    pub name: String,
    /// The graph node, when the line names a real routine.
    pub node: Option<NodeId>,
    /// Index of that routine's own entry in the listing, for navigation —
    /// "each name is followed by an index that shows where on the listing
    /// to find the entry for that routine".
    pub entry_index: Option<usize>,
    /// Cycle number when the named routine is a cycle member.
    pub cycle: Option<u32>,
    /// Share of self time flowing along this arc, in seconds.
    pub self_seconds: f64,
    /// Share of descendant time flowing along this arc, in seconds.
    pub desc_seconds: f64,
    /// Traversals of this arc.
    pub count: u64,
    /// The denominator of the `called/total` fraction (total external
    /// calls to the callee side); `None` for lines that never participate
    /// in propagation (arcs within a cycle), which display a bare count.
    pub denom: Option<u64>,
}

impl ArcLine {
    /// Total time flowing along the line.
    pub fn flow(&self) -> f64 {
        self.self_seconds + self.desc_seconds
    }
}

/// One entry of the call graph profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// 1-based position in the listing.
    pub index: usize,
    /// What the entry describes.
    pub kind: EntryKind,
    /// Display name.
    pub name: String,
    /// Cycle number when the routine is a cycle member (or the entry is a
    /// cycle).
    pub cycle: Option<u32>,
    /// Percentage of total time accounted to this entry (self plus
    /// descendants) — the listing's sort key.
    pub percent: f64,
    /// Self seconds.
    pub self_seconds: f64,
    /// Descendant seconds propagated from children outside the entry.
    pub desc_seconds: f64,
    /// Primary-line call counts.
    pub calls: CallsDisplay,
    /// Parent lines, in increasing order of flow.
    pub parents: Vec<ArcLine>,
    /// Child lines, in decreasing order of flow. For a cycle entry these
    /// are the member lines.
    pub children: Vec<ArcLine>,
}

impl Entry {
    /// Self plus descendant seconds.
    pub fn total_seconds(&self) -> f64 {
        self.self_seconds + self.desc_seconds
    }
}

/// The full call graph profile listing.
#[derive(Debug, Clone, PartialEq)]
pub struct CallGraphProfile {
    entries: Vec<Entry>,
    total_seconds: f64,
    cycle_count: u32,
}

impl CallGraphProfile {
    /// The entries, sorted by decreasing total (self + descendants) time.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Total program time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// Number of cycles found.
    pub fn cycle_count(&self) -> u32 {
        self.cycle_count
    }

    /// The entry for a routine, by plain name (cycle members match their
    /// name without the ` <cycleN>` suffix).
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| {
            matches!(e.kind, EntryKind::Routine(_))
                && (e.name == name
                    || e.name.starts_with(name) && e.name[name.len()..].starts_with(" <cycle"))
        })
    }

    /// The entry at a 1-based index.
    pub fn entry_at(&self, index: usize) -> Option<&Entry> {
        self.entries.get(index.checked_sub(1)?)
    }

    /// Builds the listing from an analyzed graph.
    ///
    /// This low-level constructor is what [`Gprof::analyze`] uses
    /// internally; it is public so that experiments can assemble profiles
    /// from synthetic graphs (e.g. to regenerate the paper's Figure 4
    /// without running a program). `self_cycles` is indexed by node id and
    /// must include an entry for the virtual `spontaneous` node.
    ///
    /// [`Gprof::analyze`]: crate::Gprof::analyze
    pub fn build(
        graph: &CallGraph,
        spontaneous: NodeId,
        scc: &SccResult,
        prop: &Propagation,
        self_cycles: &[f64],
        cycles_per_second: f64,
    ) -> CallGraphProfile {
        let cps = cycles_per_second;
        let total_cycles: f64 =
            graph.nodes().filter(|&n| n != spontaneous).map(|n| self_cycles[n.index()]).sum();
        let total_seconds = total_cycles / cps;
        let percent_of = |cycles: f64| {
            if total_cycles > 0.0 {
                100.0 * cycles / total_cycles
            } else {
                0.0
            }
        };

        // Number the cycles by decreasing pooled time.
        let mut cycles: Vec<CompId> = scc.cycles();
        cycles.sort_by(|&a, &b| {
            prop.comp_total(b).partial_cmp(&prop.comp_total(a)).expect("times are finite")
        });
        let mut cycle_number: HashMap<CompId, u32> = HashMap::new();
        for (i, &c) in cycles.iter().enumerate() {
            cycle_number.insert(c, i as u32 + 1);
        }

        let display_name = |node: NodeId| -> String {
            let base = graph.name(node).to_string();
            match cycle_number.get(&scc.comp(node)) {
                Some(n) => format!("{base} <cycle{n}>"),
                None => base,
            }
        };

        // Sort units by decreasing total time.
        enum Unit {
            Routine(NodeId),
            Cycle(CompId),
        }
        let mut units: Vec<(f64, String, Unit)> = Vec::new();
        for node in graph.nodes() {
            if node == spontaneous {
                continue;
            }
            units.push((prop.node_total(node), graph.name(node).to_string(), Unit::Routine(node)));
        }
        for &comp in &cycles {
            units.push((
                prop.comp_total(comp),
                format!("<cycle {} as a whole>", cycle_number[&comp]),
                Unit::Cycle(comp),
            ));
        }
        units.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).expect("times are finite").then_with(|| a.1.cmp(&b.1))
        });

        let mut node_entry: HashMap<NodeId, usize> = HashMap::new();
        let mut comp_entry: HashMap<CompId, usize> = HashMap::new();
        for (i, (_, _, unit)) in units.iter().enumerate() {
            match *unit {
                Unit::Routine(n) => {
                    node_entry.insert(n, i + 1);
                }
                Unit::Cycle(c) => {
                    comp_entry.insert(c, i + 1);
                }
            }
        }

        let line_for =
            |node: NodeId, self_seconds: f64, desc_seconds: f64, count: u64, denom: Option<u64>| {
                if node == spontaneous {
                    ArcLine {
                        name: crate::profile::SPONTANEOUS.to_string(),
                        node: None,
                        entry_index: None,
                        cycle: None,
                        self_seconds,
                        desc_seconds,
                        count,
                        denom,
                    }
                } else {
                    ArcLine {
                        name: display_name(node),
                        node: Some(node),
                        entry_index: node_entry.get(&node).copied(),
                        cycle: cycle_number.get(&scc.comp(node)).copied(),
                        self_seconds,
                        desc_seconds,
                        count,
                        denom,
                    }
                }
            };

        let mut entries = Vec::with_capacity(units.len());
        for (i, (_, _, unit)) in units.iter().enumerate() {
            let entry = match *unit {
                Unit::Routine(m) => {
                    let comp = scc.comp(m);
                    let ext_calls_m = prop.external_calls_into(comp);

                    let mut external = 0u64;
                    let mut recursive = 0u64;
                    let mut parents = Vec::new();
                    for &arc_id in graph.in_arcs(m) {
                        let arc = graph.arc(arc_id);
                        if arc.from == m {
                            recursive += arc.count;
                            continue;
                        }
                        external += arc.count;
                        if scc.comp(arc.from) == comp {
                            // Within the cycle: listed, never propagated.
                            parents.push(line_for(arc.from, 0.0, 0.0, arc.count, None));
                        } else {
                            parents.push(line_for(
                                arc.from,
                                prop.arc_self_flow(arc_id) / cps,
                                prop.arc_desc_flow(arc_id) / cps,
                                arc.count,
                                // A zero denominator (callee never called,
                                // only statically reachable) would render
                                // as "0/0"; show a bare count instead.
                                Some(ext_calls_m).filter(|&d| d > 0),
                            ));
                        }
                    }
                    let mut children = Vec::new();
                    for &arc_id in graph.out_arcs(m) {
                        let arc = graph.arc(arc_id);
                        if arc.to == m {
                            continue; // shown as "+recursive" on the primary line
                        }
                        if scc.comp(arc.to) == comp {
                            children.push(line_for(arc.to, 0.0, 0.0, arc.count, None));
                        } else {
                            children.push(line_for(
                                arc.to,
                                prop.arc_self_flow(arc_id) / cps,
                                prop.arc_desc_flow(arc_id) / cps,
                                arc.count,
                                Some(prop.external_calls_into(scc.comp(arc.to))).filter(|&d| d > 0),
                            ));
                        }
                    }
                    sort_parent_lines(&mut parents);
                    sort_child_lines(&mut children);
                    Entry {
                        index: i + 1,
                        kind: EntryKind::Routine(m),
                        name: display_name(m),
                        cycle: cycle_number.get(&comp).copied(),
                        percent: percent_of(prop.node_total(m)),
                        self_seconds: prop.node_self(m) / cps,
                        desc_seconds: prop.node_desc(m) / cps,
                        calls: CallsDisplay { external, recursive },
                        parents,
                        children,
                    }
                }
                Unit::Cycle(comp) => {
                    let number = cycle_number[&comp];
                    let ext_calls = prop.external_calls_into(comp);
                    // Aggregate external inbound arcs per caller.
                    let mut by_caller: HashMap<NodeId, (u64, f64, f64)> = HashMap::new();
                    let mut internal = 0u64;
                    for &member in scc.members(comp) {
                        for &arc_id in graph.in_arcs(member) {
                            let arc = graph.arc(arc_id);
                            if scc.comp(arc.from) == comp {
                                internal += arc.count;
                                continue;
                            }
                            let slot = by_caller.entry(arc.from).or_insert((0, 0.0, 0.0));
                            slot.0 += arc.count;
                            slot.1 += prop.arc_self_flow(arc_id) / cps;
                            slot.2 += prop.arc_desc_flow(arc_id) / cps;
                        }
                    }
                    let mut parents: Vec<ArcLine> = by_caller
                        .into_iter()
                        .map(|(p, (count, sf, df))| {
                            line_for(p, sf, df, count, Some(ext_calls).filter(|&d| d > 0))
                        })
                        .collect();
                    sort_parent_lines(&mut parents);
                    // Members in place of children, with their calls from
                    // within the cycle.
                    let mut children: Vec<ArcLine> = scc
                        .members(comp)
                        .iter()
                        .map(|&member| {
                            let internal_calls: u64 = graph
                                .in_arcs(member)
                                .iter()
                                .map(|&a| graph.arc(a))
                                .filter(|a| scc.comp(a.from) == comp)
                                .map(|a| a.count)
                                .sum();
                            line_for(
                                member,
                                prop.node_self(member) / cps,
                                prop.node_desc(member) / cps,
                                internal_calls,
                                None,
                            )
                        })
                        .collect();
                    sort_child_lines(&mut children);
                    Entry {
                        index: i + 1,
                        kind: EntryKind::CycleWhole(comp),
                        name: format!("<cycle {number} as a whole>"),
                        cycle: Some(number),
                        percent: percent_of(prop.comp_total(comp)),
                        self_seconds: prop.comp_self(comp) / cps,
                        desc_seconds: prop.comp_desc(comp) / cps,
                        calls: CallsDisplay { external: ext_calls, recursive: internal },
                        parents,
                        children,
                    }
                }
            };
            entries.push(entry);
        }
        CallGraphProfile { entries, total_seconds, cycle_count: cycles.len() as u32 }
    }
}

fn sort_parent_lines(lines: &mut [ArcLine]) {
    lines.sort_by(|a, b| {
        a.flow()
            .partial_cmp(&b.flow())
            .expect("flows are finite")
            .then_with(|| a.count.cmp(&b.count))
            .then_with(|| a.name.cmp(&b.name))
    });
}

fn sort_child_lines(lines: &mut [ArcLine]) {
    lines.sort_by(|a, b| {
        b.flow()
            .partial_cmp(&a.flow())
            .expect("flows are finite")
            .then_with(|| b.count.cmp(&a.count))
            .then_with(|| a.name.cmp(&b.name))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_callgraph::propagate;

    struct Fixture {
        graph: CallGraph,
        spont: NodeId,
        self_cycles: Vec<f64>,
    }

    impl Fixture {
        fn profile(&self) -> CallGraphProfile {
            let scc = SccResult::analyze(&self.graph);
            let prop = propagate(&self.graph, &scc, &self.self_cycles);
            CallGraphProfile::build(&self.graph, self.spont, &scc, &prop, &self.self_cycles, 1.0)
        }
    }

    /// caller1 -(4)-> example <-(6)- caller2, example -(2)-> sub,
    /// example self-recursive 4 times.
    fn example_shape() -> Fixture {
        let mut graph = CallGraph::with_nodes(["caller1", "caller2", "example", "sub"]);
        let spont = graph.add_node("<spontaneous>");
        let c1 = NodeId::new(0);
        let c2 = NodeId::new(1);
        let ex = NodeId::new(2);
        let sub = NodeId::new(3);
        graph.add_arc(spont, c1, 1);
        graph.add_arc(spont, c2, 1);
        graph.add_arc(c1, ex, 4);
        graph.add_arc(c2, ex, 6);
        graph.add_arc(ex, ex, 4);
        graph.add_arc(ex, sub, 2);
        Fixture { graph, spont, self_cycles: vec![1.0, 1.0, 5.0, 30.0, 0.0] }
    }

    #[test]
    fn entries_sorted_by_total_time() {
        let profile = example_shape().profile();
        let totals: Vec<f64> = profile.entries().iter().map(|e| e.total_seconds()).collect();
        for pair in totals.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12, "descending: {totals:?}");
        }
        assert_eq!(profile.entries()[0].index, 1);
    }

    #[test]
    fn recursive_calls_are_split_out() {
        let profile = example_shape().profile();
        let ex = profile.entry("example").unwrap();
        assert_eq!(ex.calls, CallsDisplay { external: 10, recursive: 4 });
        // The self arc does not appear among parents or children.
        assert!(ex.parents.iter().all(|p| p.name != "example"));
        assert!(ex.children.iter().all(|c| c.name != "example"));
    }

    #[test]
    fn parent_shares_match_figure4_fractions() {
        let profile = example_shape().profile();
        let ex = profile.entry("example").unwrap();
        // example's total: self 5 + all of sub's 30 = 35. Callers split
        // 4/10 and 6/10 of that.
        let c1 = ex.parents.iter().find(|p| p.name == "caller1").unwrap();
        let c2 = ex.parents.iter().find(|p| p.name == "caller2").unwrap();
        assert_eq!((c1.count, c1.denom), (4, Some(10)));
        assert_eq!((c2.count, c2.denom), (6, Some(10)));
        assert!((c1.self_seconds - 2.0).abs() < 1e-9); // 5 * 4/10
        assert!((c1.desc_seconds - 12.0).abs() < 1e-9); // 30 * 4/10
        assert!((c2.self_seconds - 3.0).abs() < 1e-9);
        assert!((c2.desc_seconds - 18.0).abs() < 1e-9);
        // Parents ordered by increasing flow.
        assert!(ex.parents[0].flow() <= ex.parents[1].flow());
    }

    #[test]
    fn child_lines_show_fraction_of_child_total() {
        let profile = example_shape().profile();
        let ex = profile.entry("example").unwrap();
        let sub = ex.children.iter().find(|c| c.name == "sub").unwrap();
        assert_eq!((sub.count, sub.denom), (2, Some(2)));
        assert!((sub.self_seconds - 30.0).abs() < 1e-9);
        assert_eq!(sub.desc_seconds, 0.0);
    }

    #[test]
    fn navigation_indices_resolve() {
        let profile = example_shape().profile();
        let ex = profile.entry("example").unwrap();
        for line in ex.parents.iter().chain(&ex.children) {
            if line.name == "<spontaneous>" {
                assert_eq!(line.entry_index, None);
            } else {
                let idx = line.entry_index.unwrap();
                let target = profile.entry_at(idx).unwrap();
                assert!(target.name.starts_with(&line.name));
            }
        }
    }

    #[test]
    fn spontaneous_parent_appears_for_roots() {
        let profile = example_shape().profile();
        let c1 = profile.entry("caller1").unwrap();
        assert_eq!(c1.parents.len(), 1);
        assert_eq!(c1.parents[0].name, "<spontaneous>");
        assert_eq!(c1.parents[0].node, None);
    }

    /// x <-> y cycle, called from a (30) and b (10); y -> leaf.
    fn cycle_shape() -> Fixture {
        let mut graph = CallGraph::with_nodes(["a", "b", "x", "y", "leaf"]);
        let spont = graph.add_node("<spontaneous>");
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let x = NodeId::new(2);
        let y = NodeId::new(3);
        let leaf = NodeId::new(4);
        graph.add_arc(spont, a, 1);
        graph.add_arc(spont, b, 1);
        graph.add_arc(a, x, 30);
        graph.add_arc(b, y, 10);
        graph.add_arc(x, y, 100);
        graph.add_arc(y, x, 99);
        graph.add_arc(y, leaf, 5);
        Fixture { graph, spont, self_cycles: vec![0.0, 0.0, 60.0, 20.0, 40.0, 0.0] }
    }

    #[test]
    fn cycle_gets_a_whole_entry() {
        let profile = cycle_shape().profile();
        assert_eq!(profile.cycle_count(), 1);
        let whole =
            profile.entries().iter().find(|e| matches!(e.kind, EntryKind::CycleWhole(_))).unwrap();
        assert_eq!(whole.name, "<cycle 1 as a whole>");
        assert!((whole.self_seconds - 80.0).abs() < 1e-9);
        assert!((whole.desc_seconds - 40.0).abs() < 1e-9);
        assert_eq!(whole.calls, CallsDisplay { external: 40, recursive: 199 });
    }

    #[test]
    fn cycle_entry_lists_members_as_children() {
        let profile = cycle_shape().profile();
        let whole =
            profile.entries().iter().find(|e| matches!(e.kind, EntryKind::CycleWhole(_))).unwrap();
        let names: Vec<&str> = whole.children.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"x <cycle1>"));
        assert!(names.contains(&"y <cycle1>"));
        let x_line = whole.children.iter().find(|c| c.name == "x <cycle1>").unwrap();
        assert_eq!(x_line.count, 99, "calls to x from within the cycle");
        assert_eq!(x_line.denom, None);
    }

    #[test]
    fn cycle_parents_share_pooled_time() {
        let profile = cycle_shape().profile();
        let whole =
            profile.entries().iter().find(|e| matches!(e.kind, EntryKind::CycleWhole(_))).unwrap();
        let a = whole.parents.iter().find(|p| p.name == "a").unwrap();
        let b = whole.parents.iter().find(|p| p.name == "b").unwrap();
        assert_eq!((a.count, a.denom), (30, Some(40)));
        assert_eq!((b.count, b.denom), (10, Some(40)));
        // a gets 3/4 of pooled self 80 and desc 40.
        assert!((a.self_seconds - 60.0).abs() < 1e-9);
        assert!((a.desc_seconds - 30.0).abs() < 1e-9);
        assert!((b.self_seconds - 20.0).abs() < 1e-9);
        assert!((b.desc_seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn member_entries_show_intra_cycle_arcs_without_flow() {
        let profile = cycle_shape().profile();
        let x = profile.entry("x").unwrap();
        assert_eq!(x.cycle, Some(1));
        assert!(x.name.ends_with("<cycle1>"));
        let from_y = x.parents.iter().find(|p| p.name == "y <cycle1>").unwrap();
        assert_eq!(from_y.denom, None);
        assert_eq!(from_y.count, 99);
        assert_eq!(from_y.flow(), 0.0);
        // External caller a shows a cycle-level fraction.
        let from_a = x.parents.iter().find(|p| p.name == "a").unwrap();
        assert_eq!((from_a.count, from_a.denom), (30, Some(40)));
    }

    #[test]
    fn member_descendants_exclude_intra_cycle_children() {
        let profile = cycle_shape().profile();
        let y = profile.entry("y").unwrap();
        // y's own descendants: only leaf (40), not x.
        assert!((y.desc_seconds - 40.0).abs() < 1e-9);
        let leaf_line = y.children.iter().find(|c| c.name == "leaf").unwrap();
        assert!((leaf_line.self_seconds - 40.0).abs() < 1e-9);
        let x_line = y.children.iter().find(|c| c.name == "x <cycle1>").unwrap();
        assert_eq!(x_line.flow(), 0.0);
    }

    #[test]
    fn entry_lookup_by_plain_name_works_for_members() {
        let profile = cycle_shape().profile();
        assert!(profile.entry("x").is_some());
        assert!(profile.entry("a").is_some());
        assert!(profile.entry("nonexistent").is_none());
    }

    #[test]
    fn two_disjoint_cycles_are_numbered_by_time() {
        // Cycle A (hot): a1 <-> a2 with lots of self time; cycle B (cool).
        let mut graph = CallGraph::with_nodes(["main", "a1", "a2", "b1", "b2"]);
        let spont = graph.add_node("<spontaneous>");
        let n = NodeId::new;
        graph.add_arc(spont, n(0), 1);
        graph.add_arc(n(0), n(1), 2);
        graph.add_arc(n(1), n(2), 9);
        graph.add_arc(n(2), n(1), 8);
        graph.add_arc(n(0), n(3), 2);
        graph.add_arc(n(3), n(4), 5);
        graph.add_arc(n(4), n(3), 4);
        let fixture = Fixture { graph, spont, self_cycles: vec![1.0, 50.0, 40.0, 5.0, 4.0, 0.0] };
        let profile = fixture.profile();
        assert_eq!(profile.cycle_count(), 2);
        // The hot cycle is number 1.
        let a1 = profile.entry("a1").unwrap();
        let b1 = profile.entry("b1").unwrap();
        assert_eq!(a1.cycle, Some(1));
        assert_eq!(b1.cycle, Some(2));
        // Two distinct whole-cycle entries, ordered hot-first.
        let wholes: Vec<&Entry> = profile
            .entries()
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::CycleWhole(_)))
            .collect();
        assert_eq!(wholes.len(), 2);
        assert_eq!(wholes[0].name, "<cycle 1 as a whole>");
        assert_eq!(wholes[1].name, "<cycle 2 as a whole>");
        assert!(wholes[0].total_seconds() > wholes[1].total_seconds());
    }

    #[test]
    fn zero_total_time_yields_zero_percents() {
        let mut graph = CallGraph::with_nodes(["main"]);
        let spont = graph.add_node("<spontaneous>");
        graph.add_arc(spont, NodeId::new(0), 1);
        let fixture = Fixture { graph, spont, self_cycles: vec![0.0, 0.0] };
        let profile = fixture.profile();
        assert_eq!(profile.entries()[0].percent, 0.0);
    }

    #[test]
    fn static_only_child_shows_zero_over_total() {
        // example never calls sub3 dynamically, but the arc exists
        // statically; sub3 is called 5 times by other.
        let mut graph = CallGraph::with_nodes(["example", "other", "sub3"]);
        let spont = graph.add_node("<spontaneous>");
        let ex = NodeId::new(0);
        let other = NodeId::new(1);
        let sub3 = NodeId::new(2);
        graph.add_arc(spont, ex, 1);
        graph.add_arc(spont, other, 1);
        graph.add_arc(other, sub3, 5);
        graph.add_arc(ex, sub3, 0); // static-only
        let fixture = Fixture { graph, spont, self_cycles: vec![1.0, 1.0, 10.0, 0.0] };
        let profile = fixture.profile();
        let ex_entry = profile.entry("example").unwrap();
        let sub3_line = ex_entry.children.iter().find(|c| c.name == "sub3").unwrap();
        assert_eq!((sub3_line.count, sub3_line.denom), (0, Some(5)));
        assert_eq!(sub3_line.flow(), 0.0);
    }
}
