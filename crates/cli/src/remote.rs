//! CLI front ends for the collection server: `graphprof serve` (host),
//! `gpx-send` (data-plane uploader), and `graphprof remote` (control
//! plane and remote queries).
//!
//! Like the other commands these are library functions over parsed
//! [`Args`] so they are testable in-process; the binaries are thin
//! wrappers. Every transport or server-side failure surfaces as
//! [`CliError::Remote`], which the binaries render and turn into a
//! non-zero exit.

use std::fs;
use std::time::Duration;

use graphprof_server::{
    DeltaUploader, KgmonVerb, MonRange, QueryKind, RegressScope, ReportFormat, ResilientClient,
    Response, RetryPolicy, Server, ServerConfig, ServerHandle,
};

use crate::args::Args;
use crate::error::CliError;

/// The conventional loopback endpoint shared by `graphprof serve`,
/// `gpx-send`, and `graphprof remote` when no address is given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:6181";

fn timeout(args: &Args) -> Result<Duration, CliError> {
    Ok(Duration::from_millis(args.int_value("timeout-ms")?.unwrap_or(10_000)))
}

/// Retry knobs shared by `gpx-send` and `graphprof remote`: `--retries N`
/// (attempts after the first, default 3; 0 disables retrying) and
/// `--retry-base-ms N` (first backoff, doubling per retry, default 50).
fn retry_policy(args: &Args) -> Result<RetryPolicy, CliError> {
    let mut policy = RetryPolicy::default();
    if let Some(n) = args.int_value("retries")? {
        policy.max_attempts = (n as u32).saturating_add(1);
    }
    if let Some(ms) = args.int_value("retry-base-ms")? {
        policy.base_delay = Duration::from_millis(ms);
    }
    Ok(policy)
}

fn connect(args: &Args, addr: &str) -> Result<ResilientClient, CliError> {
    Ok(ResilientClient::new(addr, timeout(args)?, retry_policy(args)?))
}

/// `graphprof serve <prog.gpx> [--bind ADDR] [--vm NAME]... [--jobs N]
/// [--max-frame BYTES] [--max-series N] [--tick N] [--slice CYCLES]
/// [--timeout-ms N] [--data-dir DIR] [--wal-segment-bytes N]
/// [--stripes N] [--group-commit-ms N | --no-group-commit] [--retain K]
/// [--checkpoint-bytes N] [--checkpoint-records N]`
///
/// Starts the collection server for one executable: uploads are
/// validated against it and `--vm` hosts named profiled VMs running it
/// under remote kgmon control. Binds loopback by default. With
/// `--data-dir` every accepted upload is made durable in a write-ahead
/// log under that directory before it is acknowledged, and a restart
/// replays the log to the byte-identical aggregate. Ingest is sharded
/// over `--stripes` (default 4, pinned per data directory) and durable
/// uploads are group-committed — one fsync per batch, held open
/// `--group-commit-ms` (default 0: flush as fast as the commit worker
/// drains); `--no-group-commit` restores one fsync per upload. With
/// `--retain K` every series additionally keeps its last K uploaded
/// windows — rebuilt by WAL replay when durable — for
/// `remote regress --window/--baseline` queries. With
/// `--checkpoint-bytes N` / `--checkpoint-records N` each stripe
/// snapshots its state and compacts the covered WAL segments once that
/// much log has accumulated since its last checkpoint (either threshold
/// triggers; `remote checkpoint` forces one on demand). Returns
/// the running handle plus a banner line (`serving <prog> on <addr>
/// (<v> hosted VM(s), <s> stripe(s))`, then the checkpoint policy and
/// per-stripe recovery lines when durable); the binary prints the
/// banner and parks until killed.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, I/O, or bind problems.
pub fn serve(args: &Args) -> Result<(ServerHandle, String), CliError> {
    let [exe_path] = args.positionals() else {
        return Err(CliError::Usage("graphprof serve <prog.gpx> [--bind ADDR]".to_string()));
    };
    let exe = crate::commands::load_executable(exe_path)?;
    let mut config = ServerConfig {
        bind: args.value("bind").unwrap_or(DEFAULT_ADDR).to_string(),
        ..ServerConfig::default()
    };
    if let Some(n) = args.int_value("jobs")? {
        config.jobs = (n as usize).max(1);
    }
    if let Some(n) = args.int_value("max-frame")? {
        config.max_frame = n as usize;
    }
    if let Some(n) = args.int_value("max-series")? {
        config.max_series = n as usize;
    }
    if let Some(n) = args.int_value("tick")? {
        config.vm_tick = n;
    }
    if let Some(n) = args.int_value("slice")? {
        config.vm_slice = n;
    }
    let per_conn = timeout(args)?;
    config.read_timeout = per_conn;
    config.write_timeout = per_conn;
    if let Some(dir) = args.value("data-dir") {
        config.data_dir = Some(dir.into());
    }
    if let Some(n) = args.int_value("wal-segment-bytes")? {
        config.wal_segment_bytes = n.max(64);
    }
    if let Some(n) = args.int_value("stripes")? {
        config.stripes = (n as usize).clamp(1, 256);
    }
    if args.switch("no-group-commit") {
        config.group_commit = None;
    } else if let Some(ms) = args.int_value("group-commit-ms")? {
        config.group_commit = Some(Duration::from_millis(ms));
    }
    if let Some(k) = args.int_value("retain")? {
        config.retain = k as usize;
    }
    if let Some(n) = args.int_value("checkpoint-bytes")? {
        config.checkpoint_bytes = Some(n);
    }
    if let Some(n) = args.int_value("checkpoint-records")? {
        config.checkpoint_records = Some(n);
    }

    let vms: Vec<String> = args.values("vm").to_vec();
    let durable = config.data_dir.is_some();
    let stripes = config.stripes.clamp(1, 256);
    let retain = config.retain;
    let checkpoint_bytes = config.checkpoint_bytes;
    let checkpoint_records = config.checkpoint_records;
    let handle = Server::start(config, exe, &vms).map_err(|e| {
        CliError::io(format!("start on {}", args.value("bind").unwrap_or(DEFAULT_ADDR)), e)
    })?;
    let mut banner = format!(
        "serving {exe_path} on {} ({} hosted VM(s), {stripes} stripe(s))",
        handle.addr(),
        vms.len()
    );
    if retain > 0 {
        banner.push_str(&format!("\nretaining the last {retain} window(s) per series"));
    }
    if durable {
        match (checkpoint_bytes, checkpoint_records) {
            (Some(b), Some(r)) => banner.push_str(&format!(
                "\ncheckpointing each stripe every {b} WAL byte(s) or {r} record(s)"
            )),
            (Some(b), None) => {
                banner.push_str(&format!("\ncheckpointing each stripe every {b} WAL byte(s)"));
            }
            (None, Some(r)) => {
                banner.push_str(&format!("\ncheckpointing each stripe every {r} WAL record(s)"));
            }
            (None, None) => {
                banner.push_str("\ncheckpointing on demand only (`graphprof remote checkpoint`)");
            }
        }
        if let Some(recovery) = handle.recovery() {
            banner.push_str(&format!("\n{recovery}"));
        }
    }
    Ok((handle, banner))
}

/// `gpx-send <gmon...> --series NAME [--addr HOST:PORT] [--seq-start N]
/// [--delta] [--timeout-ms N] [--retries N] [--retry-base-ms N]`
///
/// Uploads one or more `gmon.out` files into a named series, assigning
/// consecutive sequence numbers from `--seq-start` (default 0) in
/// argument order. Positionals expand like `graphprof`'s: a directory
/// contributes its `gmon.out*` files and a `*`/`?` pattern matches its
/// siblings, with an expansion that matches nothing rejected as a usage
/// error instead of silently uploading nothing. Transient transport
/// failures retry with exponential backoff over a fresh connection;
/// because the server deduplicates by (series, seq), a retry after a
/// lost acknowledgment can never double-count an upload.
///
/// With `--delta`, each window after the first ships as an incremental
/// delta against the last acknowledged one whenever that is smaller on
/// the wire; a server that cannot apply a delta (restart, unknown
/// series) answers with a resync and the window is resent in full. The
/// aggregate is byte-identical either way.
///
/// # Errors
///
/// Returns [`CliError::Remote`] when the retry budget is exhausted or
/// on a server-side reject — the binary exits non-zero with the
/// rendered reason.
pub fn send(args: &Args) -> Result<String, CliError> {
    if args.positionals().is_empty() {
        return Err(CliError::Usage("gpx-send <gmon...> --series NAME".to_string()));
    }
    let paths = crate::commands::expand_gmon_paths(args.positionals())?;
    let Some(series) = args.value("series") else {
        return Err(CliError::Usage("gpx-send needs --series NAME".to_string()));
    };
    let addr = args.value("addr").unwrap_or(DEFAULT_ADDR);
    let mut client = connect(args, addr)?;
    let seq_start = args.int_value("seq-start")?.unwrap_or(0);
    let mut uploader = args.switch("delta").then(DeltaUploader::new);
    let mut out = String::new();
    for (seq, path) in (seq_start..).zip(paths.iter()) {
        let blob = fs::read(path).map_err(|e| CliError::io(path, e))?;
        let line = match uploader.as_mut() {
            Some(uploader) => {
                let (total, mode) = uploader.upload(&mut client, series, seq, &blob)?;
                format!("{series}[{seq}] <- {path} ({total} profiles aggregated, {mode})\n")
            }
            None => {
                let total = client.upload(series, seq, &blob)?;
                format!("{series}[{seq}] <- {path} ({total} profiles aggregated)\n")
            }
        };
        out.push_str(&line);
    }
    Ok(out)
}

fn parse_range(text: &str) -> Result<MonRange, CliError> {
    let Some((from, to)) = text.split_once(':') else {
        return Err(CliError::Usage(format!("--range expects FROM:TO, got `{text}`")));
    };
    let parse = |s: &str| -> Result<u32, CliError> {
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            u32::from_str_radix(hex, 16)
        } else {
            s.parse()
        };
        parsed.map_err(|_| CliError::Usage(format!("--range expects numbers, got `{s}`")))
    };
    Ok(MonRange::Addrs(parse(from.trim())?, parse(to.trim())?))
}

/// What `graphprof remote` produced: the text to print plus the verdict
/// bit of a `regress` verb (always clean for every other verb), which
/// the binary turns into exit code 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// The rendered output.
    pub output: String,
    /// True only when a `regress` verb flagged a regression.
    pub regressed: bool,
}

impl RemoteOutcome {
    fn clean(output: String) -> Self {
        RemoteOutcome { output, regressed: false }
    }
}

/// `graphprof remote <addr> <verb> [...]`
///
/// The remote kgmon tool plus remote queries, one verb per invocation:
///
/// * control plane (`--vm NAME` selects a hosted VM; defaults to the
///   server's only one): `on`, `off`, `status`, `reset`,
///   `extract [--out FILE] [--into SERIES]`,
///   `moncontrol (--off | --range FROM:TO | --routine NAME)`;
/// * data plane: `flat <series>`, `graph <series>`,
///   `sum <series> --out FILE`, `diff <before> <after> [--json]`,
///   `regress <before> <after> [--window N | --baseline K]
///   [--min-sigma S] [--min-ticks T] [--min-pct P] [--json]`, `stats`;
/// * admin: `checkpoint` — snapshot every stripe and compact the
///   covered WAL segments (the server must be running with
///   `--data-dir`); a stripe whose snapshot fails keeps serving on the
///   WAL alone and is reported in the rendered counts.
///
/// `regress` runs the statistical regression gate server-side (see
/// `docs/REGRESSION.md`): by default over the two series' whole
/// aggregates, with `--window N` over each series' N-th newest retained
/// window, or with `--baseline K` scoring the after series' newest
/// window against the mean of up to K windows preceding the before
/// series' newest (both need the server running with `--retain`). The
/// outcome carries the verdict; the binary exits 1 on a regression.
///
/// Transient transport failures retry with backoff (`--retries`,
/// `--retry-base-ms`); `extract --into` retries only its dial, because
/// the store assigns a fresh sequence number per extraction.
///
/// # Errors
///
/// Returns [`CliError::Remote`] when the retry budget is exhausted or
/// on a server-side reject — including diff or regress against a series
/// the server does not have.
pub fn remote(args: &Args) -> Result<RemoteOutcome, CliError> {
    let [addr, verb, rest @ ..] = args.positionals() else {
        return Err(CliError::Usage("graphprof remote <addr> <verb> [...]".to_string()));
    };
    let vm = args.value("vm").unwrap_or("");
    let mut client = connect(args, addr)?;

    let expect_no_rest = |what: &str| -> Result<(), CliError> {
        if rest.is_empty() {
            Ok(())
        } else {
            Err(CliError::Usage(format!("{what} takes no further arguments")))
        }
    };
    let kgmon_text = |client: &mut ResilientClient, verb: KgmonVerb| -> Result<String, CliError> {
        match client.kgmon(vm, verb)? {
            Response::Text(text) => Ok(text),
            _ => Ok(String::new()),
        }
    };

    let format = if args.switch("json") { ReportFormat::Json } else { ReportFormat::Text };

    match verb.as_str() {
        "on" => {
            expect_no_rest("on")?;
            kgmon_text(&mut client, KgmonVerb::On).map(RemoteOutcome::clean)
        }
        "off" => {
            expect_no_rest("off")?;
            kgmon_text(&mut client, KgmonVerb::Off).map(RemoteOutcome::clean)
        }
        "status" => {
            expect_no_rest("status")?;
            kgmon_text(&mut client, KgmonVerb::Status).map(RemoteOutcome::clean)
        }
        "reset" => {
            expect_no_rest("reset")?;
            kgmon_text(&mut client, KgmonVerb::Reset).map(RemoteOutcome::clean)
        }
        "extract" => {
            expect_no_rest("extract")?;
            let into = args.value("into").map(str::to_string);
            let stored = into.clone();
            match client.kgmon(vm, KgmonVerb::Extract { into })? {
                Response::Blob(bytes) => {
                    let mut out = String::new();
                    if let Some(path) = args.value("out") {
                        fs::write(path, &bytes).map_err(|e| CliError::io(path, e))?;
                        out.push_str(&format!("{path}: {} bytes extracted\n", bytes.len()));
                    } else {
                        out.push_str(&format!("extracted {} bytes\n", bytes.len()));
                    }
                    if let Some(series) = stored {
                        out.push_str(&format!("stored into series `{series}`\n"));
                    }
                    Ok(RemoteOutcome::clean(out))
                }
                _ => Ok(RemoteOutcome::clean(String::new())),
            }
        }
        "moncontrol" => {
            expect_no_rest("moncontrol")?;
            let range =
                match (args.switch("off"), args.value("range"), args.value("routine")) {
                    (true, None, None) => MonRange::Off,
                    (false, Some(range), None) => parse_range(range)?,
                    (false, None, Some(name)) => MonRange::Routine(name.to_string()),
                    _ => return Err(CliError::Usage(
                        "moncontrol takes exactly one of --off, --range FROM:TO, --routine NAME"
                            .to_string(),
                    )),
                };
            kgmon_text(&mut client, KgmonVerb::Moncontrol(range)).map(RemoteOutcome::clean)
        }
        "flat" | "graph" => {
            let [series] = rest else {
                return Err(CliError::Usage(format!("remote {verb} <series>")));
            };
            let kind = if verb == "flat" { QueryKind::Flat } else { QueryKind::Graph };
            Ok(RemoteOutcome::clean(client.query_text(series, kind)?))
        }
        "sum" => {
            let [series] = rest else {
                return Err(CliError::Usage("remote sum <series> --out FILE".to_string()));
            };
            let Some(path) = args.value("out") else {
                return Err(CliError::Usage("remote sum needs --out FILE".to_string()));
            };
            let bytes = client.fetch_sum(series)?;
            fs::write(path, &bytes).map_err(|e| CliError::io(path, e))?;
            Ok(RemoteOutcome::clean(format!(
                "{path}: {} bytes of aggregate profile\n",
                bytes.len()
            )))
        }
        "diff" => {
            let [before, after] = rest else {
                return Err(CliError::Usage("remote diff <before> <after> [--json]".to_string()));
            };
            Ok(RemoteOutcome::clean(client.diff(before, after, format)?))
        }
        "regress" => {
            let [before, after] = rest else {
                return Err(CliError::Usage(
                    "remote regress <before> <after> [--window N | --baseline K]".to_string(),
                ));
            };
            let scope = match (args.int_value("window")?, args.int_value("baseline")?) {
                (None, None) => RegressScope::Aggregate,
                (Some(n), None) if n >= 1 => RegressScope::Window(n),
                (None, Some(k)) if k >= 1 => RegressScope::Baseline(k),
                (Some(_), Some(_)) => {
                    return Err(CliError::Usage(
                        "remote regress takes at most one of --window N, --baseline K".to_string(),
                    ))
                }
                _ => {
                    return Err(CliError::Usage("--window and --baseline count from 1".to_string()))
                }
            };
            let thresholds = crate::commands::parse_thresholds(args)?;
            let (regressed, report) = client.regress(before, after, scope, &thresholds, format)?;
            Ok(RemoteOutcome { output: report, regressed })
        }
        "stats" => {
            expect_no_rest("stats")?;
            Ok(RemoteOutcome::clean(client.stats()?))
        }
        "checkpoint" => {
            expect_no_rest("checkpoint")?;
            let (stripes, removed, healed, failed) = client.checkpoint()?;
            let mut out =
                format!("checkpointed {stripes} stripe(s), removed {removed} WAL segment(s)\n");
            if healed > 0 {
                out.push_str(&format!("healed {healed} wedged stripe(s)\n"));
            }
            if failed > 0 {
                out.push_str(&format!(
                    "{failed} stripe(s) failed to snapshot and stay on the WAL\n"
                ));
            }
            Ok(RemoteOutcome::clean(out))
        }
        other => Err(CliError::Usage(format!("unknown remote verb `{other}`"))),
    }
}
