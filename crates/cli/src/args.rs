//! A small command-line argument parser.
//!
//! Supports positional arguments, `--flag value` (and `--flag=value`)
//! options that may repeat, and boolean `--switch`es. Unknown flags are
//! errors; `--` ends flag parsing.

use std::collections::HashMap;

use crate::error::CliError;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    values: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name) against the declared
    /// value-taking flags and boolean switches (named without the leading
    /// dashes).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or a value flag with
    /// no value.
    pub fn parse(
        argv: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut only_positionals = false;
        let mut iter = argv.iter().peekable();
        while let Some(arg) = iter.next() {
            if only_positionals || !arg.starts_with("--") {
                args.positionals.push(arg.clone());
                continue;
            }
            if arg == "--" {
                only_positionals = true;
                continue;
            }
            let body = &arg[2..];
            let (name, inline_value) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            if switch_flags.contains(&name) {
                if inline_value.is_some() {
                    return Err(CliError::Usage(format!("--{name} takes no value")));
                }
                args.switches.push(name.to_string());
            } else if value_flags.contains(&name) {
                let value = match inline_value {
                    Some(v) => v,
                    None => iter
                        .next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?,
                };
                args.values.entry(name.to_string()).or_default().push(value);
            } else {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        }
        Ok(args)
    }

    /// The positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The last value given for a flag, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    /// Every value given for a repeatable flag.
    pub fn values(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parses a flag's value as an integer (decimal, or hex with `0x`).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn int_value(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(text) => {
                let parsed = if let Some(hex) = text.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                };
                parsed.map(Some).map_err(|_| {
                    CliError::Usage(format!("--{name} expects a number, got `{text}`"))
                })
            }
        }
    }
}

/// Rewrites the conventional `-j` worker-count shorthand into the long
/// `--jobs` form this parser understands: `-j 4` becomes `--jobs 4` and
/// `-j4` becomes `--jobs=4`. Anything after a `--` terminator is left
/// untouched, as are `-j` suffixes that are not plain numbers.
pub fn normalize_jobs_shorthand(argv: &[String]) -> Vec<String> {
    let mut only_positionals = false;
    argv.iter()
        .map(|arg| {
            if only_positionals {
                return arg.clone();
            }
            if arg == "--" {
                only_positionals = true;
                return arg.clone();
            }
            if arg == "-j" {
                return "--jobs".to_string();
            }
            if let Some(rest) = arg.strip_prefix("-j") {
                if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                    return format!("--jobs={rest}");
                }
            }
            arg.clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jobs_shorthand_normalizes() {
        let normalized = normalize_jobs_shorthand(&argv(&["-j", "4", "-j8", "a.gpx"]));
        assert_eq!(normalized, ["--jobs", "4", "--jobs=8", "a.gpx"]);
        let args = Args::parse(&normalized, &["jobs"], &[]).unwrap();
        assert_eq!(args.values("jobs"), ["4", "8"]);
        assert_eq!(args.int_value("jobs").unwrap(), Some(8));
        assert_eq!(args.positionals(), ["a.gpx"]);
    }

    #[test]
    fn jobs_shorthand_leaves_other_arguments_alone() {
        let normalized = normalize_jobs_shorthand(&argv(&["-jx", "--", "-j4"]));
        assert_eq!(normalized, ["-jx", "--", "-j4"]);
    }

    #[test]
    fn positionals_flags_and_switches() {
        let args = Args::parse(
            &argv(&["in.s", "--out", "a.gpx", "--verbose", "extra"]),
            &["out"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(args.positionals(), ["in.s", "extra"]);
        assert_eq!(args.value("out"), Some("a.gpx"));
        assert!(args.switch("verbose"));
        assert!(!args.switch("quiet"));
    }

    #[test]
    fn equals_form_and_repeats() {
        let args =
            Args::parse(&argv(&["--exclude=a:b", "--exclude", "c:d"]), &["exclude"], &[]).unwrap();
        assert_eq!(args.values("exclude"), ["a:b", "c:d"]);
        assert_eq!(args.value("exclude"), Some("c:d"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = Args::parse(&argv(&["--bogus"]), &[], &[]).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(&argv(&["--out"]), &["out"], &[]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn switch_with_value_is_an_error() {
        let err = Args::parse(&argv(&["--quiet=yes"]), &[], &["quiet"]).unwrap_err();
        assert!(err.to_string().contains("takes no value"));
    }

    #[test]
    fn double_dash_ends_flags() {
        let args = Args::parse(&argv(&["--", "--not-a-flag"]), &[], &[]).unwrap();
        assert_eq!(args.positionals(), ["--not-a-flag"]);
    }

    #[test]
    fn int_values_decimal_and_hex() {
        let args =
            Args::parse(&argv(&["--tick", "100", "--base", "0x2000"]), &["tick", "base"], &[])
                .unwrap();
        assert_eq!(args.int_value("tick").unwrap(), Some(100));
        assert_eq!(args.int_value("base").unwrap(), Some(0x2000));
        assert_eq!(args.int_value("missing").unwrap(), None);
        let bad = Args::parse(&argv(&["--tick", "ten"]), &["tick"], &[]).unwrap();
        assert!(bad.int_value("tick").is_err());
    }
}
