//! Implementations of the four command-line tools.

use std::fs;
use std::path::Path;

use graphprof::{Filter, Gprof, Options};
use graphprof_machine::{
    asm, disasm, objfile, CompileOptions, Instrumentation, Machine, MachineConfig,
    ProfileSelection, RunStatus,
};
use graphprof_monitor::RuntimeProfiler;

use crate::args::Args;
use crate::error::CliError;

/// Alias so the `use` above stays tidy.
type Gmon = graphprof_monitor::GmonData;

fn read(path: &str) -> Result<Vec<u8>, CliError> {
    fs::read(path).map_err(|e| CliError::io(path, e))
}

fn read_text(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::io(path, e))
}

fn write(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    fs::write(path, bytes).map_err(|e| CliError::io(path, e))
}

pub(crate) fn load_executable(path: &str) -> Result<graphprof_machine::Executable, CliError> {
    let exe = objfile::read_executable(&read(path)?)?;
    let issues: Vec<_> = graphprof_machine::verify_executable(&exe)
        .into_iter()
        .filter(graphprof_machine::VerifyIssue::is_error)
        .collect();
    if !issues.is_empty() {
        return Err(CliError::Verify { path: path.to_string(), issues });
    }
    Ok(exe)
}

fn comma_list(value: &str) -> Vec<String> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect()
}

/// Resolves the worker count for a command: `--jobs N` (or `-j N`) wins,
/// then `GRAPHPROF_JOBS`, then the machine's available parallelism.
/// Always at least 1; `--jobs 1` forces every stage onto the serial path.
fn resolve_jobs(args: &Args) -> Result<usize, CliError> {
    Ok(graphprof::exec::resolve_jobs(args.int_value("jobs")?.map(|n| n as usize)))
}

/// Whether a pattern uses the `*`/`?` glob syntax [`glob_matches`]
/// understands.
fn is_glob(pattern: &str) -> bool {
    pattern.contains('*') || pattern.contains('?')
}

/// Minimal glob match: `*` matches any run of characters, `?` exactly
/// one. Iterative backtracking over the classic two-cursor algorithm.
fn glob_matches(pattern: &str, name: &str) -> bool {
    let (p, n): (Vec<char>, Vec<char>) = (pattern.chars().collect(), name.chars().collect());
    let (mut pi, mut ni) = (0, 0);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((star_pi, star_ni)) = star {
            pi = star_pi + 1;
            ni = star_ni + 1;
            star = Some((star_pi, star_ni + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Expands the profile-file positionals of `graphprof`: a plain path is
/// kept as-is, a directory contributes every `gmon.out*` file inside it,
/// and a pattern with `*`/`?` in its final component is matched against
/// that component's siblings. Expansions are sorted by name so the merge
/// order — and therefore the report — is reproducible; an expansion that
/// matches nothing is a usage error, surfacing typos instead of silently
/// thinning the sum.
pub(crate) fn expand_gmon_paths(raw: &[String]) -> Result<Vec<String>, CliError> {
    fn list_matching(
        dir: &Path,
        display: &str,
        keep: impl Fn(&str) -> bool,
    ) -> Result<Vec<String>, CliError> {
        let entries = fs::read_dir(dir).map_err(|e| CliError::io(display, e))?;
        let mut found = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CliError::io(display, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.path().is_file() && keep(&name) {
                found.push(entry.path().to_string_lossy().into_owned());
            }
        }
        found.sort();
        Ok(found)
    }

    let mut paths = Vec::new();
    for raw_path in raw {
        let path = Path::new(raw_path);
        if path.is_dir() {
            let found = list_matching(path, raw_path, |name| name.starts_with("gmon.out"))?;
            if found.is_empty() {
                return Err(CliError::Usage(format!(
                    "directory `{raw_path}` contains no gmon.out files"
                )));
            }
            paths.extend(found);
        } else if is_glob(raw_path) {
            let (dir, pattern) = match (path.parent(), path.file_name()) {
                (Some(parent), Some(name)) if !parent.as_os_str().is_empty() => {
                    (parent.to_path_buf(), name.to_string_lossy().into_owned())
                }
                _ => (std::path::PathBuf::from("."), raw_path.clone()),
            };
            let found = list_matching(&dir, raw_path, |name| glob_matches(&pattern, name))?;
            if found.is_empty() {
                return Err(CliError::Usage(format!("pattern `{raw_path}` matches no files")));
            }
            paths.extend(found);
        } else {
            paths.push(raw_path.clone());
        }
    }
    Ok(paths)
}

/// `gpx-as <input.s> [--out file.gpx] [--instrument none|gprof|prof]
/// [--base ADDR] [--only a,b] [--except a,b]`
///
/// Assembles source text and writes an executable. `--instrument gprof`
/// is the `cc -pg` of the toolchain; `--only`/`--except` restrict which
/// routines get the monitoring prologue.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, parse, compile, or I/O problems.
pub fn assemble(args: &Args) -> Result<String, CliError> {
    let [input] = args.positionals() else {
        return Err(CliError::Usage("gpx-as <input.s> [--out file.gpx]".to_string()));
    };
    let source = read_text(input)?;
    let program = asm::parse(&source)?;

    let instrumentation = match args.value("instrument").unwrap_or("gprof") {
        "none" => Instrumentation::None,
        "gprof" => Instrumentation::CallGraph,
        "prof" => Instrumentation::Counts,
        other => {
            return Err(CliError::Usage(format!(
                "--instrument must be none, gprof, or prof (got `{other}`)"
            )))
        }
    };
    let profile = match (args.value("only"), args.value("except")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage("--only and --except are exclusive".to_string()))
        }
        (Some(only), None) => ProfileSelection::Only(comma_list(only)),
        (None, Some(except)) => ProfileSelection::Except(comma_list(except)),
        (None, None) => ProfileSelection::All,
    };
    let mut options = CompileOptions { instrumentation, profile, ..CompileOptions::default() };
    if let Some(base) = args.int_value("base")? {
        options.base = graphprof_machine::Addr::new(base as u32);
    }

    let exe = program.compile(&options)?;
    // The compiler's output is verified before it is written; lints
    // (unreachable routines) are reported but do not fail the build,
    // while error-severity issues abort without writing the output.
    let issues = graphprof_machine::verify_executable(&exe);
    let errors: Vec<_> = issues.iter().filter(|i| i.is_error()).cloned().collect();
    if !errors.is_empty() {
        return Err(CliError::Verify { path: input.to_string(), issues: errors });
    }
    let out_path = match args.value("out") {
        Some(path) => path.to_string(),
        None => Path::new(input).with_extension("gpx").to_string_lossy().into_owned(),
    };
    write(&out_path, &objfile::write_executable(&exe))?;
    let mut summary = format!(
        "{out_path}: {} routines, {} bytes of text, entry {}",
        exe.symbols().len(),
        exe.text().len(),
        exe.entry(),
    );
    for issue in issues {
        summary.push_str(&format!("\nwarning: {issue}"));
    }
    Ok(summary)
}

/// `gpx-run <prog.gpx> [--profile gmon.out] [--tick N] [--shift N]
/// [--max-cycles N] [--monitor-only routine] [--no-profile] [--jobs N]
/// [--tick-batch N] [--prefetch]`
///
/// Runs an executable under the monitoring runtime and condenses the
/// profile data to a file at exit, like a `-pg` program writing
/// `gmon.out`. `--monitor-only` restricts recording to one routine's
/// address range (the moncontrol(3) facility). `--tick-batch` and
/// `--prefetch` (also `GRAPHPROF_PREFETCH=1`) tune the monitoring hot
/// paths; by contract neither changes a byte of the profile.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, I/O, or run-time faults.
pub fn run(args: &Args) -> Result<String, CliError> {
    let [input] = args.positionals() else {
        return Err(CliError::Usage("gpx-run <prog.gpx> [--profile gmon.out]".to_string()));
    };
    let exe = load_executable(input)?;
    let tick = args.int_value("tick")?.unwrap_or(100);
    let shift = args.int_value("shift")?.unwrap_or(0) as u8;
    let budget = args.int_value("max-cycles")?;
    let profiling = !args.switch("no-profile");
    let prefetch = args.switch("prefetch")
        || std::env::var("GRAPHPROF_PREFETCH").is_ok_and(|v| v != "0" && !v.is_empty());

    let default_config = MachineConfig::default();
    let config = MachineConfig {
        cycles_per_tick: if profiling { tick } else { 0 },
        collect_ground_truth: false,
        // `--jobs` drives the predecode sweep; execution itself is
        // bit-identical at any setting (including `-j 1`'s serial sweep).
        predecode_jobs: resolve_jobs(args)?,
        tick_batch: args.int_value("tick-batch")?.map_or(default_config.tick_batch, |n| n as usize),
        ..default_config
    };
    let mut machine = Machine::with_config(exe.clone(), config);
    let mut profiler = RuntimeProfiler::with_granularity(&exe, tick, shift).arc_prefetch(prefetch);
    if let Some(name) = args.value("monitor-only") {
        let Some((_, sym)) = exe.symbols().by_name(name) else {
            return Err(CliError::Usage(format!("--monitor-only names unknown routine `{name}`")));
        };
        profiler.set_monitor_range(Some((sym.addr(), sym.end())));
    }

    let status = match budget {
        Some(cycles) if profiling => machine.run_for(&mut profiler, cycles)?,
        Some(cycles) => machine.run_for(&mut graphprof_machine::NoHooks, cycles)?,
        None if profiling => {
            machine.run(&mut profiler)?;
            RunStatus::Halted
        }
        None => {
            machine.run(&mut graphprof_machine::NoHooks)?;
            RunStatus::Halted
        }
    };

    let mut summary = format!(
        "{input}: {} in {} cycles, {} instructions",
        match status {
            RunStatus::Halted => "halted",
            RunStatus::Paused => "paused (cycle budget reached)",
        },
        machine.clock(),
        machine.instructions(),
    );
    if profiling {
        let gmon = profiler.finish();
        let out_path = args.value("profile").unwrap_or("gmon.out");
        write(out_path, &gmon.to_bytes())?;
        summary.push_str(&format!(
            "\n{out_path}: {} samples, {} arcs",
            gmon.histogram().total(),
            gmon.arcs().len(),
        ));
    }
    Ok(summary)
}

/// The outcome of `graphprof check`: the rendered findings plus counts
/// the binary uses to pick its exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// One line per finding (`{severity}: [{code}] {message}`) followed
    /// by a summary line.
    pub output: String,
    /// Error-severity findings; any makes the check fail.
    pub errors: usize,
    /// Warning-severity findings; these never affect the exit code.
    pub warnings: usize,
}

impl CheckReport {
    /// Whether the profile passed (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors == 0
    }
}

/// `graphprof check <prog.gpx> <gmon.out> [--jobs N] [--salvage]`
///
/// Cross-checks a profile against its executable: executable
/// verification, arc call-sites and callees, histogram geometry,
/// profiling prologues, call-count conservation, and the remaining
/// indirect-call blind spot. Findings print one per line as
/// `{severity}: [{code}] {message}` with stable kebab-case codes for
/// machine consumption.
///
/// With `--salvage`, a truncated or corrupt profile is not fatal: the
/// valid prefix is recovered, what was repaired prints first as a
/// `salvage:` line, and the checks run over the recovered data.
///
/// Unlike the other commands, this one deliberately reads the executable
/// *without* the verifying loader — reporting what is wrong with a bad
/// executable is its job, not a reason to bail.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, I/O, or structurally unreadable
/// input files (semantic problems become findings, not errors).
pub fn check(args: &Args) -> Result<CheckReport, CliError> {
    let [exe_path, gmon_path] = args.positionals() else {
        return Err(CliError::Usage(
            "graphprof check <prog.gpx> <gmon.out> [--salvage]".to_string(),
        ));
    };
    let exe = objfile::read_executable(&read(exe_path)?)?;
    let gmon_bytes = read(gmon_path)?;
    let mut output = String::new();
    let gmon = if args.switch("salvage") {
        let (gmon, report) = Gmon::from_bytes_salvage(&gmon_bytes)?;
        if !report.is_clean() {
            output.push_str(&format!("salvage: {report}\n"));
        }
        gmon
    } else {
        Gmon::from_bytes(&gmon_bytes)?
    };

    let findings = graphprof_analysis::check_profile_jobs(&exe, &gmon, resolve_jobs(args)?);
    let (mut errors, mut warnings) = (0usize, 0usize);
    for finding in &findings {
        if finding.is_error() {
            errors += 1;
        } else {
            warnings += 1;
        }
        output.push_str(&format!("{}: [{}] {}\n", finding.severity(), finding.code(), finding));
    }
    output.push_str(&format!("{gmon_path}: {} error(s), {} warning(s)\n", errors, warnings));
    Ok(CheckReport { output, errors, warnings })
}

/// The outcome of `graphprof analyze`: rendered findings plus the
/// counts the binary's exit code derives from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOutcome {
    /// One line per finding (`{action}: [{code}] {message}`) followed by
    /// a summary line.
    pub output: String,
    /// Findings the rule configuration denies; any makes the gate fail.
    pub denied: usize,
    /// Findings reported as warnings.
    pub warned: usize,
    /// Findings suppressed by `--allow`.
    pub allowed: usize,
}

impl AnalyzeOutcome {
    /// Whether the gate passes (nothing denied).
    pub fn is_clean(&self) -> bool {
        self.denied == 0
    }
}

/// Builds a [`RuleConfig`](graphprof_analysis::RuleConfig) from the
/// repeatable `--deny/--warn/--allow` flags. Each flag takes a comma
/// list of rule codes or `all`. `all` entries apply first (in deny,
/// warn, allow order), then specific codes (same order), so a specific
/// code always overrides an `all` and `--allow` wins ties.
fn rule_config(args: &Args) -> Result<graphprof_analysis::RuleConfig, CliError> {
    use graphprof_analysis::Action;
    let mut config = graphprof_analysis::RuleConfig::new();
    let flags = [("deny", Action::Deny), ("warn", Action::Warn), ("allow", Action::Allow)];
    // `all` entries first, then specific codes, so specifics always win.
    for (flag, action) in flags {
        for value in args.values(flag) {
            if comma_list(value).iter().any(|code| code == "all") {
                config.set_all(action);
            }
        }
    }
    for (flag, action) in flags {
        for value in args.values(flag) {
            for code in comma_list(value).iter().filter(|code| *code != "all") {
                config.set(code, action).map_err(|e| CliError::Usage(format!("--{flag}: {e}")))?;
            }
        }
    }
    Ok(config)
}

/// `graphprof analyze <prog.gpx> <gmon.out> [--jobs N] [--salvage]
/// [--deny CODES] [--warn CODES] [--allow CODES] [--json FILE]`
///
/// Everything `graphprof check` verifies, plus the whole-program
/// call-graph analysis: the static call graph (crawled arcs ∪
/// dataflow-resolved indirects) with Tarjan SCCs, dominators, and entry
/// reachability, cross-checked against the dynamic profile for
/// impossible arcs, unreachable-but-sampled text, static-vs-runtime
/// cycle mismatches, and per-SCC call-count conservation.
///
/// Each finding resolves through the rule registry to an action —
/// `deny` (fails the gate), `warn`, or `allow` (suppressed) — printed
/// as `{action}: [{code}] {message}`. `--deny/--warn/--allow` take
/// comma lists of rule codes or `all`; specific codes override `all`.
/// `--json FILE` additionally writes the report in the documented
/// `graphprof-analyze-report/1` schema.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, I/O, unknown rule codes, or
/// structurally unreadable inputs (semantic problems become findings).
pub fn analyze(args: &Args) -> Result<AnalyzeOutcome, CliError> {
    let [exe_path, gmon_path] = args.positionals() else {
        return Err(CliError::Usage(
            "graphprof analyze <prog.gpx> <gmon.out> [--deny CODES] [--json FILE]".to_string(),
        ));
    };
    let config = rule_config(args)?;
    let exe = objfile::read_executable(&read(exe_path)?)?;
    let gmon_bytes = read(gmon_path)?;
    let mut output = String::new();
    let gmon = if args.switch("salvage") {
        let (gmon, report) = Gmon::from_bytes_salvage(&gmon_bytes)?;
        if !report.is_clean() {
            output.push_str(&format!("salvage: {report}\n"));
        }
        gmon
    } else {
        Gmon::from_bytes(&gmon_bytes)?
    };

    let report =
        graphprof_analysis::AnalyzeReport::build(&exe, &gmon, resolve_jobs(args)?, &config);
    output.push_str(&report.render_text(gmon_path));
    if let Some(json_path) = args.value("json") {
        write(json_path, report.to_json(exe_path, gmon_path).to_pretty().as_bytes())?;
    }
    Ok(AnalyzeOutcome {
        output,
        denied: report.denied,
        warned: report.warned,
        allowed: report.allowed,
    })
}

/// The outcome of `graphprof regress`: the rendered report plus the
/// verdict the binary's exit code derives from.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressOutcome {
    /// The rendered report (ranked text).
    pub output: String,
    /// True when any routine cleared every threshold.
    pub regressed: bool,
}

impl RegressOutcome {
    /// Whether the gate passes (no regression flagged).
    pub fn is_clean(&self) -> bool {
        !self.regressed
    }
}

/// Parses a float-valued flag like `--min-sigma 2.5`.
fn float_value(args: &Args, name: &str) -> Result<Option<f64>, CliError> {
    match args.value(name) {
        None => Ok(None),
        Some(raw) => {
            raw.parse::<f64>().ok().filter(|v| v.is_finite() && *v >= 0.0).map(Some).ok_or_else(
                || CliError::Usage(format!("--{name} expects a non-negative number, got `{raw}`")),
            )
        }
    }
}

/// Reads the regression-gate thresholds shared by `graphprof regress`
/// and `graphprof remote regress` from `--min-sigma`, `--min-ticks`,
/// and `--min-pct`.
pub(crate) fn parse_thresholds(args: &Args) -> Result<graphprof_regress::Thresholds, CliError> {
    let mut t = graphprof_regress::Thresholds::default();
    if let Some(v) = float_value(args, "min-sigma")? {
        t.min_sigma = v;
    }
    if let Some(v) = float_value(args, "min-ticks")? {
        t.min_ticks = v;
    }
    if let Some(v) = float_value(args, "min-pct")? {
        t.min_pct = v;
    }
    Ok(t)
}

/// `graphprof regress <prog.gpx> <before> <after> [--min-sigma S]
/// [--min-ticks T] [--min-pct P] [--json FILE]`
///
/// The offline statistical regression gate: compares two profiles of one
/// executable and flags only movements beyond sampling noise (see
/// `docs/REGRESSION.md`). `<before>` and `<after>` expand like
/// `graphprof`'s profile positionals — a file, a directory of
/// `gmon.out*` files, or a `*`/`?` pattern. When the before side expands
/// to K files they form a trailing baseline: the after profile is scored
/// against their per-window mean, whose noise shrinks as 1/K. Multiple
/// after files are summed as one run.
///
/// The report ranks every routine (regressions first, by sigma);
/// `--json FILE` additionally writes the versioned
/// `graphprof-regress-report/1` document. The binary exits 1 on a
/// regression, 0 when clean, 2 on usage errors.
///
/// # Errors
///
/// Returns a [`CliError`] for usage or I/O problems, and for
/// incomparable profiles (different sampling periods).
pub fn regress(args: &Args) -> Result<RegressOutcome, CliError> {
    let [exe_path, before_raw, after_raw] = args.positionals() else {
        return Err(CliError::Usage(
            "graphprof regress <prog.gpx> <before> <after> [--min-sigma S] [--json FILE]"
                .to_string(),
        ));
    };
    let thresholds = parse_thresholds(args)?;
    let exe = load_executable(exe_path)?;
    let load_side = |raw: &String| -> Result<(Gmon, u64), CliError> {
        let paths = expand_gmon_paths(std::slice::from_ref(raw))?;
        let mut merged: Option<Gmon> = None;
        for path in &paths {
            let gmon = Gmon::from_bytes(&read(path)?)?;
            match merged.as_mut() {
                None => merged = Some(gmon),
                Some(sum) => sum.merge(&gmon).map_err(|e| {
                    CliError::Usage(format!("cannot sum `{path}` into the side: {e}"))
                })?,
            }
        }
        Ok((merged.expect("expansion is never empty"), paths.len() as u64))
    };
    let (before, before_windows) = load_side(before_raw)?;
    let (after, _) = load_side(after_raw)?;
    let opts = graphprof_regress::CompareOptions { thresholds, before_windows };
    let report = graphprof_regress::compare(&exe, &before, &after, &opts)?;
    if let Some(json_path) = args.value("json") {
        write(json_path, report.to_json(before_raw, after_raw).to_pretty().as_bytes())?;
    }
    Ok(RegressOutcome {
        output: report.render_text(before_raw, after_raw),
        regressed: !report.is_clean(),
    })
}

/// `gpx-dis <prog.gpx>` — prints a symbol-annotated disassembly listing.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, I/O, or malformed text.
pub fn disassemble(args: &Args) -> Result<String, CliError> {
    let [input] = args.positionals() else {
        return Err(CliError::Usage("gpx-dis <prog.gpx>".to_string()));
    };
    let exe = load_executable(input)?;
    Ok(disasm::disassemble(&exe)?)
}

/// `graphprof <prog.gpx> <gmon...> [--flat-only|--graph-only]
/// [--no-static] [--exclude from:to]... [--break-cycles N]
/// [--min-percent P] [--focus NAME] [--keep a,b,c] [--cps N] [--sum file]
/// [--jobs N]`
///
/// The post-processor. Multiple gmon files are summed (the paper's
/// several-runs feature); a `<gmon>` positional may also be a directory
/// (every `gmon.out*` inside it) or a `*`/`?` pattern. `--sum`
/// additionally writes the merged profile back out, like `gprof -s`.
///
/// # Errors
///
/// Returns a [`CliError`] for usage, I/O, merge, or analysis problems.
pub fn report(args: &Args) -> Result<String, CliError> {
    let [exe_path, gmon_paths @ ..] = args.positionals() else {
        return Err(CliError::Usage(
            "graphprof <prog.gpx> <gmon.out> [more gmon files...]".to_string(),
        ));
    };
    if gmon_paths.is_empty() {
        return Err(CliError::Usage(
            "graphprof <prog.gpx> <gmon.out> [more gmon files...]".to_string(),
        ));
    }
    let exe = load_executable(exe_path)?;
    let jobs = resolve_jobs(args)?;
    // Positionals may name directories (every gmon.out* inside) or
    // `*`/`?` patterns as well as plain files.
    let gmon_paths = expand_gmon_paths(gmon_paths)?;
    let mut blobs = Vec::with_capacity(gmon_paths.len());
    for path in &gmon_paths {
        blobs.push(read(path)?);
    }
    let gmon = graphprof::sum_profile_bytes(&blobs, jobs)?;
    if let Some(sum_path) = args.value("sum") {
        write(sum_path, &gmon.to_bytes())?;
    }

    let mut options = Options::default().static_graph(!args.switch("no-static")).jobs(jobs);
    for pair in args.values("exclude") {
        let Some((from, to)) = pair.split_once(':') else {
            return Err(CliError::Usage(format!("--exclude expects caller:callee, got `{pair}`")));
        };
        options = options.exclude_arc(from.trim(), to.trim());
    }
    if let Some(bound) = args.int_value("break-cycles")? {
        options = options.break_cycles(bound as usize);
    }
    if let Some(cps) = args.int_value("cps")? {
        options = options.cycles_per_second(cps as f64);
    }
    let filters_given = [
        args.value("min-percent").is_some(),
        args.value("focus").is_some(),
        args.value("keep").is_some(),
        args.value("hide").is_some(),
    ]
    .iter()
    .filter(|&&b| b)
    .count();
    if filters_given > 1 {
        return Err(CliError::Usage(
            "--min-percent, --focus, --keep, and --hide are exclusive".to_string(),
        ));
    }
    if let Some(pct) = args.value("min-percent") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| CliError::Usage(format!("--min-percent expects a number, got `{pct}`")))?;
        options = options.filter(Filter::MinPercent(pct));
    }
    if let Some(name) = args.value("focus") {
        options = options.filter(Filter::Focus(name.to_string()));
    }
    if let Some(names) = args.value("keep") {
        options = options.filter(Filter::Keep(comma_list(names)));
    }
    if let Some(names) = args.value("hide") {
        options = options.filter(Filter::Exclude(comma_list(names)));
    }

    let analysis = Gprof::new(options).analyze(&exe, &gmon)?;
    let mut out = String::new();
    if !args.switch("graph-only") {
        out.push_str(&analysis.render_flat());
        out.push('\n');
    }
    if !args.switch("flat-only") {
        if !args.switch("brief") {
            out.push_str(graphprof::render::render_legend());
            out.push('\n');
        }
        out.push_str(&analysis.render_call_graph());
    }
    if args.switch("coverage") {
        out.push('\n');
        out.push_str(&graphprof::coverage(&analysis).render());
    }
    if let Some(dot_path) = args.value("dot") {
        write(dot_path, graphprof::render_dot(&analysis).as_bytes())?;
    }
    if let Some(prefix) = args.value("tsv") {
        write(&format!("{prefix}.flat.tsv"), graphprof::flat_to_tsv(analysis.flat()).as_bytes())?;
        write(
            &format!("{prefix}.cg.tsv"),
            graphprof::call_graph_to_tsv(analysis.call_graph()).as_bytes(),
        )?;
    }
    if args.switch("annotate") {
        out.push('\n');
        out.push_str(&graphprof::annotate(&exe, gmon.histogram())?.render());
    }
    if !analysis.removed_arcs().is_empty() {
        out.push_str("\narcs removed by the cycle-breaking heuristic:\n");
        for (from, to) in analysis.removed_arcs() {
            out.push_str(&format!("    {from} -> {to}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("graphprof-cli-{tag}-{}", std::process::id()));
            fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }

        fn path(&self, name: &str) -> String {
            self.0.join(name).to_string_lossy().into_owned()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    const SOURCE: &str = "
        routine main { loop 10 { call work } }
        routine work { work 500 call helper }
        routine helper { work 100 }
    ";

    fn parse(argv: &[String], values: &[&str], switches: &[&str]) -> Args {
        Args::parse(argv, values, switches).expect("parses")
    }

    fn assemble_sample(dir: &TempDir) -> String {
        let src = dir.path("prog.s");
        fs::write(&src, SOURCE).expect("writes");
        let exe = dir.path("prog.gpx");
        let argv = vec![src, "--out".to_string(), exe.clone()];
        let args = parse(&argv, &["out", "instrument", "base", "only", "except"], &[]);
        assemble(&args).expect("assembles");
        exe
    }

    #[test]
    fn assemble_run_report_round_trip() {
        let dir = TempDir::new("pipeline");
        let exe = assemble_sample(&dir);
        let gmon = dir.path("gmon.out");

        let argv = vec![
            exe.clone(),
            "--profile".to_string(),
            gmon.clone(),
            "--tick".to_string(),
            "10".to_string(),
        ];
        let args = parse(
            &argv,
            &["profile", "tick", "shift", "max-cycles", "monitor-only"],
            &["no-profile"],
        );
        let summary = run(&args).expect("runs");
        assert!(summary.contains("halted"), "{summary}");
        assert!(summary.contains("samples"), "{summary}");

        let argv = vec![exe, gmon];
        let args = parse(
            &argv,
            &["exclude", "break-cycles", "min-percent", "focus", "keep", "cps", "sum"],
            &["flat-only", "graph-only", "no-static", "coverage", "annotate", "brief"],
        );
        let output = report(&args).expect("reports");
        assert!(output.contains("flat profile:"));
        assert!(output.contains("call graph profile:"));
        assert!(output.contains("work"));
        assert!(output.contains("10/10"));
    }

    #[test]
    fn hot_path_knobs_never_change_profile_bytes() {
        let dir = TempDir::new("hotknobs");
        let exe = assemble_sample(&dir);
        let run_with = |name: &str, extra: &[&str]| -> Vec<u8> {
            let gmon = dir.path(name);
            let mut argv = vec![
                exe.clone(),
                "--profile".to_string(),
                gmon.clone(),
                "--tick".to_string(),
                "10".to_string(),
            ];
            argv.extend(extra.iter().map(|s| s.to_string()));
            let args = parse(
                &argv,
                &["profile", "tick", "shift", "max-cycles", "monitor-only", "tick-batch"],
                &["no-profile", "prefetch"],
            );
            run(&args).expect("runs");
            fs::read(&gmon).expect("reads")
        };
        let baseline = run_with("gmon.default", &[]);
        // Immediate delivery, tiny batches, huge batches, and the
        // prefetching probe must all write the identical file.
        assert_eq!(run_with("gmon.batch1", &["--tick-batch", "1"]), baseline);
        assert_eq!(run_with("gmon.batch3", &["--tick-batch", "3"]), baseline);
        assert_eq!(run_with("gmon.batch1m", &["--tick-batch", "1048576"]), baseline);
        assert_eq!(run_with("gmon.prefetch", &["--prefetch"]), baseline);
        assert_eq!(run_with("gmon.both", &["--prefetch", "--tick-batch", "7"]), baseline);
    }

    #[test]
    fn report_sums_multiple_gmon_files() {
        let dir = TempDir::new("sum");
        let exe = assemble_sample(&dir);
        let mut gmons = Vec::new();
        for i in 0..3 {
            let gmon = dir.path(&format!("gmon.{i}"));
            let argv = vec![
                exe.clone(),
                "--profile".to_string(),
                gmon.clone(),
                "--tick".to_string(),
                "10".to_string(),
            ];
            let args = parse(
                &argv,
                &["profile", "tick", "shift", "max-cycles", "monitor-only"],
                &["no-profile"],
            );
            run(&args).expect("runs");
            gmons.push(gmon);
        }
        let sum_out = dir.path("gmon.sum");
        let mut argv = vec![exe];
        argv.extend(gmons);
        argv.push("--sum".to_string());
        argv.push(sum_out.clone());
        argv.push("--flat-only".to_string());
        let args = parse(
            &argv,
            &[
                "exclude",
                "break-cycles",
                "min-percent",
                "focus",
                "keep",
                "hide",
                "cps",
                "sum",
                "dot",
                "tsv",
            ],
            &["flat-only", "graph-only", "no-static", "coverage", "annotate", "brief"],
        );
        let output = report(&args).expect("reports");
        // Three identical runs: 30 calls of work.
        assert!(output.contains("30"), "{output}");
        let summed = Gmon::from_bytes(&fs::read(&sum_out).expect("reads")).expect("parses");
        assert!(summed.histogram().total() > 0);
    }

    /// Flag lists matching what the `graphprof` binary declares.
    const REPORT_VALUES: &[&str] = &[
        "exclude",
        "break-cycles",
        "min-percent",
        "focus",
        "keep",
        "hide",
        "cps",
        "sum",
        "dot",
        "tsv",
        "jobs",
    ];
    const REPORT_SWITCHES: &[&str] =
        &["flat-only", "graph-only", "no-static", "coverage", "annotate", "brief"];

    #[test]
    fn report_expands_directories_and_patterns() {
        let dir = TempDir::new("expand");
        let exe = assemble_sample(&dir);
        // A directory of 20 gmon.out.NN profiles from identical runs.
        let mut explicit = Vec::new();
        for i in 0..20 {
            let gmon = dir.path(&format!("gmon.out.{i:02}"));
            let argv = vec![
                exe.clone(),
                "--profile".to_string(),
                gmon.clone(),
                "--tick".to_string(),
                "10".to_string(),
            ];
            let args = parse(
                &argv,
                &["profile", "tick", "shift", "max-cycles", "monitor-only", "jobs"],
                &["no-profile"],
            );
            run(&args).expect("runs");
            explicit.push(gmon);
        }

        let report_with = |inputs: &[String], jobs: &str| -> String {
            let mut argv = vec![exe.clone()];
            argv.extend(inputs.iter().cloned());
            argv.push("--jobs".to_string());
            argv.push(jobs.to_string());
            report(&parse(&argv, REPORT_VALUES, REPORT_SWITCHES)).expect("reports")
        };

        // Directory, glob, and the explicit file list must all see the
        // same 20 profiles; jobs=1 and jobs=8 must render byte-identically.
        let by_files = report_with(&explicit, "1");
        let by_dir = report_with(&[dir.0.to_string_lossy().into_owned()], "1");
        let by_glob = report_with(&[dir.path("gmon.out.*")], "1");
        assert_eq!(by_dir, by_files);
        assert_eq!(by_glob, by_files);
        assert_eq!(report_with(&explicit, "8"), by_files);
        assert_eq!(report_with(&[dir.path("gmon.out.*")], "8"), by_files);
        // A subset pattern sums fewer runs, so it must render differently.
        assert_ne!(report_with(&[dir.path("gmon.out.0?")], "1"), by_files);
        // 20 identical runs of 10 calls each: 200 calls of work.
        assert!(by_files.contains("200"), "{by_files}");
    }

    #[test]
    fn report_rejects_empty_expansions() {
        let dir = TempDir::new("empty-expand");
        let exe = assemble_sample(&dir);
        let empty = dir.path("profiles");
        fs::create_dir_all(&empty).unwrap();
        let argv = vec![exe.clone(), empty];
        let args = parse(&argv, REPORT_VALUES, REPORT_SWITCHES);
        assert!(matches!(report(&args), Err(CliError::Usage(_))));
        let argv = vec![exe, dir.path("gmon.nope.*")];
        let args = parse(&argv, REPORT_VALUES, REPORT_SWITCHES);
        assert!(matches!(report(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn glob_matcher_semantics() {
        assert!(glob_matches("gmon.out.*", "gmon.out.07"));
        assert!(glob_matches("gmon.out*", "gmon.out"));
        assert!(glob_matches("*.out.??", "gmon.out.07"));
        assert!(!glob_matches("gmon.out.?", "gmon.out.07"));
        assert!(!glob_matches("gmon.out.*", "gmon.sum"));
        assert!(glob_matches("*", "anything"));
        assert!(!glob_matches("", "x"));
        assert!(glob_matches("**a", "za"));
    }

    #[test]
    fn disassemble_lists_routines() {
        let dir = TempDir::new("dis");
        let exe = assemble_sample(&dir);
        let argv = vec![exe];
        let args = parse(&argv, &[], &[]);
        let listing = disassemble(&args).expect("disassembles");
        assert!(listing.contains("main:"));
        assert!(listing.contains("mcount"));
        assert!(listing.contains("; work"), "{listing}");
    }

    #[test]
    fn bad_usage_is_reported() {
        let args = parse(&[], &[], &[]);
        assert!(matches!(assemble(&args), Err(CliError::Usage(_))));
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        assert!(matches!(disassemble(&args), Err(CliError::Usage(_))));
        assert!(matches!(report(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_instrument_value_is_reported() {
        let dir = TempDir::new("badinst");
        let src = dir.path("prog.s");
        fs::write(&src, SOURCE).expect("writes");
        let argv = vec![src, "--instrument".to_string(), "everything".to_string()];
        let args = parse(&argv, &["out", "instrument", "base", "only", "except"], &[]);
        assert!(matches!(assemble(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_input_file_is_an_io_error() {
        let argv = vec!["does-not-exist.s".to_string()];
        let args = parse(&argv, &["out", "instrument", "base", "only", "except"], &[]);
        assert!(matches!(assemble(&args), Err(CliError::Io { .. })));
    }

    #[test]
    fn exclude_flag_validates_shape() {
        let dir = TempDir::new("excl");
        let exe = assemble_sample(&dir);
        let gmon = dir.path("gmon.out");
        let argv = vec![
            exe.clone(),
            "--profile".to_string(),
            gmon.clone(),
            "--tick".to_string(),
            "10".to_string(),
        ];
        let args = parse(
            &argv,
            &["profile", "tick", "shift", "max-cycles", "monitor-only"],
            &["no-profile"],
        );
        run(&args).expect("runs");

        let argv = vec![exe, gmon, "--exclude".to_string(), "nocolon".to_string()];
        let args = parse(
            &argv,
            &[
                "exclude",
                "break-cycles",
                "min-percent",
                "focus",
                "keep",
                "hide",
                "cps",
                "sum",
                "dot",
                "tsv",
            ],
            &["flat-only", "graph-only", "no-static", "coverage", "annotate", "brief"],
        );
        assert!(matches!(report(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn check_passes_a_clean_profile() {
        let dir = TempDir::new("checkok");
        let exe = assemble_sample(&dir);
        let gmon = dir.path("gmon.out");
        let argv = vec![
            exe.clone(),
            "--profile".to_string(),
            gmon.clone(),
            "--tick".to_string(),
            "10".to_string(),
        ];
        let args = parse(
            &argv,
            &["profile", "tick", "shift", "max-cycles", "monitor-only"],
            &["no-profile"],
        );
        run(&args).expect("runs");

        let argv = vec![exe, gmon];
        let report = check(&parse(&argv, &[], &[])).expect("checks");
        assert!(report.is_clean(), "{}", report.output);
        assert_eq!(report.errors, 0);
        assert!(report.output.contains("0 error(s)"), "{}", report.output);
    }

    #[test]
    fn check_flags_a_corrupted_profile() {
        let dir = TempDir::new("checkbad");
        let exe = assemble_sample(&dir);
        let gmon = dir.path("gmon.out");
        let argv = vec![
            exe.clone(),
            "--profile".to_string(),
            gmon.clone(),
            "--tick".to_string(),
            "10".to_string(),
        ];
        let args = parse(
            &argv,
            &["profile", "tick", "shift", "max-cycles", "monitor-only"],
            &["no-profile"],
        );
        run(&args).expect("runs");

        // Shift every arc's from_pc by one byte: the sites no longer
        // follow call instructions.
        let data = Gmon::from_bytes(&fs::read(&gmon).unwrap()).unwrap();
        let arcs: Vec<_> = data
            .arcs()
            .iter()
            .map(|a| graphprof_monitor::RawArc {
                from_pc: if a.from_pc.is_null() { a.from_pc } else { a.from_pc.offset(1) },
                ..*a
            })
            .collect();
        let bad = Gmon::new(data.cycles_per_tick(), data.histogram().clone(), arcs);
        fs::write(&gmon, bad.to_bytes()).unwrap();

        let argv = vec![exe, gmon];
        let report = check(&parse(&argv, &[], &[])).expect("checks");
        assert!(!report.is_clean());
        assert!(report.output.contains("[arc-site-not-call]"), "{}", report.output);
    }

    const ANALYZE_VALUES: &[&str] = &["jobs", "deny", "warn", "allow", "json"];

    /// Runs the sample program and returns (exe path, gmon path).
    fn profiled_sample(dir: &TempDir) -> (String, String) {
        let exe = assemble_sample(dir);
        let gmon = dir.path("gmon.out");
        let argv = vec![
            exe.clone(),
            "--profile".to_string(),
            gmon.clone(),
            "--tick".to_string(),
            "10".to_string(),
        ];
        let args = parse(
            &argv,
            &["profile", "tick", "shift", "max-cycles", "monitor-only"],
            &["no-profile"],
        );
        run(&args).expect("runs");
        (exe, gmon)
    }

    #[test]
    fn analyze_passes_a_clean_profile_and_writes_json() {
        let dir = TempDir::new("analyzeok");
        let (exe, gmon) = profiled_sample(&dir);
        let json = dir.path("report.json");
        let argv = vec![exe, gmon, "--json".to_string(), json.clone()];
        let outcome = analyze(&parse(&argv, ANALYZE_VALUES, &["salvage"])).expect("analyzes");
        assert!(outcome.is_clean(), "{}", outcome.output);
        assert!(outcome.output.contains("0 denied"), "{}", outcome.output);
        let value = graphprof_analysis::json::parse(&fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            value.get("schema").and_then(graphprof_analysis::json::Value::as_str),
            Some("graphprof-analyze-report/1")
        );
        assert_eq!(value.get("exit").and_then(graphprof_analysis::json::Value::as_int), Some(0));
    }

    #[test]
    fn analyze_denies_corruption_and_respects_allow() {
        let dir = TempDir::new("analyzebad");
        let (exe, gmon) = profiled_sample(&dir);
        // Inflate one arc: conservation breaks.
        let data = Gmon::from_bytes(&fs::read(&gmon).unwrap()).unwrap();
        let mut arcs: Vec<_> = data.arcs().to_vec();
        arcs.iter_mut().find(|a| !a.from_pc.is_null()).unwrap().count += 11;
        let bad = Gmon::new(data.cycles_per_tick(), data.histogram().clone(), arcs);
        fs::write(&gmon, bad.to_bytes()).unwrap();

        let argv = vec![exe.clone(), gmon.clone()];
        let outcome = analyze(&parse(&argv, ANALYZE_VALUES, &["salvage"])).expect("analyzes");
        assert!(!outcome.is_clean());
        assert!(outcome.output.contains("deny: [call-count-mismatch]"), "{}", outcome.output);

        // Allowing the specific code (while denying everything else)
        // flips the gate back to clean.
        let argv = vec![
            exe.clone(),
            gmon.clone(),
            "--deny".to_string(),
            "all".to_string(),
            "--allow".to_string(),
            "call-count-mismatch,scc-count-imbalance".to_string(),
        ];
        let outcome = analyze(&parse(&argv, ANALYZE_VALUES, &["salvage"])).expect("analyzes");
        assert!(outcome.is_clean(), "{}", outcome.output);
        assert!(outcome.allowed >= 1, "{}", outcome.output);

        let argv = vec![exe, gmon, "--deny".to_string(), "no-such-rule".to_string()];
        let err = analyze(&parse(&argv, ANALYZE_VALUES, &["salvage"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(ref m) if m.contains("no-such-rule")), "{err}");
    }

    #[test]
    fn analyze_requires_both_paths() {
        let args = parse(&[], ANALYZE_VALUES, &["salvage"]);
        assert!(matches!(analyze(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn check_requires_both_paths() {
        let args = parse(&[], &[], &[]);
        assert!(matches!(check(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn run_with_budget_pauses() {
        let dir = TempDir::new("budget");
        let exe = assemble_sample(&dir);
        let gmon = dir.path("gmon.out");
        let argv = vec![
            exe,
            "--profile".to_string(),
            gmon,
            "--tick".to_string(),
            "10".to_string(),
            "--max-cycles".to_string(),
            "100".to_string(),
        ];
        let args = parse(
            &argv,
            &["profile", "tick", "shift", "max-cycles", "monitor-only"],
            &["no-profile"],
        );
        let summary = run(&args).expect("runs");
        assert!(summary.contains("paused"), "{summary}");
    }
}
