//! The machine plus monitoring runtime: runs an executable, sampling the
//! program counter and recording call graph arcs, and condenses the
//! profile to a gmon file at exit.

use graphprof_cli::args::normalize_jobs_shorthand;
use graphprof_cli::{run, Args, CliError};

const USAGE: &str = "gpx-run <prog.gpx> [--profile gmon.out] [--tick N] \
                     [--shift N] [--max-cycles N] [--monitor-only routine] [--no-profile] \
                     [--jobs N] [--tick-batch N] [--prefetch]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = normalize_jobs_shorthand(&argv);
    let result = Args::parse(
        &argv,
        &["profile", "tick", "shift", "max-cycles", "monitor-only", "jobs", "tick-batch"],
        &["no-profile", "prefetch"],
    )
    .and_then(|args| run(&args));
    match result {
        Ok(summary) => println!("{summary}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("gpx-run: {e}");
            std::process::exit(1);
        }
    }
}
