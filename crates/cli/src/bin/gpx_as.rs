//! The assembler: source text → executable, optionally instrumented
//! (`--instrument gprof` is this toolchain's `cc -pg`).

use graphprof_cli::{assemble, Args, CliError};

const USAGE: &str = "gpx-as <input.s> [--out file.gpx] \
                     [--instrument none|gprof|prof] [--base ADDR] \
                     [--only a,b] [--except a,b]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = Args::parse(&argv, &["out", "instrument", "base", "only", "except"], &[])
        .and_then(|args| assemble(&args));
    match result {
        Ok(summary) => println!("{summary}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("gpx-as: {e}");
            std::process::exit(1);
        }
    }
}
