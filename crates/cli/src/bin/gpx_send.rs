//! The data-plane uploader: ships `gmon.out` files into a running
//! `graphprof serve` instance's named series.

use graphprof_cli::{send, Args, CliError};

const USAGE: &str = "gpx-send <gmon...> --series NAME [--addr HOST:PORT] \
                     [--seq-start N] [--delta] [--timeout-ms N] [--retries N] [--retry-base-ms N]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = Args::parse(
        &argv,
        &["series", "addr", "seq-start", "timeout-ms", "retries", "retry-base-ms"],
        &["delta"],
    )
    .and_then(|args| send(&args));
    match result {
        Ok(output) => print!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("gpx-send: {e}");
            std::process::exit(1);
        }
    }
}
