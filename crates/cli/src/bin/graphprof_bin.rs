//! The post-processor: executable + profile data → flat profile and call
//! graph profile. Multiple gmon files are summed; analysis options mirror
//! the paper and retrospective.

use graphprof_cli::args::normalize_jobs_shorthand;
use graphprof_cli::{analyze, check, regress, remote, report, serve, Args, CliError};

const USAGE: &str = "graphprof <prog.gpx> <gmon.out|dir|pattern...> \
                     [--flat-only|--graph-only] [--no-static] \
                     [--exclude from:to]... [--break-cycles N] \
                     [--min-percent P | --focus NAME | --keep a,b,c | --hide a,b,c] \
                     [--cps N] [--sum file] [--coverage] [--annotate] [--brief] [--dot file] [--tsv prefix] [--jobs N]\n\
                     graphprof check <prog.gpx> <gmon.out> [--jobs N] [--salvage]\n\
                     graphprof analyze <prog.gpx> <gmon.out> [--jobs N] [--salvage] [--deny CODES] [--warn CODES] [--allow CODES] [--json FILE]\n\
                     graphprof regress <prog.gpx> <before> <after> [--min-sigma S] [--min-ticks T] [--min-pct P] [--json FILE]\n\
                     graphprof serve <prog.gpx> [--bind ADDR] [--vm NAME]... [--max-frame BYTES] [--max-series N] [--tick N] [--slice CYCLES] [--timeout-ms N] [--jobs N] [--data-dir DIR] [--wal-segment-bytes N] [--stripes N] [--group-commit-ms N | --no-group-commit] [--retain K] [--checkpoint-bytes N] [--checkpoint-records N]\n\
                     graphprof remote <addr> <on|off|status|reset|extract|moncontrol|flat|graph|sum|diff|regress|stats|checkpoint> [...] [--vm NAME] [--timeout-ms N] [--retries N] [--retry-base-ms N] [--window N | --baseline K] [--min-sigma S] [--min-ticks T] [--min-pct P] [--json]";

fn fail(e: &CliError) -> ! {
    match e {
        CliError::Usage(msg) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        other => {
            eprintln!("graphprof: {other}");
            std::process::exit(1);
        }
    }
}

fn serve_main(argv: &[String]) -> ! {
    let parsed = Args::parse(
        argv,
        &[
            "bind",
            "vm",
            "jobs",
            "max-frame",
            "max-series",
            "tick",
            "slice",
            "timeout-ms",
            "data-dir",
            "wal-segment-bytes",
            "stripes",
            "group-commit-ms",
            "retain",
            "checkpoint-bytes",
            "checkpoint-records",
        ],
        &["no-group-commit"],
    )
    .and_then(|args| serve(&args));
    match parsed {
        Ok((handle, banner)) => {
            // The banner carries the bound (possibly ephemeral) address;
            // scripts and tests read it before connecting.
            println!("{banner}");
            // Keep the handle alive and park until killed.
            let _server = handle;
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => fail(&e),
    }
}

fn remote_main(argv: &[String]) -> ! {
    let result = Args::parse(
        argv,
        &[
            "vm",
            "timeout-ms",
            "out",
            "into",
            "range",
            "routine",
            "retries",
            "retry-base-ms",
            "window",
            "baseline",
            "min-sigma",
            "min-ticks",
            "min-pct",
        ],
        &["off", "json"],
    )
    .and_then(|args| remote(&args));
    match result {
        Ok(outcome) => {
            print!("{}", outcome.output);
            std::process::exit(i32::from(outcome.regressed));
        }
        Err(e) => fail(&e),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = normalize_jobs_shorthand(&argv);
    // `check`, `serve`, and `remote` are subcommands: dispatch on the
    // first positional so plain report invocations (whose first argument
    // is a file path) keep working unchanged.
    match argv.first().map(String::as_str) {
        Some("serve") => serve_main(&argv[1..]),
        Some("remote") => remote_main(&argv[1..]),
        _ => {}
    }
    if argv.first().map(String::as_str) == Some("check") {
        match Args::parse(&argv[1..], &["jobs"], &["salvage"]).and_then(|args| check(&args)) {
            Ok(report) => {
                print!("{}", report.output);
                if !report.is_clean() {
                    std::process::exit(1);
                }
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("{msg}\n{USAGE}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("graphprof: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if argv.first().map(String::as_str) == Some("regress") {
        let parsed = Args::parse(&argv[1..], &["min-sigma", "min-ticks", "min-pct", "json"], &[]);
        match parsed.and_then(|args| regress(&args)) {
            Ok(outcome) => {
                print!("{}", outcome.output);
                if outcome.regressed {
                    std::process::exit(1);
                }
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("{msg}\n{USAGE}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("graphprof: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if argv.first().map(String::as_str) == Some("analyze") {
        let parsed =
            Args::parse(&argv[1..], &["jobs", "deny", "warn", "allow", "json"], &["salvage"]);
        match parsed.and_then(|args| analyze(&args)) {
            Ok(outcome) => {
                print!("{}", outcome.output);
                if !outcome.is_clean() {
                    std::process::exit(1);
                }
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("{msg}\n{USAGE}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("graphprof: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let result = Args::parse(
        &argv,
        &[
            "exclude",
            "break-cycles",
            "min-percent",
            "focus",
            "keep",
            "hide",
            "cps",
            "sum",
            "dot",
            "tsv",
            "jobs",
        ],
        &["flat-only", "graph-only", "no-static", "coverage", "annotate", "brief"],
    )
    .and_then(|args| report(&args));
    match result {
        Ok(output) => print!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("graphprof: {e}");
            std::process::exit(1);
        }
    }
}
