//! The post-processor: executable + profile data → flat profile and call
//! graph profile. Multiple gmon files are summed; analysis options mirror
//! the paper and retrospective.

use graphprof_cli::args::normalize_jobs_shorthand;
use graphprof_cli::{check, report, Args, CliError};

const USAGE: &str = "graphprof <prog.gpx> <gmon.out|dir|pattern...> \
                     [--flat-only|--graph-only] [--no-static] \
                     [--exclude from:to]... [--break-cycles N] \
                     [--min-percent P | --focus NAME | --keep a,b,c | --hide a,b,c] \
                     [--cps N] [--sum file] [--coverage] [--annotate] [--brief] [--dot file] [--tsv prefix] [--jobs N]\n\
                     graphprof check <prog.gpx> <gmon.out> [--jobs N]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = normalize_jobs_shorthand(&argv);
    // `check` is a subcommand: dispatch on the first positional so plain
    // report invocations (whose first argument is a file path) keep
    // working unchanged.
    if argv.first().map(String::as_str) == Some("check") {
        match Args::parse(&argv[1..], &["jobs"], &[]).and_then(|args| check(&args)) {
            Ok(report) => {
                print!("{}", report.output);
                if !report.is_clean() {
                    std::process::exit(1);
                }
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("{msg}\n{USAGE}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("graphprof: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let result = Args::parse(
        &argv,
        &[
            "exclude",
            "break-cycles",
            "min-percent",
            "focus",
            "keep",
            "hide",
            "cps",
            "sum",
            "dot",
            "tsv",
            "jobs",
        ],
        &["flat-only", "graph-only", "no-static", "coverage", "annotate", "brief"],
    )
    .and_then(|args| report(&args));
    match result {
        Ok(output) => print!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("graphprof: {e}");
            std::process::exit(1);
        }
    }
}
