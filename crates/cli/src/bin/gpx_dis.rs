//! The disassembler: a symbol-annotated listing of an executable's text.

use graphprof_cli::{disassemble, Args, CliError};

const USAGE: &str = "gpx-dis <prog.gpx>";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = Args::parse(&argv, &[], &[]).and_then(|args| disassemble(&args));
    match result {
        Ok(listing) => print!("{listing}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("gpx-dis: {e}");
            std::process::exit(1);
        }
    }
}
