//! The graphprof command-line toolchain.
//!
//! Four tools mirror the 1982 workflow:
//!
//! * `gpx-as` — the assembler/"compiler": source text → executable, with
//!   `--instrument gprof` playing the role of `cc -pg`;
//! * `gpx-run` — the machine plus the monitoring runtime: runs an
//!   executable and condenses the profile data to a gmon file at exit;
//! * `gpx-dis` — a symbol-annotated disassembler;
//! * `graphprof` — the post-processor: executable + gmon file(s) → flat
//!   profile and call graph profile, with the paper's and retrospective's
//!   options (static graph, arc exclusion, bounded cycle breaking,
//!   filtering, multi-run summation). Its `check` subcommand lints a
//!   profile against its executable and exits non-zero on inconsistency;
//!   `analyze` adds the whole-program call-graph analysis behind a
//!   configurable `--deny/--warn/--allow` rule gate with JSON output;
//!   `regress` is the statistical regression gate over two profiles
//!   (sampling-noise sigmas, exit 1 on a real slowdown);
//!   its `serve` subcommand hosts the continuous-profiling collection
//!   server and `remote` drives one (kgmon verbs, queries, and the
//!   same regression gate over server-retained windows);
//! * `gpx-send` — uploads gmon files into a running collection server.
//!
//! The command implementations live here as library functions that take
//! parsed arguments and return the produced output, so they are testable
//! without spawning processes; the binaries are thin wrappers.

pub mod args;
pub mod commands;
pub mod error;
pub mod remote;

pub use args::Args;
pub use commands::{
    analyze, assemble, check, disassemble, regress, report, run, AnalyzeOutcome, CheckReport,
    RegressOutcome,
};
pub use error::CliError;
pub use remote::{remote, send, serve, RemoteOutcome, DEFAULT_ADDR};
