//! Errors shared by the command-line tools.

use std::error::Error;
use std::fmt;

use graphprof::AnalyzeError;
use graphprof_machine::{
    AsmError, CompileError, DecodeError, InterpError, ObjFileError, VerifyIssue,
};
use graphprof_monitor::GmonError;

/// Any failure a command-line tool can report.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was wrong.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Assembly source failed to parse.
    Asm(AsmError),
    /// The program failed to compile.
    Compile(CompileError),
    /// An executable file was unreadable.
    ObjFile(ObjFileError),
    /// A profile file was unreadable or unmergeable.
    Gmon(GmonError),
    /// The machine faulted at run time.
    Interp(InterpError),
    /// The executable text was malformed.
    Decode(DecodeError),
    /// The analysis failed.
    Analyze(AnalyzeError),
    /// An executable failed the verifier's semantic checks.
    Verify {
        /// The file that failed verification.
        path: String,
        /// Every error-severity issue found, in discovery order.
        issues: Vec<VerifyIssue>,
    },
    /// A remote call to a collection server failed: connection refused,
    /// deadline exceeded, or a server-side reject.
    Remote(graphprof_server::ClientError),
    /// Two profiles could not be compared by the regression gate.
    Regress(graphprof_regress::CompareError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Asm(e) => write!(f, "assembly error: {e}"),
            CliError::Compile(e) => write!(f, "compile error: {e}"),
            CliError::ObjFile(e) => write!(f, "executable error: {e}"),
            CliError::Gmon(e) => write!(f, "profile error: {e}"),
            CliError::Interp(e) => write!(f, "run-time fault: {e}"),
            CliError::Decode(e) => write!(f, "text error: {e}"),
            CliError::Analyze(e) => write!(f, "analysis error: {e}"),
            CliError::Verify { path, issues } => {
                write!(f, "{path}: executable failed verification")?;
                for issue in issues {
                    write!(f, "\n  {issue}")?;
                }
                Ok(())
            }
            CliError::Remote(e) => write!(f, "remote error: {e}"),
            CliError::Regress(e) => write!(f, "regression gate error: {e}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Io { source, .. } => Some(source),
            CliError::Asm(e) => Some(e),
            CliError::Compile(e) => Some(e),
            CliError::ObjFile(e) => Some(e),
            CliError::Gmon(e) => Some(e),
            CliError::Interp(e) => Some(e),
            CliError::Decode(e) => Some(e),
            CliError::Analyze(e) => Some(e),
            CliError::Verify { .. } => None,
            CliError::Remote(e) => Some(e),
            CliError::Regress(e) => Some(e),
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError::$variant(e)
            }
        }
    };
}

from_error!(Asm, AsmError);
from_error!(Compile, CompileError);
from_error!(ObjFile, ObjFileError);
from_error!(Gmon, GmonError);
from_error!(Interp, InterpError);
from_error!(Decode, DecodeError);
from_error!(Analyze, AnalyzeError);
from_error!(Remote, graphprof_server::ClientError);
from_error!(Regress, graphprof_regress::CompareError);

impl CliError {
    /// Wraps an I/O error with the path it concerned.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io { path: path.into(), source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed_by_domain() {
        let e = CliError::Usage("gpx-as <input>".to_string());
        assert!(e.to_string().starts_with("usage:"));
        let e = CliError::io("x.gpx", std::io::Error::other("denied"));
        assert!(e.to_string().starts_with("x.gpx:"));
    }

    #[test]
    fn verify_errors_list_every_issue() {
        use graphprof_machine::Addr;
        let e = CliError::Verify {
            path: "bad.gpx".to_string(),
            issues: vec![
                VerifyIssue::BadEntry { entry: Addr::new(0x1234) },
                VerifyIssue::BadCallTarget { at: Addr::new(0x1000), target: Addr::new(0x2002) },
            ],
        };
        let text = e.to_string();
        assert!(text.starts_with("bad.gpx:"), "{text}");
        assert!(text.contains("0x1234"), "{text}");
        assert!(text.contains("0x2002"), "{text}");
    }

    #[test]
    fn sources_are_chained() {
        let e = CliError::from(GmonError::BadMagic);
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CliError::Usage(String::new())).is_none());
    }
}
