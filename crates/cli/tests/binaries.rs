//! End-to-end tests of the installed binaries, spawned as real processes:
//! the full 1982 workflow — assemble with instrumentation, run (writing
//! gmon.out at exit), and post-process — plus its failure modes.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("graphprof-bin-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_bin(bin: &str, args: &[&str]) -> Output {
    let path = match bin {
        "gpx-as" => env!("CARGO_BIN_EXE_gpx-as"),
        "gpx-run" => env!("CARGO_BIN_EXE_gpx-run"),
        "gpx-dis" => env!("CARGO_BIN_EXE_gpx-dis"),
        "graphprof" => env!("CARGO_BIN_EXE_graphprof"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(path).args(args).output().expect("binary spawns")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

const SOURCE: &str = "
    ; a small pipeline: main drives two phases sharing a helper
    routine main { loop 5 { call phase1 call phase2 } }
    routine phase1 { work 200 loop 2 { call helper } }
    routine phase2 { work 100 loop 6 { call helper } }
    routine helper { work 150 }
";

#[test]
fn full_workflow_through_the_binaries() {
    let dir = TempDir::new("workflow");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    let gmon = dir.path("gmon.out");
    fs::write(&src, SOURCE).expect("write source");

    // Assemble with gprof instrumentation (the default).
    let out = run_bin("gpx-as", &[&src, "--out", &exe]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("4 routines"), "{}", stdout(&out));

    // Run, writing profile data at exit.
    let out = run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("halted"), "{text}");
    assert!(text.contains("arcs"), "{text}");

    // Post-process.
    let out = run_bin("graphprof", &[&exe, &gmon]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("flat profile:"), "{text}");
    assert!(text.contains("call graph profile:"), "{text}");
    // helper: 5*(2+6) = 40 calls, split 10/40 and 30/40.
    assert!(text.contains("10/40"), "{text}");
    assert!(text.contains("30/40"), "{text}");

    // Disassemble.
    let out = run_bin("gpx-dis", &[&exe]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("phase1:"), "{text}");
    assert!(text.contains("mcount"), "{text}");
}

#[test]
fn graphprof_sums_runs_and_filters() {
    let dir = TempDir::new("sumfilter");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());

    let mut gmons = Vec::new();
    for i in 0..2 {
        let gmon = dir.path(&format!("gmon.{i}"));
        assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
        gmons.push(gmon);
    }
    let out =
        run_bin("graphprof", &[&exe, &gmons[0], &gmons[1], "--graph-only", "--focus", "helper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Two summed runs double the counts: 80 calls of helper.
    assert!(text.contains("20/80"), "{text}");
    assert!(text.contains("60/80"), "{text}");
    assert!(!text.contains("flat profile:"), "{text}");
}

#[test]
fn coverage_switch_reports_dead_code() {
    let dir = TempDir::new("coverage");
    let src = dir.path("prog.s");
    fs::write(
        &src,
        "routine main { call used callwhile 7, rare }
         routine used { work 100 }
         routine rare { work 100 }",
    )
    .expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "5"]).status.success());
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--coverage"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("coverage:"), "{text}");
    assert!(text.contains("never made"), "{text}");
    assert!(text.contains("main -> rare"), "{text}");
}

#[test]
fn dot_export_writes_a_digraph() {
    let dir = TempDir::new("dot");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
    let dot = dir.path("graph.dot");
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--dot", &dot]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = fs::read_to_string(&dot).expect("dot written");
    assert!(text.starts_with("digraph callgraph {"), "{text}");
    assert!(text.contains("\"helper\""), "{text}");
}

#[test]
fn monitor_only_restricts_profiling_to_one_routine() {
    let dir = TempDir::new("mononly");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    let out =
        run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "5", "--monitor-only", "helper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let report = run_bin("graphprof", &[&exe, &gmon, "--graph-only"]);
    let text = stdout(&report);
    // Only helper has recorded activity: its entry exists with calls...
    assert!(text.contains("helper ["), "{text}");
    // ...while the phases appear only as parents (no samples, no arcs in).
    let phase_primary = text.lines().find(|l| l.starts_with('[') && l.contains("phase1"));
    if let Some(line) = phase_primary {
        assert!(line.contains(" 0 "), "phase1 has no recorded calls: {line}");
    }

    // An unknown routine name is a usage error.
    let out = run_bin("gpx-run", &[&exe, "--profile", &gmon, "--monitor-only", "ghost"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn annotate_switch_projects_samples_onto_instructions() {
    let dir = TempDir::new("annotate");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "5"]).status.success());
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--annotate"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("annotated listing"), "{text}");
    assert!(text.contains("work 150"), "{text}");
    // The hot helper body carries a percentage annotation.
    let hot = text.lines().find(|l| l.contains("work 150")).unwrap();
    assert!(hot.contains('%'), "{hot}");
}

#[test]
fn brief_suppresses_the_legend() {
    let dir = TempDir::new("brief");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon]).status.success());
    let verbose = stdout(&run_bin("graphprof", &[&exe, &gmon]));
    assert!(verbose.contains("Each entry of the call graph profile"), "{verbose}");
    let brief = stdout(&run_bin("graphprof", &[&exe, &gmon, "--brief"]));
    assert!(!brief.contains("Each entry of the call graph profile"), "{brief}");
    assert!(brief.contains("call graph profile:"));
}

#[test]
fn tsv_export_writes_both_tables() {
    let dir = TempDir::new("tsv");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon]).status.success());
    let prefix = dir.path("profile");
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--tsv", &prefix]);
    assert!(out.status.success(), "{}", stderr(&out));
    let flat = fs::read_to_string(format!("{prefix}.flat.tsv")).expect("flat tsv");
    assert!(flat.starts_with("name\tpercent"), "{flat}");
    assert!(flat.contains("helper\t"));
    let cg = fs::read_to_string(format!("{prefix}.cg.tsv")).expect("cg tsv");
    assert!(cg.contains("\tprimary\t"), "{cg}");
    assert!(cg.contains("\tparent\t"), "{cg}");
}

#[test]
fn usage_errors_exit_2_with_usage_text() {
    for bin in ["gpx-as", "gpx-run", "gpx-dis", "graphprof"] {
        let out = run_bin(bin, &[]);
        assert_eq!(out.status.code(), Some(2), "{bin}");
        assert!(stderr(&out).contains(bin), "{bin}: {}", stderr(&out));
    }
}

#[test]
fn runtime_errors_exit_1_with_message() {
    let dir = TempDir::new("errors");
    // gpx-as on a missing file.
    let out = run_bin("gpx-as", &[&dir.path("nope.s")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("nope.s"));

    // gpx-run on a non-executable file.
    let junk = dir.path("junk.gpx");
    fs::write(&junk, b"not an executable").expect("write junk");
    let out = run_bin("gpx-run", &[&junk]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("magic"), "{}", stderr(&out));

    // graphprof with a profile from a different program.
    let src = dir.path("a.s");
    fs::write(&src, "routine main { work 100 }").expect("write");
    let exe_a = dir.path("a.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe_a]).status.success());
    let gmon_a = dir.path("gmon.a");
    assert!(run_bin("gpx-run", &[&exe_a, "--profile", &gmon_a]).status.success());

    let src_b = dir.path("b.s");
    fs::write(&src_b, SOURCE).expect("write");
    let exe_b = dir.path("b.gpx");
    assert!(run_bin("gpx-as", &[&src_b, "--out", &exe_b]).status.success());
    let out = run_bin("graphprof", &[&exe_b, &gmon_a]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("does not match"), "{}", stderr(&out));
}

/// A program whose every call site runs exactly once per activation of
/// its caller, so `graphprof check`'s conservation lint has teeth.
const STRAIGHT: &str = "
    routine main { work 50 call a call b }
    routine a { work 200 call b }
    routine b { work 100 }
";

/// Assembles STRAIGHT and produces a valid profile, returning the
/// executable and gmon paths.
fn straight_profile(dir: &TempDir) -> (String, String) {
    let src = dir.path("straight.s");
    fs::write(&src, STRAIGHT).expect("write source");
    let exe = dir.path("straight.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
    (exe, gmon)
}

/// Byte offset of the last arc record in a gmon file (the record with
/// the highest `from_pc`, since arcs are stored sorted).
fn last_arc_offset(gmon: &[u8]) -> usize {
    let nbuckets = u32::from_le_bytes(gmon[36..40].try_into().unwrap()) as usize;
    let narcs_off = 40 + nbuckets * 8;
    let narcs = u32::from_le_bytes(gmon[narcs_off..narcs_off + 4].try_into().unwrap()) as usize;
    assert!(narcs > 0, "profile recorded arcs");
    narcs_off + 4 + (narcs - 1) * 16
}

#[test]
fn check_accepts_a_clean_profile() {
    let dir = TempDir::new("checkclean");
    let (exe, gmon) = straight_profile(&dir);
    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 error(s)"), "{}", stdout(&out));
}

#[test]
fn check_detects_a_shifted_arc_site() {
    let dir = TempDir::new("checkshift");
    let (exe, gmon) = straight_profile(&dir);
    // Shift the last arc's from_pc by one byte: it no longer points just
    // past a call instruction. (The last arc has the highest from_pc, so
    // the file's sort order survives the bump.)
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let off = last_arc_offset(&bytes);
    let from = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    bytes[off..off + 4].copy_from_slice(&(from + 1).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");

    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [arc-site-not-call]"), "{text}");
}

#[test]
fn check_detects_an_out_of_text_histogram() {
    let dir = TempDir::new("checkbase");
    let (exe, gmon) = straight_profile(&dir);
    // The histogram base lives at byte offset 16 of the header; shifting
    // it moves the sampled window past the end of the text segment.
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let base = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    bytes[16..20].copy_from_slice(&(base + 0x1000).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");

    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [histogram-out-of-text]"), "{text}");
}

#[test]
fn check_detects_an_inflated_arc_count() {
    let dir = TempDir::new("checkcount");
    let (exe, gmon) = straight_profile(&dir);
    // Inflate the last arc's traversal count: its call site runs exactly
    // once per caller activation, so conservation must now fail.
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let off = last_arc_offset(&bytes) + 8;
    let count = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    bytes[off..off + 8].copy_from_slice(&(count + 100).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");

    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [call-count-mismatch]"), "{text}");
}

#[test]
fn check_without_arguments_is_a_usage_error() {
    let out = run_bin("graphprof", &["check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("graphprof check"), "{}", stderr(&out));
}

#[test]
fn corrupted_executables_fail_verification_loudly() {
    let dir = TempDir::new("badexe");
    let (exe, gmon) = straight_profile(&dir);
    // Retarget a call into the middle of routine `b` by patching its
    // 4-byte little-endian operand inside the object file's text.
    let listing = stdout(&run_bin("gpx-dis", &[&exe]));
    // Symbol lines look like `b: 0x1023 +7 [profiled]`.
    let b_line = listing.lines().find(|l| l.starts_with("b: ")).expect("b listed");
    let addr_token = b_line.split_whitespace().nth(1).expect("address token");
    let b_addr =
        u32::from_str_radix(addr_token.trim_start_matches("0x"), 16).expect("address parses");
    let mut bytes = fs::read(&exe).expect("read exe");
    let needle = b_addr.to_le_bytes();
    let pos = bytes.windows(4).position(|w| w == needle).expect("call target present");
    bytes[pos..pos + 4].copy_from_slice(&(b_addr + 2).to_le_bytes());
    fs::write(&exe, &bytes).expect("write exe");

    // gpx-run refuses the executable with a readable multi-line report.
    let out = run_bin("gpx-run", &[&exe, "--profile", &gmon]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("failed verification"), "{err}");
    assert!(err.contains("not a routine entry"), "{err}");

    // graphprof check reports the same problem as a finding instead.
    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[bad-executable]"), "{}", stdout(&out));
}

#[test]
fn assembly_errors_carry_positions() {
    let dir = TempDir::new("asmerr");
    let src = dir.path("bad.s");
    fs::write(&src, "routine main {\n  wurk 10\n}").expect("write");
    let out = run_bin("gpx-as", &[&src]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("2:"), "line number in: {err}");
    assert!(err.contains("wurk"), "{err}");
}

#[test]
fn prof_style_instrumentation_and_selection() {
    let dir = TempDir::new("profsel");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    // Instrument only phase1 and helper.
    let out = run_bin("gpx-as", &[&src, "--out", &exe, "--only", "phase1,helper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let listing = stdout(&run_bin("gpx-dis", &[&exe]));
    let mcounts = listing.matches("mcount").count();
    assert_eq!(mcounts, 2, "{listing}");
}
