//! End-to-end tests of the installed binaries, spawned as real processes:
//! the full 1982 workflow — assemble with instrumentation, run (writing
//! gmon.out at exit), and post-process — plus its failure modes.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("graphprof-bin-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_bin(bin: &str, args: &[&str]) -> Output {
    let path = match bin {
        "gpx-as" => env!("CARGO_BIN_EXE_gpx-as"),
        "gpx-run" => env!("CARGO_BIN_EXE_gpx-run"),
        "gpx-dis" => env!("CARGO_BIN_EXE_gpx-dis"),
        "graphprof" => env!("CARGO_BIN_EXE_graphprof"),
        "gpx-send" => env!("CARGO_BIN_EXE_gpx-send"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(path).args(args).output().expect("binary spawns")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

const SOURCE: &str = "
    ; a small pipeline: main drives two phases sharing a helper
    routine main { loop 5 { call phase1 call phase2 } }
    routine phase1 { work 200 loop 2 { call helper } }
    routine phase2 { work 100 loop 6 { call helper } }
    routine helper { work 150 }
";

#[test]
fn full_workflow_through_the_binaries() {
    let dir = TempDir::new("workflow");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    let gmon = dir.path("gmon.out");
    fs::write(&src, SOURCE).expect("write source");

    // Assemble with gprof instrumentation (the default).
    let out = run_bin("gpx-as", &[&src, "--out", &exe]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("4 routines"), "{}", stdout(&out));

    // Run, writing profile data at exit.
    let out = run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("halted"), "{text}");
    assert!(text.contains("arcs"), "{text}");

    // Post-process.
    let out = run_bin("graphprof", &[&exe, &gmon]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("flat profile:"), "{text}");
    assert!(text.contains("call graph profile:"), "{text}");
    // helper: 5*(2+6) = 40 calls, split 10/40 and 30/40.
    assert!(text.contains("10/40"), "{text}");
    assert!(text.contains("30/40"), "{text}");

    // Disassemble.
    let out = run_bin("gpx-dis", &[&exe]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("phase1:"), "{text}");
    assert!(text.contains("mcount"), "{text}");
}

#[test]
fn graphprof_sums_runs_and_filters() {
    let dir = TempDir::new("sumfilter");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());

    let mut gmons = Vec::new();
    for i in 0..2 {
        let gmon = dir.path(&format!("gmon.{i}"));
        assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
        gmons.push(gmon);
    }
    let out =
        run_bin("graphprof", &[&exe, &gmons[0], &gmons[1], "--graph-only", "--focus", "helper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Two summed runs double the counts: 80 calls of helper.
    assert!(text.contains("20/80"), "{text}");
    assert!(text.contains("60/80"), "{text}");
    assert!(!text.contains("flat profile:"), "{text}");
}

#[test]
fn coverage_switch_reports_dead_code() {
    let dir = TempDir::new("coverage");
    let src = dir.path("prog.s");
    fs::write(
        &src,
        "routine main { call used callwhile 7, rare }
         routine used { work 100 }
         routine rare { work 100 }",
    )
    .expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "5"]).status.success());
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--coverage"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("coverage:"), "{text}");
    assert!(text.contains("never made"), "{text}");
    assert!(text.contains("main -> rare"), "{text}");
}

#[test]
fn dot_export_writes_a_digraph() {
    let dir = TempDir::new("dot");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
    let dot = dir.path("graph.dot");
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--dot", &dot]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = fs::read_to_string(&dot).expect("dot written");
    assert!(text.starts_with("digraph callgraph {"), "{text}");
    assert!(text.contains("\"helper\""), "{text}");
}

#[test]
fn monitor_only_restricts_profiling_to_one_routine() {
    let dir = TempDir::new("mononly");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    let out =
        run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "5", "--monitor-only", "helper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let report = run_bin("graphprof", &[&exe, &gmon, "--graph-only"]);
    let text = stdout(&report);
    // Only helper has recorded activity: its entry exists with calls...
    assert!(text.contains("helper ["), "{text}");
    // ...while the phases appear only as parents (no samples, no arcs in).
    let phase_primary = text.lines().find(|l| l.starts_with('[') && l.contains("phase1"));
    if let Some(line) = phase_primary {
        assert!(line.contains(" 0 "), "phase1 has no recorded calls: {line}");
    }

    // An unknown routine name is a usage error.
    let out = run_bin("gpx-run", &[&exe, "--profile", &gmon, "--monitor-only", "ghost"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn annotate_switch_projects_samples_onto_instructions() {
    let dir = TempDir::new("annotate");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "5"]).status.success());
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--annotate"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("annotated listing"), "{text}");
    assert!(text.contains("work 150"), "{text}");
    // The hot helper body carries a percentage annotation.
    let hot = text.lines().find(|l| l.contains("work 150")).unwrap();
    assert!(hot.contains('%'), "{hot}");
}

#[test]
fn brief_suppresses_the_legend() {
    let dir = TempDir::new("brief");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon]).status.success());
    let verbose = stdout(&run_bin("graphprof", &[&exe, &gmon]));
    assert!(verbose.contains("Each entry of the call graph profile"), "{verbose}");
    let brief = stdout(&run_bin("graphprof", &[&exe, &gmon, "--brief"]));
    assert!(!brief.contains("Each entry of the call graph profile"), "{brief}");
    assert!(brief.contains("call graph profile:"));
}

#[test]
fn tsv_export_writes_both_tables() {
    let dir = TempDir::new("tsv");
    let src = dir.path("prog.s");
    fs::write(&src, SOURCE).expect("write source");
    let exe = dir.path("prog.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon]).status.success());
    let prefix = dir.path("profile");
    let out = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--tsv", &prefix]);
    assert!(out.status.success(), "{}", stderr(&out));
    let flat = fs::read_to_string(format!("{prefix}.flat.tsv")).expect("flat tsv");
    assert!(flat.starts_with("name\tpercent"), "{flat}");
    assert!(flat.contains("helper\t"));
    let cg = fs::read_to_string(format!("{prefix}.cg.tsv")).expect("cg tsv");
    assert!(cg.contains("\tprimary\t"), "{cg}");
    assert!(cg.contains("\tparent\t"), "{cg}");
}

#[test]
fn usage_errors_exit_2_with_usage_text() {
    for bin in ["gpx-as", "gpx-run", "gpx-dis", "graphprof", "gpx-send"] {
        let out = run_bin(bin, &[]);
        assert_eq!(out.status.code(), Some(2), "{bin}");
        assert!(stderr(&out).contains(bin), "{bin}: {}", stderr(&out));
    }
}

#[test]
fn runtime_errors_exit_1_with_message() {
    let dir = TempDir::new("errors");
    // gpx-as on a missing file.
    let out = run_bin("gpx-as", &[&dir.path("nope.s")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("nope.s"));

    // gpx-run on a non-executable file.
    let junk = dir.path("junk.gpx");
    fs::write(&junk, b"not an executable").expect("write junk");
    let out = run_bin("gpx-run", &[&junk]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("magic"), "{}", stderr(&out));

    // graphprof with a profile from a different program.
    let src = dir.path("a.s");
    fs::write(&src, "routine main { work 100 }").expect("write");
    let exe_a = dir.path("a.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe_a]).status.success());
    let gmon_a = dir.path("gmon.a");
    assert!(run_bin("gpx-run", &[&exe_a, "--profile", &gmon_a]).status.success());

    let src_b = dir.path("b.s");
    fs::write(&src_b, SOURCE).expect("write");
    let exe_b = dir.path("b.gpx");
    assert!(run_bin("gpx-as", &[&src_b, "--out", &exe_b]).status.success());
    let out = run_bin("graphprof", &[&exe_b, &gmon_a]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("does not match"), "{}", stderr(&out));
}

/// A program whose every call site runs exactly once per activation of
/// its caller, so `graphprof check`'s conservation lint has teeth.
const STRAIGHT: &str = "
    routine main { work 50 call a call b }
    routine a { work 200 call b }
    routine b { work 100 }
";

/// Assembles STRAIGHT and produces a valid profile, returning the
/// executable and gmon paths.
fn straight_profile(dir: &TempDir) -> (String, String) {
    let src = dir.path("straight.s");
    fs::write(&src, STRAIGHT).expect("write source");
    let exe = dir.path("straight.gpx");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
    (exe, gmon)
}

/// Byte offset of the last arc record in a gmon file (the record with
/// the highest `from_pc`, since arcs are stored sorted).
fn last_arc_offset(gmon: &[u8]) -> usize {
    let nbuckets = u32::from_le_bytes(gmon[36..40].try_into().unwrap()) as usize;
    let narcs_off = 40 + nbuckets * 8;
    let narcs = u32::from_le_bytes(gmon[narcs_off..narcs_off + 4].try_into().unwrap()) as usize;
    assert!(narcs > 0, "profile recorded arcs");
    narcs_off + 4 + (narcs - 1) * 16
}

#[test]
fn check_accepts_a_clean_profile() {
    let dir = TempDir::new("checkclean");
    let (exe, gmon) = straight_profile(&dir);
    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 error(s)"), "{}", stdout(&out));
}

#[test]
fn check_salvage_accepts_a_truncated_profile() {
    let dir = TempDir::new("checksalvage");
    let (exe, gmon) = straight_profile(&dir);
    // Tear the file mid-way through the last arc record, as a crash
    // while writing gmon.out would.
    let bytes = fs::read(&gmon).expect("read gmon");
    let cut = last_arc_offset(&bytes) + 5;
    fs::write(&gmon, &bytes[..cut]).expect("truncate gmon");

    // Without --salvage the torn file is a hard parse failure.
    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_ne!(out.status.code(), Some(0), "{}", stdout(&out));

    // With --salvage the valid prefix is linted and the cut reported.
    let out = run_bin("graphprof", &["check", "--salvage", &exe, &gmon]);
    let text = stdout(&out);
    assert!(text.contains("salvage:"), "{text}");
    assert!(text.contains("error(s)"), "salvaged profile was linted: {text}");
}

#[test]
fn check_detects_a_shifted_arc_site() {
    let dir = TempDir::new("checkshift");
    let (exe, gmon) = straight_profile(&dir);
    // Shift the last arc's from_pc by one byte: it no longer points just
    // past a call instruction. (The last arc has the highest from_pc, so
    // the file's sort order survives the bump.)
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let off = last_arc_offset(&bytes);
    let from = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    bytes[off..off + 4].copy_from_slice(&(from + 1).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");

    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [arc-site-not-call]"), "{text}");
}

#[test]
fn check_detects_an_out_of_text_histogram() {
    let dir = TempDir::new("checkbase");
    let (exe, gmon) = straight_profile(&dir);
    // The histogram base lives at byte offset 16 of the header; shifting
    // it moves the sampled window past the end of the text segment.
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let base = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    bytes[16..20].copy_from_slice(&(base + 0x1000).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");

    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [histogram-out-of-text]"), "{text}");
}

#[test]
fn check_detects_an_inflated_arc_count() {
    let dir = TempDir::new("checkcount");
    let (exe, gmon) = straight_profile(&dir);
    // Inflate the last arc's traversal count: its call site runs exactly
    // once per caller activation, so conservation must now fail.
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let off = last_arc_offset(&bytes) + 8;
    let count = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    bytes[off..off + 8].copy_from_slice(&(count + 100).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");

    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("error: [call-count-mismatch]"), "{text}");
}

#[test]
fn check_without_arguments_is_a_usage_error() {
    let out = run_bin("graphprof", &["check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("graphprof check"), "{}", stderr(&out));
}

/// Corrupts a STRAIGHT profile several ways at once so the report has
/// enough findings to expose any ordering instability.
fn messy_profile(dir: &TempDir) -> (String, String) {
    let (exe, gmon) = straight_profile(dir);
    let mut bytes = fs::read(&gmon).expect("read gmon");
    let off = last_arc_offset(&bytes);
    // Shift the last arc's site off a call boundary AND inflate an
    // earlier arc's count (the first arc record sits right after the
    // 4-byte arc count).
    let from = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    bytes[off..off + 4].copy_from_slice(&(from + 1).to_le_bytes());
    let nbuckets = u32::from_le_bytes(bytes[36..40].try_into().unwrap()) as usize;
    let first_count = 40 + nbuckets * 8 + 4 + 8;
    let count = u64::from_le_bytes(bytes[first_count..first_count + 8].try_into().unwrap());
    bytes[first_count..first_count + 8].copy_from_slice(&(count + 100).to_le_bytes());
    fs::write(&gmon, &bytes).expect("write gmon");
    (exe, gmon)
}

#[test]
fn check_output_bytes_are_jobs_invariant() {
    let dir = TempDir::new("checkjobs");
    let (exe, gmon) = messy_profile(&dir);
    let serial = run_bin("graphprof", &["check", &exe, &gmon, "--jobs", "1"]);
    let parallel = run_bin("graphprof", &["check", &exe, &gmon, "--jobs", "8"]);
    assert_eq!(serial.status.code(), Some(1), "{}", stdout(&serial));
    assert_eq!(serial.stdout, parallel.stdout, "check output depends on --jobs");
    // And the findings really are multiple, in (address, code) order.
    let text = stdout(&serial);
    assert!(text.matches("error: [").count() >= 2, "{text}");
}

#[test]
fn analyze_output_bytes_are_jobs_invariant() {
    let dir = TempDir::new("analyzejobs");
    let (exe, gmon) = messy_profile(&dir);
    let serial = run_bin("graphprof", &["analyze", &exe, &gmon, "--jobs", "1"]);
    let parallel = run_bin("graphprof", &["analyze", &exe, &gmon, "--jobs", "8"]);
    assert_eq!(serial.status.code(), Some(1), "{}", stdout(&serial));
    assert_eq!(serial.stdout, parallel.stdout, "analyze output depends on --jobs");
}

#[test]
fn analyze_gates_with_configurable_rules() {
    let dir = TempDir::new("analyzegate");
    let (exe, gmon) = straight_profile(&dir);

    // Clean profile: exit 0, empty finding list.
    let json = dir.path("report.json");
    let out = run_bin("graphprof", &["analyze", &exe, &gmon, "--json", &json]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 denied, 0 warned, 0 allowed"), "{}", stdout(&out));
    let report = fs::read_to_string(&json).expect("json written");
    assert!(report.contains("\"schema\": \"graphprof-analyze-report/1\""), "{report}");
    assert!(report.contains("\"exit\": 0"), "{report}");

    // Corrupt it: exit 1 with deny lines.
    let (exe, gmon) = messy_profile(&dir);
    let out = run_bin("graphprof", &["analyze", &exe, &gmon, "--json", &json]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("deny: ["), "{}", stdout(&out));
    assert!(fs::read_to_string(&json).unwrap().contains("\"exit\": 1"));

    // --allow all suppresses the gate entirely.
    let out = run_bin("graphprof", &["analyze", &exe, &gmon, "--allow", "all"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("allow: ["), "{}", stdout(&out));

    // Unknown rule codes are usage errors.
    let out = run_bin("graphprof", &["analyze", &exe, &gmon, "--deny", "bogus-rule"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("bogus-rule"), "{}", stderr(&out));
}

#[test]
fn corrupted_executables_fail_verification_loudly() {
    let dir = TempDir::new("badexe");
    let (exe, gmon) = straight_profile(&dir);
    // Retarget a call into the middle of routine `b` by patching its
    // 4-byte little-endian operand inside the object file's text.
    let listing = stdout(&run_bin("gpx-dis", &[&exe]));
    // Symbol lines look like `b: 0x1023 +7 [profiled]`.
    let b_line = listing.lines().find(|l| l.starts_with("b: ")).expect("b listed");
    let addr_token = b_line.split_whitespace().nth(1).expect("address token");
    let b_addr =
        u32::from_str_radix(addr_token.trim_start_matches("0x"), 16).expect("address parses");
    let mut bytes = fs::read(&exe).expect("read exe");
    let needle = b_addr.to_le_bytes();
    let pos = bytes.windows(4).position(|w| w == needle).expect("call target present");
    bytes[pos..pos + 4].copy_from_slice(&(b_addr + 2).to_le_bytes());
    fs::write(&exe, &bytes).expect("write exe");

    // gpx-run refuses the executable with a readable multi-line report.
    let out = run_bin("gpx-run", &[&exe, "--profile", &gmon]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("failed verification"), "{err}");
    assert!(err.contains("not a routine entry"), "{err}");

    // graphprof check reports the same problem as a finding instead.
    let out = run_bin("graphprof", &["check", &exe, &gmon]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[bad-executable]"), "{}", stdout(&out));
}

#[test]
fn assembly_errors_carry_positions() {
    let dir = TempDir::new("asmerr");
    let src = dir.path("bad.s");
    fs::write(&src, "routine main {\n  wurk 10\n}").expect("write");
    let out = run_bin("gpx-as", &[&src]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("2:"), "line number in: {err}");
    assert!(err.contains("wurk"), "{err}");
}

// ---- the collection server binaries ---------------------------------

/// Kills the spawned `graphprof serve` child when the test ends,
/// success or panic.
struct ServeGuard(std::process::Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `graphprof serve` on an ephemeral loopback port and reads the
/// bound address back from the banner line.
fn spawn_serve(exe: &str, extra: &[&str]) -> (ServeGuard, String) {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_graphprof"))
        .args(["serve", exe, "--bind", "127.0.0.1:0"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let out = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    std::io::BufReader::new(out).read_line(&mut banner).expect("banner line");
    // `serving <prog> on 127.0.0.1:PORT (N hosted VM(s))`
    let addr = banner
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    (ServeGuard(child), addr)
}

#[test]
fn serve_send_and_remote_through_the_binaries() {
    let dir = TempDir::new("serve");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());

    let mut gmons = Vec::new();
    for i in 0..2 {
        let gmon = dir.path(&format!("gmon.{i}"));
        assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
        gmons.push(gmon);
    }

    let (_serve, addr) = spawn_serve(&exe, &[]);

    // Upload both runs into one series over one connection.
    let out = run_bin("gpx-send", &[&gmons[0], &gmons[1], "--series", "web", "--addr", &addr]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("web[0]"), "{text}");
    assert!(text.contains("web[1]"), "{text}");
    assert!(text.contains("2 profiles aggregated"), "{text}");

    // The remote flat listing matches the offline post-processor.
    let out = run_bin("graphprof", &["remote", &addr, "flat", "web"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let offline = run_bin("graphprof", &[&exe, &gmons[0], &gmons[1], "--flat-only"]);
    // The offline report ends sections with a blank separator line; the
    // listings themselves must match exactly.
    assert_eq!(stdout(&out).trim_end(), stdout(&offline).trim_end());

    // The live aggregate downloads byte-identical to an offline sum.
    let live_sum = dir.path("live.sum");
    let out = run_bin("graphprof", &["remote", &addr, "sum", "web", "--out", &live_sum]);
    assert!(out.status.success(), "{}", stderr(&out));
    let offline_sum = dir.path("offline.sum");
    let out =
        run_bin("graphprof", &[&exe, &gmons[0], &gmons[1], "--flat-only", "--sum", &offline_sum]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(fs::read(&live_sum).expect("live"), fs::read(&offline_sum).expect("offline"));

    // Stats report the series by name.
    let out = run_bin("graphprof", &["remote", &addr, "stats"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("web"), "{text}");
    assert!(text.contains("2 uploads"), "{text}");
}

#[test]
fn send_rejects_a_glob_matching_nothing_as_usage() {
    let dir = TempDir::new("sendglob");
    // No server needed: the expansion is checked before any dial.
    let out = run_bin("gpx-send", &[&dir.path("gmon.nope*"), "--series", "web"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("matches no files"), "{err}");
    assert!(err.contains("gpx-send"), "usage text in: {err}");

    // An empty directory is the same usage error, not a silent success.
    let out = run_bin("gpx-send", &[&dir.path(""), "--series", "web"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("no gmon.out files"), "{}", stderr(&out));
}

#[test]
fn send_delta_matches_full_uploads_through_the_binaries() {
    let dir = TempDir::new("senddelta");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());

    let mut gmons = Vec::new();
    for i in 0..3 {
        let gmon = dir.path(&format!("gmon.{i}"));
        assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
        gmons.push(gmon);
    }

    let (_serve, addr) = spawn_serve(&exe, &[]);

    // The first window has no shadow and goes full; later ones delta.
    let out = run_bin(
        "gpx-send",
        &[&gmons[0], &gmons[1], &gmons[2], "--series", "web", "--addr", &addr, "--delta"],
    );
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("web[0]") && text.contains(", full)"), "{text}");
    assert!(text.contains("web[2]") && text.contains(", delta)"), "{text}");

    // Delta transport must not change a byte of the aggregate.
    let live_sum = dir.path("live.sum");
    let out = run_bin("graphprof", &["remote", &addr, "sum", "web", "--out", &live_sum]);
    assert!(out.status.success(), "{}", stderr(&out));
    let offline_sum = dir.path("offline.sum");
    let out = run_bin(
        "graphprof",
        &[&exe, &gmons[0], &gmons[1], &gmons[2], "--flat-only", "--sum", &offline_sum],
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(fs::read(&live_sum).expect("live"), fs::read(&offline_sum).expect("offline"));
}

#[test]
fn remote_kgmon_verbs_control_a_hosted_vm() {
    use std::time::{Duration, Instant};

    let dir = TempDir::new("servevm");
    let src = dir.path("kern.s");
    let exe = dir.path("kern.gpx");
    // Effectively endless, so the hosted VM keeps producing samples.
    fs::write(
        &src,
        "routine main { loop 100000000 { call disk call net } }
         routine disk { work 80 }
         routine net { work 30 }",
    )
    .expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());

    let (_serve, addr) = spawn_serve(&exe, &["--vm", "kernel", "--tick", "10"]);

    // Profiling is on by default; toggle it off and back on remotely.
    let out = run_bin("graphprof", &["remote", &addr, "status", "--vm", "kernel"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("on"), "{}", stdout(&out));
    assert!(run_bin("graphprof", &["remote", &addr, "off"]).status.success());
    let out = run_bin("graphprof", &["remote", &addr, "status"]);
    assert!(stdout(&out).contains("off"), "{}", stdout(&out));
    assert!(run_bin("graphprof", &["remote", &addr, "on"]).status.success());

    // Extracted windows grow as the VM runs; poll until the snapshot
    // analyzes and shows the hot routine.
    let gmon = dir.path("kernel.gmon");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let out = run_bin("graphprof", &["remote", &addr, "extract", "--out", &gmon]);
        assert!(out.status.success(), "{}", stderr(&out));
        let report = run_bin("graphprof", &[&exe, &gmon, "--flat-only", "--brief"]);
        if report.status.success() && stdout(&report).contains("disk") {
            break;
        }
        assert!(Instant::now() < deadline, "no samples before deadline");
        std::thread::sleep(Duration::from_millis(50));
    }

    // moncontrol narrows the monitored window without stopping the VM.
    let out = run_bin("graphprof", &["remote", &addr, "moncontrol", "--routine", "disk"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(run_bin("graphprof", &["remote", &addr, "reset"]).status.success());

    // Extract straight into a server-side series and query it remotely.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let out = run_bin("graphprof", &["remote", &addr, "extract", "--into", "snaps"]);
        assert!(out.status.success(), "{}", stderr(&out));
        let flat = run_bin("graphprof", &["remote", &addr, "flat", "snaps"]);
        if flat.status.success() && stdout(&flat).contains("disk") {
            break;
        }
        assert!(Instant::now() < deadline, "no stored snapshot before deadline");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn remote_failures_exit_1_with_rendered_errors() {
    let dir = TempDir::new("servefail");
    let src = dir.path("prog.s");
    let exe = dir.path("prog.gpx");
    fs::write(&src, SOURCE).expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());
    let gmon = dir.path("gmon.out");
    assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());

    // Connection refused: bind-then-drop a listener to get a dead port.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let out = run_bin("gpx-send", &[&gmon, "--series", "web", "--addr", &dead]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.starts_with("gpx-send: "), "{err}");
    assert!(err.contains("cannot connect"), "{err}");

    let out = run_bin("graphprof", &["remote", &dead, "stats"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("remote error"), "{err}");
    assert!(err.contains("cannot connect"), "{err}");

    // Deadline exceeded: a listener that accepts the dial (via the
    // backlog) but never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let silent = listener.local_addr().expect("addr").to_string();
    let out = run_bin("graphprof", &["remote", &silent, "stats", "--timeout-ms", "300"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("deadline exceeded"), "{}", stderr(&out));
    drop(listener);

    // Server-side rejects render the server's reason and exit 1, both
    // for a bad upload and for a query of a series that does not exist.
    let (_serve, addr) = spawn_serve(&exe, &[]);
    let junk = dir.path("junk.gmon");
    fs::write(&junk, b"not profile data").expect("write junk");
    let out = run_bin("gpx-send", &[&junk, "--series", "web", "--addr", &addr]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("server rejected the request"), "{err}");

    let out = run_bin("graphprof", &["remote", &addr, "flat", "ghost"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("no such series"), "{err}");

    // Usage errors exit 2: an unknown verb, and moncontrol without a
    // range selector.
    let out = run_bin("graphprof", &["remote", &addr, "frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("unknown remote verb"), "{}", stderr(&out));
    let out = run_bin("graphprof", &["remote", &addr, "moncontrol"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

/// The regression gate through both verbs: a seed-replay pair (two
/// identical deterministic runs) exits 0, a perturbed after-side exits
/// 1, the JSON report is the versioned document, and nonexistent
/// series are remote rejects that exit 1.
#[test]
fn regress_gate_through_the_binaries() {
    let dir = TempDir::new("regress");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    assert!(run_bin("gpx-as", &[&src, "--out", &exe]).status.success());

    // Deterministic machine, identical seeds: replayed runs are
    // byte-identical profiles.
    let mut gmons = Vec::new();
    for i in 0..2 {
        let gmon = dir.path(&format!("gmon.{i}"));
        assert!(run_bin("gpx-run", &[&exe, "--profile", &gmon, "--tick", "10"]).status.success());
        gmons.push(gmon);
    }
    assert_eq!(fs::read(&gmons[0]).unwrap(), fs::read(&gmons[1]).unwrap(), "replay determinism");

    // Offline verb, identical pair: clean, exit 0.
    let out = run_bin("graphprof", &["regress", &exe, &gmons[0], &gmons[1]]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("CLEAN"), "{}", stdout(&out));

    // Perturbed after-side (the same run folded twice: every routine
    // doubles): regressed, exit 1, and the JSON document says so too.
    for name in ["slow.1", "slow.2"] {
        fs::copy(&gmons[0], dir.path(name)).expect("copy");
    }
    let json = dir.path("report.json");
    let slow_glob = dir.path("slow.*");
    let out = run_bin("graphprof", &["regress", &exe, &gmons[0], &slow_glob, "--json", &json]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stdout(&out).contains("REGRESSED"), "{}", stdout(&out));
    let doc = fs::read_to_string(&json).expect("json written");
    assert!(doc.contains("graphprof-regress-report/1"), "{doc}");
    assert!(doc.contains("\"exit\": 1"), "{doc}");

    // Missing arguments are usage errors (exit 2).
    let out = run_bin("graphprof", &["regress", &exe, &gmons[0]]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    // The remote verb against a retaining server: same verdicts.
    let (_serve, addr) = spawn_serve(&exe, &["--retain", "2"]);
    for series in ["base", "same"] {
        let out = run_bin("gpx-send", &[&gmons[0], "--series", series, "--addr", &addr]);
        assert!(out.status.success(), "{}", stderr(&out));
    }
    let out = run_bin(
        "gpx-send",
        &[&dir.path("slow.1"), &dir.path("slow.2"), "--series", "slow", "--addr", &addr],
    );
    assert!(out.status.success(), "{}", stderr(&out));

    let out = run_bin("graphprof", &["remote", &addr, "regress", "base", "same"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("CLEAN"), "{}", stdout(&out));
    let out = run_bin("graphprof", &["remote", &addr, "regress", "base", "slow", "--json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stdout(&out).contains("graphprof-regress-report/1"), "{}", stdout(&out));

    // Retained windows serve the scoped comparisons.
    let out = run_bin("graphprof", &["remote", &addr, "regress", "base", "same", "--window", "1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out =
        run_bin("graphprof", &["remote", &addr, "regress", "slow", "slow", "--baseline", "1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // The diff verb renders the same pair as the versioned JSON diff.
    let out = run_bin("graphprof", &["remote", &addr, "diff", "base", "slow", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("graphprof-diff/1"), "{}", stdout(&out));

    // Nonexistent series are server rejects: exit 1, reason rendered.
    for verb in ["diff", "regress"] {
        let out = run_bin("graphprof", &["remote", &addr, verb, "ghost", "base"]);
        assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
        assert!(stderr(&out).contains("no such series"), "{}", stderr(&out));
    }

    // Conflicting scopes are usage errors.
    let out = run_bin(
        "graphprof",
        &["remote", &addr, "regress", "base", "same", "--window", "1", "--baseline", "2"],
    );
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn prof_style_instrumentation_and_selection() {
    let dir = TempDir::new("profsel");
    let src = dir.path("pipeline.s");
    let exe = dir.path("pipeline.gpx");
    fs::write(&src, SOURCE).expect("write source");
    // Instrument only phase1 and helper.
    let out = run_bin("gpx-as", &[&src, "--out", &exe, "--only", "phase1,helper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let listing = stdout(&run_bin("gpx-dis", &[&exe]));
    let mcounts = listing.matches("mcount").count();
    assert_eq!(mcounts, 2, "{listing}");
}
