//! Cycle-breaking arc removal (retrospective).
//!
//! "Because of the interactions of the kernel's major subsystems, there
//! were several large cycles in the profiles. [...] When we looked at the
//! profiles there were just a few arcs — with low traversal counts — that
//! closed the cycles. We added an option to specify a set of arcs to be
//! removed from the analysis. [...] To aid users unable or unwilling to
//! find an arc set for themselves, we added a heuristic to help choose
//! arcs to remove. The underlying problem is NP-complete, so we added a
//! bound on the number of arcs the tool would attempt to remove."
//!
//! The underlying problem is minimum feedback arc set. Two searches are
//! provided:
//!
//! * [`break_cycles_greedy`] — the production heuristic: repeatedly remove
//!   the lowest-count arc participating in a cycle, up to a bound;
//! * [`break_cycles_exact`] — a bounded exhaustive search over candidate
//!   arc subsets, usable on the small cycle cores where exactness is
//!   affordable, for scoring the heuristic.
//!
//! Self-arcs never count: a self-recursive routine is already excluded
//! from propagation, so removing its self-arc breaks nothing.

use crate::graph::{CallGraph, NodeId};
use crate::tarjan::SccResult;

/// The result of a bounded cycle-breaking search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovalOutcome {
    /// The ordered pairs removed, in removal order.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Whether the resulting graph is free of multi-node cycles. `false`
    /// means the bound was hit first.
    pub complete: bool,
    /// Total traversal count of the removed arcs — the "information lost"
    /// by omitting them from propagation.
    pub count_removed: u64,
}

fn has_multi_node_cycle(scc: &SccResult) -> bool {
    scc.comps().any(|c| scc.is_cycle(c))
}

/// Returns `true` when the graph contains no cycle of two or more nodes.
pub fn is_propagation_acyclic(graph: &CallGraph) -> bool {
    !has_multi_node_cycle(&SccResult::analyze(graph))
}

/// The retrospective's heuristic: while a multi-node cycle remains and the
/// bound allows, remove the cycle-internal arc with the lowest traversal
/// count (ties broken toward the lexically smaller node pair, for
/// determinism).
///
/// ```
/// use graphprof_callgraph::{break_cycles_greedy, CallGraph};
///
/// // A hot service arc and a rare wakeup arc closing the cycle.
/// let mut graph = CallGraph::with_nodes(["sched", "worker"]);
/// let ids: Vec<_> = graph.nodes().collect();
/// graph.add_arc(ids[0], ids[1], 1_000);
/// graph.add_arc(ids[1], ids[0], 2);
/// let outcome = break_cycles_greedy(&graph, 8);
/// assert!(outcome.complete);
/// assert_eq!(outcome.removed, vec![(ids[1], ids[0])]);
/// assert_eq!(outcome.count_removed, 2, "only the rare arc is lost");
/// ```
pub fn break_cycles_greedy(graph: &CallGraph, max_arcs: usize) -> RemovalOutcome {
    let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
    let mut count_removed = 0u64;
    let mut current = graph.clone();
    loop {
        let scc = SccResult::analyze(&current);
        if !has_multi_node_cycle(&scc) {
            return RemovalOutcome { removed, complete: true, count_removed };
        }
        if removed.len() >= max_arcs {
            return RemovalOutcome { removed, complete: false, count_removed };
        }
        // Candidate arcs: non-self arcs internal to some cycle component.
        let victim = current
            .arcs()
            .filter(|(_, a)| {
                !a.is_self() && scc.comp(a.from) == scc.comp(a.to) && scc.is_cycle(scc.comp(a.from))
            })
            .min_by_key(|(_, a)| (a.count, a.from, a.to))
            .map(|(_, a)| a);
        match victim {
            Some(arc) => {
                removed.push((arc.from, arc.to));
                count_removed += arc.count;
                current = current.without_arcs(&[(arc.from, arc.to)]);
            }
            None => {
                // Unreachable in practice: a cycle component always has an
                // internal non-self arc. Guard against an infinite loop.
                return RemovalOutcome { removed, complete: false, count_removed };
            }
        }
    }
}

/// Maximum number of candidate arcs the exact search will consider; beyond
/// this the subset enumeration is hopeless and the caller should fall back
/// to [`break_cycles_greedy`].
pub const EXACT_CANDIDATE_LIMIT: usize = 20;

/// Bounded exhaustive minimum-weight feedback arc set.
///
/// Searches every subset of up to `max_arcs` cycle-internal arcs and
/// returns the one of minimum total traversal count (ties broken toward
/// fewer arcs) whose removal leaves the graph free of multi-node cycles.
/// Minimizing the *count* removed minimizes the information the profile
/// loses — the retrospective's observation was that "the information lost
/// by omitting these arcs was far less than the information gained".
///
/// Returns `None` when no subset within `max_arcs` works, or when the
/// candidate set exceeds [`EXACT_CANDIDATE_LIMIT`].
pub fn break_cycles_exact(graph: &CallGraph, max_arcs: usize) -> Option<RemovalOutcome> {
    let scc = SccResult::analyze(graph);
    if !has_multi_node_cycle(&scc) {
        return Some(RemovalOutcome { removed: Vec::new(), complete: true, count_removed: 0 });
    }
    let candidates: Vec<(NodeId, NodeId, u64)> = graph
        .arcs()
        .filter(|(_, a)| {
            !a.is_self() && scc.comp(a.from) == scc.comp(a.to) && scc.is_cycle(scc.comp(a.from))
        })
        .map(|(_, a)| (a.from, a.to, a.count))
        .collect();
    if candidates.len() > EXACT_CANDIDATE_LIMIT {
        return None;
    }
    let mut best: Option<RemovalOutcome> = None;
    for k in 1..=max_arcs.min(candidates.len()) {
        let mut indices: Vec<usize> = (0..k).collect();
        loop {
            let pairs: Vec<(NodeId, NodeId)> =
                indices.iter().map(|&i| (candidates[i].0, candidates[i].1)).collect();
            let count: u64 = indices.iter().map(|&i| candidates[i].2).sum();
            let improves = best
                .as_ref()
                .map(|b| (count, k) < (b.count_removed, b.removed.len()))
                .unwrap_or(true);
            if improves && is_propagation_acyclic(&graph.without_arcs(&pairs)) {
                best =
                    Some(RemovalOutcome { removed: pairs, complete: true, count_removed: count });
            }
            if !next_combination(&mut indices, candidates.len()) {
                break;
            }
        }
    }
    best
}

/// Advances `indices` to the next k-combination of `0..n`; returns `false`
/// when exhausted.
fn next_combination(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] != i + n - k {
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two subsystems joined into one cycle by two low-count arcs — the
    /// kernel shape from the retrospective.
    fn kernel_like() -> (CallGraph, Vec<NodeId>) {
        let mut g = CallGraph::with_nodes(["net_in", "net_out", "disk_rw", "buf"]);
        let n: Vec<NodeId> = g.nodes().collect();
        g.add_arc(n[0], n[1], 500); // net_in -> net_out
        g.add_arc(n[1], n[2], 400); // net_out -> disk_rw
        g.add_arc(n[2], n[3], 300); // disk_rw -> buf
        g.add_arc(n[3], n[0], 2); // buf -> net_in   (low-count closer)
        g.add_arc(n[1], n[0], 3); // net_out -> net_in (low-count closer)
        (g, n)
    }

    #[test]
    fn acyclic_graph_needs_no_removal() {
        let mut g = CallGraph::with_nodes(["a", "b"]);
        g.add_arc(NodeId::new(0), NodeId::new(1), 5);
        assert!(is_propagation_acyclic(&g));
        let out = break_cycles_greedy(&g, 10);
        assert!(out.complete);
        assert!(out.removed.is_empty());
        let exact = break_cycles_exact(&g, 10).unwrap();
        assert!(exact.removed.is_empty());
    }

    #[test]
    fn greedy_removes_the_low_count_closers() {
        let (g, n) = kernel_like();
        let out = break_cycles_greedy(&g, 10);
        assert!(out.complete);
        let mut removed = out.removed.clone();
        removed.sort_unstable();
        let mut expected = vec![(n[3], n[0]), (n[1], n[0])];
        expected.sort_unstable();
        assert_eq!(removed, expected);
        assert_eq!(out.count_removed, 5);
        assert!(is_propagation_acyclic(&g.without_arcs(&out.removed)));
    }

    #[test]
    fn greedy_respects_the_bound() {
        let (g, _) = kernel_like();
        let out = break_cycles_greedy(&g, 1);
        assert!(!out.complete);
        assert_eq!(out.removed.len(), 1);
    }

    #[test]
    fn exact_matches_greedy_on_the_kernel_shape() {
        let (g, _) = kernel_like();
        let exact = break_cycles_exact(&g, 5).unwrap();
        assert!(exact.complete);
        assert_eq!(exact.removed.len(), 2);
        assert_eq!(exact.count_removed, 5);
    }

    #[test]
    fn exact_beats_greedy_via_a_shared_arc() {
        // Figure-eight sharing arc a->b: cycles a->b->a and a->b->c->a.
        // Greedy takes the locally cheapest arcs one at a time (b->a then
        // b->c, cost 6); removing the single shared arc a->b costs 5.
        let mut g = CallGraph::with_nodes(["a", "b", "c"]);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let c = NodeId::new(2);
        g.add_arc(a, b, 5); // shared by both cycles
        g.add_arc(b, a, 3);
        g.add_arc(b, c, 3);
        g.add_arc(c, a, 10);
        let exact = break_cycles_exact(&g, 3).unwrap();
        assert_eq!(exact.removed, vec![(a, b)], "one shared arc breaks both");
        assert_eq!(exact.count_removed, 5);
        let greedy = break_cycles_greedy(&g, 3);
        assert!(greedy.complete);
        assert_eq!(greedy.count_removed, 6, "greedy pays more");
        assert!(greedy.removed.len() > exact.removed.len());
    }

    #[test]
    fn exact_prefers_cheap_pair_over_expensive_single() {
        // Same shape, but the shared arc is expensive: the two cheap
        // closers win on total count even though they are two arcs.
        let mut g = CallGraph::with_nodes(["a", "b", "c"]);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let c = NodeId::new(2);
        g.add_arc(a, b, 500);
        g.add_arc(b, a, 1);
        g.add_arc(b, c, 2);
        g.add_arc(c, a, 9);
        let exact = break_cycles_exact(&g, 3).unwrap();
        let mut removed = exact.removed.clone();
        removed.sort_unstable();
        assert_eq!(removed, vec![(b, a), (b, c)]);
        assert_eq!(exact.count_removed, 3);
    }

    #[test]
    fn exact_minimizes_count_among_equal_cardinality() {
        // One two-node cycle: either direction breaks it; the cheaper arc
        // must be chosen.
        let mut g = CallGraph::with_nodes(["x", "y"]);
        let x = NodeId::new(0);
        let y = NodeId::new(1);
        g.add_arc(x, y, 100);
        g.add_arc(y, x, 7);
        let exact = break_cycles_exact(&g, 2).unwrap();
        assert_eq!(exact.removed, vec![(y, x)]);
        assert_eq!(exact.count_removed, 7);
    }

    #[test]
    fn exact_gives_up_beyond_bound() {
        // Two disjoint 2-cycles need two removals; bound of one fails.
        let mut g = CallGraph::with_nodes(["a", "b", "c", "d"]);
        let n: Vec<NodeId> = g.nodes().collect();
        g.add_arc(n[0], n[1], 1);
        g.add_arc(n[1], n[0], 1);
        g.add_arc(n[2], n[3], 1);
        g.add_arc(n[3], n[2], 1);
        assert!(break_cycles_exact(&g, 1).is_none());
        assert!(break_cycles_exact(&g, 2).is_some());
    }

    #[test]
    fn exact_refuses_huge_candidate_sets() {
        // A large complete-ish cycle exceeds the candidate limit.
        let n = 6;
        let mut g = CallGraph::with_nodes((0..n).map(|i| format!("f{i}")));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.add_arc(NodeId::new(i), NodeId::new(j), 1);
                }
            }
        }
        assert!(g.arc_count() > EXACT_CANDIDATE_LIMIT);
        assert!(break_cycles_exact(&g, 3).is_none());
        // Greedy still makes progress on the same graph.
        let out = break_cycles_greedy(&g, 100);
        assert!(out.complete);
    }

    #[test]
    fn self_arcs_are_never_removed() {
        let mut g = CallGraph::with_nodes(["main", "rec"]);
        let main = NodeId::new(0);
        let rec = NodeId::new(1);
        g.add_arc(main, rec, 1);
        g.add_arc(rec, rec, 1000);
        assert!(is_propagation_acyclic(&g));
        let out = break_cycles_greedy(&g, 10);
        assert!(out.removed.is_empty());
    }

    #[test]
    fn next_combination_enumerates_all() {
        let mut indices = vec![0, 1];
        let mut seen = vec![indices.clone()];
        while next_combination(&mut indices, 4) {
            seen.push(indices.clone());
        }
        assert_eq!(
            seen,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3],]
        );
    }
}
