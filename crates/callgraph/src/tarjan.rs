//! Strongly-connected components with simultaneous topological numbering.
//!
//! "We use a variation of Tarjan's strongly-connected components algorithm
//! that discovers strongly-connected components as it is assigning
//! topological order numbers" (§4, citing [Tarjan72]). Tarjan's algorithm
//! pops each component after all components reachable from it — so the pop
//! sequence *is* a topological numbering of the condensed graph: give the
//! k-th popped component the number k+1 and every arc of the condensation
//! runs from a higher-numbered component to a lower-numbered one, exactly
//! the property Figure 1 of the paper illustrates.
//!
//! The implementation is iterative (explicit work stack) so that
//! pathologically deep graphs cannot overflow the host stack.

use std::fmt;

use crate::graph::{CallGraph, NodeId};

/// Index of a strongly-connected component.
///
/// Components are numbered in pop order: `CompId(0)` is popped first, and
/// all arcs of the condensed graph point from higher ids to lower ids
/// (callees have lower ids than their callers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(u32);

impl CompId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a component id from a raw pop-order index. Only meaningful
    /// together with the [`SccResult`] that defined the numbering.
    pub const fn from_raw(raw: u32) -> Self {
        CompId(raw)
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The result of SCC analysis over a [`CallGraph`].
///
/// ```
/// use graphprof_callgraph::{CallGraph, SccResult};
///
/// // a -> b <-> c: b and c are mutually recursive.
/// let mut graph = CallGraph::with_nodes(["a", "b", "c"]);
/// let ids: Vec<_> = graph.nodes().collect();
/// graph.add_arc(ids[0], ids[1], 1);
/// graph.add_arc(ids[1], ids[2], 5);
/// graph.add_arc(ids[2], ids[1], 4);
/// let scc = SccResult::analyze(&graph);
/// assert_eq!(scc.comp(ids[1]), scc.comp(ids[2]));
/// assert_eq!(scc.cycles().len(), 1);
/// // The caller gets a higher topological number than the cycle.
/// assert!(scc.topo_number(ids[0]) > scc.topo_number(ids[1]));
/// ```
#[derive(Debug, Clone)]
pub struct SccResult {
    comp_of: Vec<CompId>,
    comps: Vec<Vec<NodeId>>,
    has_self_arc: Vec<bool>,
}

impl SccResult {
    /// Runs the analysis.
    pub fn analyze(graph: &CallGraph) -> SccResult {
        Tarjan::run(graph)
    }

    /// The component containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn comp(&self, node: NodeId) -> CompId {
        self.comp_of[node.index()]
    }

    /// Members of a component, in discovery order.
    ///
    /// # Panics
    ///
    /// Panics if the component id is out of range.
    pub fn members(&self, comp: CompId) -> &[NodeId] {
        &self.comps[comp.index()]
    }

    /// Number of components.
    pub fn comp_count(&self) -> usize {
        self.comps.len()
    }

    /// Iterates component ids in pop order — callees before callers. This
    /// is the order in which time propagation must visit components so
    /// that "execution time can be propagated from descendants to
    /// ancestors after a single traversal of each arc" (§4).
    pub fn comps(&self) -> impl Iterator<Item = CompId> {
        (0..self.comps.len() as u32).map(CompId)
    }

    /// Whether a component is a cycle in the paper's sense: two or more
    /// mutually recursive routines. A single self-recursive routine is
    /// *not* a cycle — its self-arcs are reported but excluded from
    /// propagation (§5.2).
    pub fn is_cycle(&self, comp: CompId) -> bool {
        self.comps[comp.index()].len() > 1
    }

    /// Whether a singleton component carries a self-arc (a self-recursive
    /// routine).
    pub fn has_self_arc(&self, comp: CompId) -> bool {
        self.has_self_arc[comp.index()]
    }

    /// The paper's topological number for a node: its component's pop
    /// index plus one. Every arc that is not internal to a cycle runs from
    /// a higher number to a lower number.
    pub fn topo_number(&self, node: NodeId) -> u32 {
        self.comp_of[node.index()].0 + 1
    }

    /// Component ids of cycles only (size ≥ 2), in pop order.
    pub fn cycles(&self) -> Vec<CompId> {
        self.comps().filter(|&c| self.is_cycle(c)).collect()
    }
}

struct Tarjan<'g> {
    graph: &'g CallGraph,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<NodeId>,
    next_index: u32,
    comp_of: Vec<CompId>,
    comps: Vec<Vec<NodeId>>,
}

const UNVISITED: u32 = u32::MAX;

impl<'g> Tarjan<'g> {
    fn run(graph: &'g CallGraph) -> SccResult {
        let n = graph.node_count();
        let mut t = Tarjan {
            graph,
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            comp_of: vec![CompId(0); n],
            comps: Vec::new(),
        };
        for v in graph.nodes() {
            if t.index[v.index()] == UNVISITED {
                t.visit(v);
            }
        }
        let has_self_arc = t
            .comps
            .iter()
            .map(|members| {
                members.len() == 1 && graph.arc_between(members[0], members[0]).is_some()
            })
            .collect();
        SccResult { comp_of: t.comp_of, comps: t.comps, has_self_arc }
    }

    /// Iterative depth-first search from `root`.
    fn visit(&mut self, root: NodeId) {
        // Each frame: (node, index of the next out-arc to examine).
        let mut frames: Vec<(NodeId, usize)> = Vec::new();
        self.open(root);
        frames.push((root, 0));
        while !frames.is_empty() {
            let (v, pending_arc) = {
                let frame = frames.last_mut().expect("loop guard");
                let v = frame.0;
                let out = self.graph.out_arcs(v);
                if frame.1 < out.len() {
                    let arc_id = out[frame.1];
                    frame.1 += 1;
                    (v, Some(arc_id))
                } else {
                    (v, None)
                }
            };
            if let Some(arc_id) = pending_arc {
                let w = self.graph.arc(arc_id).to;
                if self.index[w.index()] == UNVISITED {
                    self.open(w);
                    frames.push((w, 0));
                } else if self.on_stack[w.index()] {
                    self.lowlink[v.index()] = self.lowlink[v.index()].min(self.index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    self.lowlink[parent.index()] =
                        self.lowlink[parent.index()].min(self.lowlink[v.index()]);
                }
                if self.lowlink[v.index()] == self.index[v.index()] {
                    // v is the root of a component: pop it.
                    let comp = CompId(self.comps.len() as u32);
                    let mut members = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("component member on stack");
                        self.on_stack[w.index()] = false;
                        self.comp_of[w.index()] = comp;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.reverse();
                    self.comps.push(members);
                }
            }
        }
    }

    fn open(&mut self, v: NodeId) {
        self.index[v.index()] = self.next_index;
        self.lowlink[v.index()] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v.index()] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;

    /// Builds the example graph of Figure 1 in the paper: a 10-node DAG.
    /// We approximate the figure's shape: one root fanning out through two
    /// internal layers to leaves.
    fn figure1_like() -> CallGraph {
        let mut g = CallGraph::with_nodes((0..10).map(|i| format!("r{i}")));
        let n: Vec<NodeId> = g.nodes().collect();
        // root: n0; internal: n1..n4; leaves: n5..n9
        for &(a, b) in
            &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (3, 6), (4, 7), (4, 8), (2, 9)]
        {
            g.add_arc(n[a], n[b], 1);
        }
        g
    }

    #[test]
    fn dag_components_are_singletons() {
        let g = figure1_like();
        let scc = SccResult::analyze(&g);
        assert_eq!(scc.comp_count(), 10);
        assert!(scc.cycles().is_empty());
    }

    #[test]
    fn topological_numbers_decrease_along_arcs() {
        let g = figure1_like();
        let scc = SccResult::analyze(&g);
        for (_, arc) in g.arcs() {
            assert!(
                scc.topo_number(arc.from) > scc.topo_number(arc.to),
                "arc {} -> {} violates the numbering",
                g.name(arc.from),
                g.name(arc.to)
            );
        }
    }

    #[test]
    fn mutual_recursion_collapses_to_one_component() {
        // Figure 2: nodes "3" and "7" of the example become mutually
        // recursive.
        let mut g = figure1_like();
        let a = g.node_by_name("r3").unwrap();
        let b = g.node_by_name("r7").unwrap();
        g.add_arc(a, b, 1);
        g.add_arc(b, a, 1);
        let scc = SccResult::analyze(&g);
        assert_eq!(scc.comp(a), scc.comp(b));
        assert!(scc.is_cycle(scc.comp(a)));
        assert_eq!(scc.comp_count(), 9, "ten nodes, one two-member cycle");
        // Arcs between distinct components still respect the numbering.
        for (_, arc) in g.arcs() {
            if scc.comp(arc.from) != scc.comp(arc.to) {
                assert!(scc.topo_number(arc.from) > scc.topo_number(arc.to));
            }
        }
    }

    #[test]
    fn self_recursion_is_not_a_cycle() {
        let mut g = CallGraph::with_nodes(["main", "rec"]);
        let main = NodeId::new(0);
        let rec = NodeId::new(1);
        g.add_arc(main, rec, 1);
        g.add_arc(rec, rec, 5);
        let scc = SccResult::analyze(&g);
        let comp = scc.comp(rec);
        assert!(!scc.is_cycle(comp));
        assert!(scc.has_self_arc(comp));
        assert!(!scc.has_self_arc(scc.comp(main)));
    }

    #[test]
    fn three_member_cycle() {
        let mut g = CallGraph::with_nodes(["a", "b", "c", "d"]);
        let ids: Vec<NodeId> = g.nodes().collect();
        g.add_arc(ids[0], ids[1], 1); // a -> b
        g.add_arc(ids[1], ids[2], 1); // b -> c
        g.add_arc(ids[2], ids[3], 1); // c -> d
        g.add_arc(ids[3], ids[1], 1); // d -> b (closes b,c,d)
        let scc = SccResult::analyze(&g);
        assert_eq!(scc.comp_count(), 2);
        let cycle = scc.cycles()[0];
        let mut members: Vec<&str> = scc.members(cycle).iter().map(|&m| g.name(m)).collect();
        members.sort_unstable();
        assert_eq!(members, ["b", "c", "d"]);
    }

    #[test]
    fn pop_order_visits_callees_first() {
        let mut g = CallGraph::with_nodes(["top", "mid", "leaf"]);
        let ids: Vec<NodeId> = g.nodes().collect();
        g.add_arc(ids[0], ids[1], 1);
        g.add_arc(ids[1], ids[2], 1);
        let scc = SccResult::analyze(&g);
        let order: Vec<&str> = scc.comps().map(|c| g.name(scc.members(c)[0])).collect();
        assert_eq!(order, ["leaf", "mid", "top"]);
    }

    #[test]
    fn disconnected_graph_is_covered() {
        let mut g = CallGraph::with_nodes(["a", "b", "c"]);
        let ids: Vec<NodeId> = g.nodes().collect();
        g.add_arc(ids[1], ids[2], 1);
        let scc = SccResult::analyze(&g);
        assert_eq!(scc.comp_count(), 3);
        for v in g.nodes() {
            assert_eq!(scc.members(scc.comp(v)), &[v]);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CallGraph::new();
        let scc = SccResult::analyze(&g);
        assert_eq!(scc.comp_count(), 0);
    }

    #[test]
    fn deep_chain_does_not_overflow_host_stack() {
        let n = 200_000u32;
        let mut g = CallGraph::with_nodes((0..n).map(|i| format!("f{i}")));
        for i in 0..n - 1 {
            g.add_arc(NodeId::new(i), NodeId::new(i + 1), 1);
        }
        let scc = SccResult::analyze(&g);
        assert_eq!(scc.comp_count(), n as usize);
        assert_eq!(scc.topo_number(NodeId::new(0)), n);
        assert_eq!(scc.topo_number(NodeId::new(n - 1)), 1);
    }

    /// Naive SCC via reachability, to cross-check Tarjan on random graphs.
    fn naive_same_comp(g: &CallGraph, a: NodeId, b: NodeId) -> bool {
        fn reaches(g: &CallGraph, from: NodeId, to: NodeId) -> bool {
            let mut seen = vec![false; g.node_count()];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                if v == to {
                    return true;
                }
                if std::mem::replace(&mut seen[v.index()], true) {
                    continue;
                }
                for &arc in g.out_arcs(v) {
                    stack.push(g.arc(arc).to);
                }
            }
            false
        }
        a == b || (reaches(g, a, b) && reaches(g, b, a))
    }

    #[test]
    fn matches_naive_scc_on_random_graphs() {
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..30 {
            let n = 3 + (next() % 10) as usize;
            let mut g = CallGraph::with_nodes((0..n).map(|i| format!("f{i}")));
            let arcs = next() % (3 * n as u32);
            for _ in 0..arcs {
                let a = NodeId::new(next() % n as u32);
                let b = NodeId::new(next() % n as u32);
                g.add_arc(a, b, 1);
            }
            let scc = SccResult::analyze(&g);
            for a in g.nodes() {
                for b in g.nodes() {
                    assert_eq!(
                        scc.comp(a) == scc.comp(b),
                        naive_same_comp(&g, a, b),
                        "trial {trial}: {a} vs {b}"
                    );
                }
            }
            // Numbering property on the condensation.
            for (_, arc) in g.arcs() {
                if scc.comp(arc.from) != scc.comp(arc.to) {
                    assert!(scc.topo_number(arc.from) > scc.topo_number(arc.to));
                }
            }
        }
    }
}
