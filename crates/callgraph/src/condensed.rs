//! The condensed (component) graph: cycles collapsed to single nodes.
//!
//! "In these cases, we discover strongly-connected components in the call
//! graph, treat each such component as a single node, and then sort the
//! resulting graph" (§4). [`propagate`](crate::propagate) walks components
//! implicitly; this module materializes the condensation as a graph in its
//! own right, for consumers that want to inspect or traverse the collapsed
//! structure (visualization, reachability queries over abstractions,
//! experiment analysis).

use std::collections::HashMap;

use crate::graph::CallGraph;
use crate::tarjan::{CompId, SccResult};

/// An aggregated arc of the condensation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondensedArc {
    /// Source component.
    pub from: CompId,
    /// Target component.
    pub to: CompId,
    /// Sum of the traversal counts of the underlying call-graph arcs.
    pub count: u64,
    /// How many distinct call-graph arcs were merged into this one.
    pub merged: u32,
}

/// The condensation of a [`CallGraph`]: one node per strongly-connected
/// component, arcs aggregated across members, self-arcs (intra-component
/// calls) dropped.
///
/// By construction the condensation is acyclic, and iterating components
/// in their natural order ([`SccResult::comps`]) visits callees before
/// callers.
///
/// ```
/// use graphprof_callgraph::{CallGraph, CondensedGraph, SccResult};
///
/// // main -> x <-> y: the cycle condenses to one node.
/// let mut graph = CallGraph::with_nodes(["main", "x", "y"]);
/// let ids: Vec<_> = graph.nodes().collect();
/// graph.add_arc(ids[0], ids[1], 5);
/// graph.add_arc(ids[1], ids[2], 9);
/// graph.add_arc(ids[2], ids[1], 8);
/// let scc = SccResult::analyze(&graph);
/// let cond = CondensedGraph::new(&graph, &scc);
/// assert_eq!(cond.comp_count(), 2);
/// assert!(cond.is_topologically_consistent());
/// let cycle = scc.comp(ids[1]);
/// assert_eq!(cond.internal_count(cycle), 17);
/// assert_eq!(cond.external_calls_into(cycle), 5);
/// ```
#[derive(Debug, Clone)]
pub struct CondensedGraph {
    arcs: Vec<CondensedArc>,
    out: Vec<Vec<usize>>,
    into: Vec<Vec<usize>>,
    internal_counts: Vec<u64>,
    comp_count: usize,
}

impl CondensedGraph {
    /// Builds the condensation.
    pub fn new(graph: &CallGraph, scc: &SccResult) -> CondensedGraph {
        let n = scc.comp_count();
        let mut by_pair: HashMap<(CompId, CompId), usize> = HashMap::new();
        let mut arcs: Vec<CondensedArc> = Vec::new();
        let mut internal_counts = vec![0u64; n];
        for (_, arc) in graph.arcs() {
            let from = scc.comp(arc.from);
            let to = scc.comp(arc.to);
            if from == to {
                internal_counts[from.index()] += arc.count;
                continue;
            }
            match by_pair.get(&(from, to)) {
                Some(&i) => {
                    arcs[i].count += arc.count;
                    arcs[i].merged += 1;
                }
                None => {
                    by_pair.insert((from, to), arcs.len());
                    arcs.push(CondensedArc { from, to, count: arc.count, merged: 1 });
                }
            }
        }
        let mut out = vec![Vec::new(); n];
        let mut into = vec![Vec::new(); n];
        for (i, arc) in arcs.iter().enumerate() {
            out[arc.from.index()].push(i);
            into[arc.to.index()].push(i);
        }
        CondensedGraph { arcs, out, into, internal_counts, comp_count: n }
    }

    /// Number of component nodes.
    pub fn comp_count(&self) -> usize {
        self.comp_count
    }

    /// All aggregated arcs.
    pub fn arcs(&self) -> &[CondensedArc] {
        &self.arcs
    }

    /// Arcs leaving a component.
    pub fn out_arcs(&self, comp: CompId) -> impl Iterator<Item = &CondensedArc> {
        self.out[comp.index()].iter().map(|&i| &self.arcs[i])
    }

    /// Arcs entering a component.
    pub fn in_arcs(&self, comp: CompId) -> impl Iterator<Item = &CondensedArc> {
        self.into[comp.index()].iter().map(|&i| &self.arcs[i])
    }

    /// Traversals among a component's own members (including self-arcs);
    /// the calls that "do not participate in time propagation".
    pub fn internal_count(&self, comp: CompId) -> u64 {
        self.internal_counts[comp.index()]
    }

    /// Total external traversals into a component — the denominator of
    /// the propagation fraction.
    pub fn external_calls_into(&self, comp: CompId) -> u64 {
        self.in_arcs(comp).map(|a| a.count).sum()
    }

    /// Components with no inbound arcs (the roots of the program).
    pub fn roots(&self) -> Vec<CompId> {
        (0..self.comp_count as u32)
            .map(CompId::from_raw)
            .filter(|&c| self.into[c.index()].is_empty())
            .collect()
    }

    /// Components with no outbound arcs (the leaves).
    pub fn leaves(&self) -> Vec<CompId> {
        (0..self.comp_count as u32)
            .map(CompId::from_raw)
            .filter(|&c| self.out[c.index()].is_empty())
            .collect()
    }

    /// Verifies the defining property: every arc goes from a later-popped
    /// component to an earlier one (the topological ordering of §4).
    pub fn is_topologically_consistent(&self) -> bool {
        self.arcs.iter().all(|a| a.to < a.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn cyclic_fixture() -> (CallGraph, SccResult) {
        // main -> x <-> y -> leaf, plus main -> leaf directly.
        let mut g = CallGraph::with_nodes(["main", "x", "y", "leaf"]);
        let ids: Vec<NodeId> = g.nodes().collect();
        g.add_arc(ids[0], ids[1], 5);
        g.add_arc(ids[1], ids[2], 7);
        g.add_arc(ids[2], ids[1], 6);
        g.add_arc(ids[2], ids[3], 3);
        g.add_arc(ids[0], ids[3], 2);
        let scc = SccResult::analyze(&g);
        (g, scc)
    }

    #[test]
    fn condensation_is_acyclic_and_ordered() {
        let (g, scc) = cyclic_fixture();
        let cond = CondensedGraph::new(&g, &scc);
        assert_eq!(cond.comp_count(), 3);
        assert!(cond.is_topologically_consistent());
    }

    #[test]
    fn intra_cycle_counts_are_separated() {
        let (g, scc) = cyclic_fixture();
        let cond = CondensedGraph::new(&g, &scc);
        let x = g.node_by_name("x").unwrap();
        let cycle = scc.comp(x);
        assert_eq!(cond.internal_count(cycle), 13, "x->y 7 + y->x 6");
        assert_eq!(cond.external_calls_into(cycle), 5, "only main's calls");
    }

    #[test]
    fn parallel_arcs_merge() {
        // Two members of a cycle both call the same outside leaf.
        let mut g = CallGraph::with_nodes(["a", "b", "leaf"]);
        let ids: Vec<NodeId> = g.nodes().collect();
        g.add_arc(ids[0], ids[1], 1);
        g.add_arc(ids[1], ids[0], 1);
        g.add_arc(ids[0], ids[2], 4);
        g.add_arc(ids[1], ids[2], 6);
        let scc = SccResult::analyze(&g);
        let cond = CondensedGraph::new(&g, &scc);
        assert_eq!(cond.arcs().len(), 1);
        assert_eq!(cond.arcs()[0].count, 10);
        assert_eq!(cond.arcs()[0].merged, 2);
    }

    #[test]
    fn roots_and_leaves() {
        let (g, scc) = cyclic_fixture();
        let cond = CondensedGraph::new(&g, &scc);
        let main_comp = scc.comp(g.node_by_name("main").unwrap());
        let leaf_comp = scc.comp(g.node_by_name("leaf").unwrap());
        assert_eq!(cond.roots(), vec![main_comp]);
        assert_eq!(cond.leaves(), vec![leaf_comp]);
    }

    #[test]
    fn external_calls_agree_with_propagation() {
        let (g, scc) = cyclic_fixture();
        let cond = CondensedGraph::new(&g, &scc);
        let times: Vec<f64> = (0..g.node_count()).map(|i| i as f64).collect();
        let prop = crate::propagate(&g, &scc, &times);
        for comp in scc.comps() {
            assert_eq!(cond.external_calls_into(comp), prop.external_calls_into(comp), "{comp}");
        }
    }
}
