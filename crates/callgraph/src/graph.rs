//! The call graph: routines as nodes, calls as counted, directed arcs.
//!
//! "This accounting is done by assembling a *call graph* with nodes that
//! are the routines of the program and directed arcs that represent calls
//! from call sites to routines" (§2). The graph here is the *merged* view
//! the post-processor works on: arcs from distinct call sites in the same
//! caller are summed into one caller→callee arc, dynamic arcs carry their
//! traversal counts, and statically discovered arcs carry count zero so
//! they "are never responsible for any time propagation [but] may affect
//! the structure of the graph" (§4).

use std::collections::HashMap;
use std::fmt;

/// Index of a node (routine) in a [`CallGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an arc in a [`CallGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(u32);

impl ArcId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed, counted arc `from → to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// The caller.
    pub from: NodeId,
    /// The callee.
    pub to: NodeId,
    /// Traversal count; zero for arcs only discovered statically.
    pub count: u64,
}

impl Arc {
    /// Whether this is a self-arc (direct recursion).
    pub fn is_self(&self) -> bool {
        self.from == self.to
    }

    /// Whether the arc was only discovered statically (never traversed).
    pub fn is_static_only(&self) -> bool {
        self.count == 0
    }
}

/// A call graph over named routines.
///
/// Nodes are added first (usually one per symbol-table entry); arcs between
/// the same ordered pair are merged by summing counts.
///
/// ```
/// use graphprof_callgraph::CallGraph;
///
/// let mut graph = CallGraph::with_nodes(["main", "helper"]);
/// let main = graph.node_by_name("main").unwrap();
/// let helper = graph.node_by_name("helper").unwrap();
/// graph.add_arc(main, helper, 3);
/// graph.add_arc(main, helper, 4); // same pair: counts merge
/// assert_eq!(graph.arc_count(), 1);
/// assert_eq!(graph.calls_into(helper), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    names: Vec<String>,
    arcs: Vec<Arc>,
    by_pair: HashMap<(NodeId, NodeId), ArcId>,
    out_arcs: Vec<Vec<ArcId>>,
    in_arcs: Vec<Vec<ArcId>>,
}

impl CallGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// Creates a graph with nodes named by the iterator, in order.
    pub fn with_nodes<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut g = CallGraph::new();
        for name in names {
            g.add_node(name);
        }
        g
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.into());
        self.out_arcs.push(Vec::new());
        self.in_arcs.push(Vec::new());
        id
    }

    /// Adds `count` traversals of the arc `from → to`, merging with any
    /// existing arc between the pair. A zero count records a static-only
    /// arc without adding traversals.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, count: u64) -> ArcId {
        assert!(from.index() < self.names.len(), "from node out of range");
        assert!(to.index() < self.names.len(), "to node out of range");
        match self.by_pair.get(&(from, to)) {
            Some(&id) => {
                self.arcs[id.index()].count += count;
                id
            }
            None => {
                let id = ArcId(self.arcs.len() as u32);
                self.arcs.push(Arc { from, to, count });
                self.by_pair.insert((from, to), id);
                self.out_arcs[from.index()].push(id);
                self.in_arcs[to.index()].push(id);
                id
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of distinct arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// Finds a node by name (linear scan; graphs are routine-sized).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(|i| NodeId(i as u32))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// The arc with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn arc(&self, id: ArcId) -> Arc {
        self.arcs[id.index()]
    }

    /// All arcs with their ids.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, Arc)> + '_ {
        self.arcs.iter().enumerate().map(|(i, &a)| (ArcId(i as u32), a))
    }

    /// The arc between an ordered pair, if present.
    pub fn arc_between(&self, from: NodeId, to: NodeId) -> Option<ArcId> {
        self.by_pair.get(&(from, to)).copied()
    }

    /// Ids of arcs leaving `node`.
    pub fn out_arcs(&self, node: NodeId) -> &[ArcId] {
        &self.out_arcs[node.index()]
    }

    /// Ids of arcs entering `node`.
    pub fn in_arcs(&self, node: NodeId) -> &[ArcId] {
        &self.in_arcs[node.index()]
    }

    /// Total traversals into `node`, including self-arcs.
    pub fn calls_into(&self, node: NodeId) -> u64 {
        self.in_arcs(node).iter().map(|&a| self.arc(a).count).sum()
    }

    /// A copy of the graph without the arcs between the given ordered
    /// pairs (the retrospective's "option to specify a set of arcs to be
    /// removed from the analysis"). Unknown pairs are ignored.
    pub fn without_arcs(&self, removed: &[(NodeId, NodeId)]) -> CallGraph {
        let removed: std::collections::HashSet<(NodeId, NodeId)> =
            removed.iter().copied().collect();
        let mut g = CallGraph::with_nodes(self.names.iter().cloned());
        for &arc in &self.arcs {
            if !removed.contains(&(arc.from, arc.to)) {
                g.add_arc(arc.from, arc.to, arc.count);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (CallGraph, [NodeId; 4]) {
        let mut g = CallGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_arc(a, b, 1);
        g.add_arc(a, c, 2);
        g.add_arc(b, d, 3);
        g.add_arc(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn nodes_and_names() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.name(a), "a");
        assert_eq!(g.node_by_name("c"), Some(NodeId::new(2)));
        assert_eq!(g.node_by_name("zz"), None);
    }

    #[test]
    fn duplicate_arcs_merge_counts() {
        let mut g = CallGraph::with_nodes(["x", "y"]);
        let x = NodeId::new(0);
        let y = NodeId::new(1);
        let id1 = g.add_arc(x, y, 5);
        let id2 = g.add_arc(x, y, 7);
        assert_eq!(id1, id2);
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g.arc(id1).count, 12);
    }

    #[test]
    fn static_arc_merge_keeps_dynamic_count() {
        let mut g = CallGraph::with_nodes(["x", "y"]);
        let x = NodeId::new(0);
        let y = NodeId::new(1);
        g.add_arc(x, y, 9);
        let id = g.add_arc(x, y, 0); // statically rediscovered
        assert_eq!(g.arc(id).count, 9);
        assert!(!g.arc(id).is_static_only());
    }

    #[test]
    fn adjacency_lists() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.out_arcs(a).len(), 2);
        assert_eq!(g.in_arcs(d).len(), 2);
        assert_eq!(g.out_arcs(d).len(), 0);
        assert_eq!(g.in_arcs(a).len(), 0);
        let _ = (b, c);
    }

    #[test]
    fn calls_into_sums_all_inbound() {
        let (g, [.., d]) = diamond();
        assert_eq!(g.calls_into(d), 7);
    }

    #[test]
    fn self_arc_is_detected() {
        let mut g = CallGraph::with_nodes(["r"]);
        let r = NodeId::new(0);
        let id = g.add_arc(r, r, 4);
        assert!(g.arc(id).is_self());
        assert_eq!(g.calls_into(r), 4);
    }

    #[test]
    fn without_arcs_removes_pairs() {
        let (g, [a, b, c, d]) = diamond();
        let cut = g.without_arcs(&[(a, b), (c, d)]);
        assert_eq!(cut.arc_count(), 2);
        assert!(cut.arc_between(a, b).is_none());
        assert!(cut.arc_between(a, c).is_some());
        assert!(cut.arc_between(b, d).is_some());
        // Original untouched.
        assert_eq!(g.arc_count(), 4);
    }

    #[test]
    fn without_arcs_ignores_unknown_pairs() {
        let (g, [a, _, _, d]) = diamond();
        let cut = g.without_arcs(&[(d, a)]);
        assert_eq!(cut.arc_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arc_to_missing_node_panics() {
        let mut g = CallGraph::with_nodes(["only"]);
        g.add_arc(NodeId::new(0), NodeId::new(1), 1);
    }
}
