//! Call graph algorithms for the gprof post-processor (§4 of the paper).
//!
//! * [`graph`] — the [`CallGraph`] representation: routines as nodes,
//!   calls as counted arcs;
//! * [`tarjan`] — the variant of Tarjan's strongly-connected-components
//!   algorithm "that discovers strongly-connected components as it is
//!   assigning topological order numbers";
//! * [`propagate`] — time propagation from callees to callers along the
//!   collapsed, topologically ordered graph, per the recurrence
//!   `T_r = S_r + Σ T_e · C_e^r / C_e`;
//! * [`static_graph`] — discovery of statically apparent arcs by crawling
//!   the executable text, added with zero traversal counts so they shape
//!   cycles without propagating time;
//! * [`arc_removal`] — the retrospective's cycle-breaking facility: apply
//!   a user-chosen arc set, or search for one (the underlying problem is
//!   NP-complete, so the search is bounded);
//! * [`condensed`] — the §4 condensation materialized as a graph: one
//!   node per component, arcs aggregated, provably acyclic.

pub mod arc_removal;
pub mod condensed;
pub mod graph;
pub mod propagate;
pub mod static_graph;
pub mod tarjan;

pub use arc_removal::{break_cycles_exact, break_cycles_greedy, RemovalOutcome};
pub use condensed::{CondensedArc, CondensedGraph};
pub use graph::{Arc, ArcId, CallGraph, NodeId};
pub use propagate::{propagate, propagate_jobs, Propagation};
pub use static_graph::{
    discover_arcs_with_indirect, discover_arcs_with_indirect_jobs, discover_static_arcs,
    discover_static_arcs_jobs, ArcDiscovery,
};
pub use tarjan::{CompId, SccResult};
