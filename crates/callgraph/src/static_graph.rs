//! Static call graph discovery (§4).
//!
//! "In our programming system, the static calling information is also
//! contained in the executable version of the program [...] One can
//! examine the instructions in the object program, looking for calls to
//! routines, and note which routines can be called."
//!
//! The crawl disassembles each routine linearly from its symbol-table
//! boundary (guaranteeing instruction alignment) and collects the targets
//! of direct `call` instructions. Indirect calls — the machine's
//! functional parameters and variables — are invisible, exactly the blind
//! spot the paper describes: the *dynamic* graph "may include arcs to
//! functional parameters or variables that the static call graph may
//! omit" (§2).
//!
//! Discovered arcs are keyed by the *return address* of the call (the
//! address after the `call` instruction) so they merge with the arcs the
//! monitoring routine records at run time.

use graphprof_machine::{encoded_len, Addr, DecodeError, Executable};

/// A statically apparent call: `(return_address, callee_entry)`.
///
/// The return address identifies the call site with the same convention as
/// the monitoring routine's `from_pc`, so a statically discovered arc that
/// was also traversed dynamically resolves to the same arc.
pub type StaticArc = (Addr, Addr);

/// Crawls the executable text for direct calls.
///
/// Returns one entry per call instruction, in address order; the same
/// caller→callee pair appears once per call site.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the text segment is malformed.
pub fn discover_static_arcs(exe: &Executable) -> Result<Vec<StaticArc>, DecodeError> {
    let mut arcs = Vec::new();
    for (id, _) in exe.symbols().iter() {
        for (addr, inst) in exe.disassemble_symbol(id)? {
            if let Some(target) = inst.direct_call_target() {
                arcs.push((addr.offset(encoded_len(inst)), target));
            }
        }
    }
    Ok(arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::CompileOptions;

    fn compile(source: &str) -> Executable {
        graphprof_machine::asm::parse(source)
            .unwrap()
            .compile(&CompileOptions::profiled())
            .unwrap()
    }

    #[test]
    fn finds_every_direct_call_site() {
        let exe = compile(
            "routine main { call a call b call a }
             routine a { work 1 }
             routine b { call a }",
        );
        let a = exe.symbols().by_name("a").unwrap().1.addr();
        let b = exe.symbols().by_name("b").unwrap().1.addr();
        let arcs = discover_static_arcs(&exe).unwrap();
        assert_eq!(arcs.len(), 4);
        let into_a = arcs.iter().filter(|(_, t)| *t == a).count();
        let into_b = arcs.iter().filter(|(_, t)| *t == b).count();
        assert_eq!(into_a, 3);
        assert_eq!(into_b, 1);
    }

    #[test]
    fn indirect_calls_are_invisible() {
        let exe = compile(
            "routine main { setslot 0, hidden calli 0 }
             routine hidden { work 1 }",
        );
        let arcs = discover_static_arcs(&exe).unwrap();
        assert!(arcs.is_empty(), "indirect call must not appear statically");
    }

    #[test]
    fn loops_do_not_multiply_static_arcs() {
        let exe = compile(
            "routine main { loop 100 { call leaf } }
             routine leaf { work 1 }",
        );
        let arcs = discover_static_arcs(&exe).unwrap();
        assert_eq!(arcs.len(), 1, "one call site regardless of trip count");
    }

    #[test]
    fn return_addresses_match_mcount_convention() {
        use graphprof_machine::{Machine, MachineConfig, ProfilingHooks};
        #[derive(Default)]
        struct Collect(Vec<(Addr, Addr)>);
        impl ProfilingHooks for Collect {
            fn on_mcount(&mut self, from: Addr, callee: Addr) -> u64 {
                if !from.is_null() {
                    self.0.push((from, callee));
                }
                0
            }
        }
        let exe = compile(
            "routine main { call leaf }
             routine leaf { work 1 }",
        );
        let static_arcs = discover_static_arcs(&exe).unwrap();
        let mut hooks = Collect::default();
        let mut m = Machine::with_config(exe, MachineConfig::default());
        m.run(&mut hooks).unwrap();
        assert_eq!(static_arcs, hooks.0, "static and dynamic keys coincide");
    }

    #[test]
    fn covers_calls_in_every_routine() {
        let exe = compile(
            "routine main { call a }
             routine a { call b }
             routine b { call c }
             routine c { work 1 }",
        );
        let arcs = discover_static_arcs(&exe).unwrap();
        assert_eq!(arcs.len(), 3);
        // Arcs are in address order.
        for pair in arcs.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }
}
