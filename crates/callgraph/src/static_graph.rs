//! Static call graph discovery (§4).
//!
//! "In our programming system, the static calling information is also
//! contained in the executable version of the program [...] One can
//! examine the instructions in the object program, looking for calls to
//! routines, and note which routines can be called."
//!
//! The crawl disassembles each routine linearly from its symbol-table
//! boundary (guaranteeing instruction alignment) and collects the targets
//! of direct `call` instructions. Indirect calls — the machine's
//! functional parameters and variables — are invisible, exactly the blind
//! spot the paper describes: the *dynamic* graph "may include arcs to
//! functional parameters or variables that the static call graph may
//! omit" (§2).
//!
//! Discovered arcs are keyed by the *return address* of the call (the
//! address after the `call` instruction) so they merge with the arcs the
//! monitoring routine records at run time.
//!
//! [`discover_arcs_with_indirect`] narrows the blind spot: it runs the
//! `graphprof-analysis` slot dataflow and adds an arc for every indirect
//! call site whose slot provably holds a single routine, reporting the
//! sites it still cannot see through.

use graphprof_analysis::{resolve_indirect_calls_jobs, UnresolvedIndirect};
use graphprof_machine::{encoded_len, Addr, DecodeError, Executable};

/// A statically apparent call: `(return_address, callee_entry)`.
///
/// The return address identifies the call site with the same convention as
/// the monitoring routine's `from_pc`, so a statically discovered arc that
/// was also traversed dynamically resolves to the same arc.
pub type StaticArc = (Addr, Addr);

/// Crawls the executable text for direct calls.
///
/// Returns one entry *per call site* (not per caller→callee pair: a
/// routine calling the same callee from three sites yields three arcs),
/// in strictly increasing return-address order. The order is a contract:
/// the symbol table is sorted by address and each routine is
/// disassembled front to back, so downstream merging can rely on it.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the text segment is malformed.
pub fn discover_static_arcs(exe: &Executable) -> Result<Vec<StaticArc>, DecodeError> {
    discover_static_arcs_jobs(exe, 1)
}

/// [`discover_static_arcs`] with an explicit worker count.
///
/// Each routine's crawl is independent, so the disassembly fans out over
/// `jobs` workers; per-routine arc lists are concatenated in symbol
/// (address) order, which preserves the strictly-increasing
/// return-address contract verbatim — the output is identical for every
/// `jobs` value.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the text segment is malformed; with
/// several malformed routines the lowest-addressed one wins, matching
/// the serial crawl order.
pub fn discover_static_arcs_jobs(
    exe: &Executable,
    jobs: usize,
) -> Result<Vec<StaticArc>, DecodeError> {
    let ids: Vec<_> = exe.symbols().iter().map(|(id, _)| id).collect();
    let per_routine = graphprof_exec::try_parallel_map(jobs, &ids, |_, &id| {
        let mut arcs = Vec::new();
        for (addr, inst) in exe.disassemble_symbol(id)? {
            if let Some(target) = inst.direct_call_target() {
                arcs.push((addr.offset(encoded_len(inst)), target));
            }
        }
        Ok(arcs)
    })?;
    Ok(per_routine.into_iter().flatten().collect())
}

/// Statically discovered arcs with the indirect blind spot narrowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArcDiscovery {
    /// Direct-call arcs plus resolved indirect-call arcs, one per call
    /// site in strictly increasing return-address order.
    pub arcs: Vec<StaticArc>,
    /// Indirect call sites the slot dataflow could not resolve — the
    /// residue of the paper's §2 blind spot, in address order.
    pub unresolved: Vec<UnresolvedIndirect>,
}

/// Crawls the text for direct calls *and* resolves indirect calls
/// through the `graphprof-analysis` slot dataflow.
///
/// Sites the dataflow proves single-target become ordinary static arcs
/// (keyed, like all arcs, by the call's return address); the rest are
/// returned in [`ArcDiscovery::unresolved`] so callers can report how
/// much of the call graph remains statically invisible.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the text segment is malformed.
pub fn discover_arcs_with_indirect(exe: &Executable) -> Result<ArcDiscovery, DecodeError> {
    discover_arcs_with_indirect_jobs(exe, 1)
}

/// [`discover_arcs_with_indirect`] with an explicit worker count, fanned
/// out over both the direct crawl and the slot dataflow. Byte-identical
/// to the serial pass for every `jobs` value.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the text segment is malformed.
pub fn discover_arcs_with_indirect_jobs(
    exe: &Executable,
    jobs: usize,
) -> Result<ArcDiscovery, DecodeError> {
    let mut arcs = discover_static_arcs_jobs(exe, jobs)?;
    let resolution = resolve_indirect_calls_jobs(exe, jobs)?;
    arcs.extend(resolution.static_arcs());
    arcs.sort_unstable();
    Ok(ArcDiscovery { arcs, unresolved: resolution.unresolved })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::CompileOptions;

    fn compile(source: &str) -> Executable {
        graphprof_machine::asm::parse(source).unwrap().compile(&CompileOptions::profiled()).unwrap()
    }

    #[test]
    fn finds_every_direct_call_site() {
        let exe = compile(
            "routine main { call a call b call a }
             routine a { work 1 }
             routine b { call a }",
        );
        let a = exe.symbols().by_name("a").unwrap().1.addr();
        let b = exe.symbols().by_name("b").unwrap().1.addr();
        let arcs = discover_static_arcs(&exe).unwrap();
        assert_eq!(arcs.len(), 4);
        let into_a = arcs.iter().filter(|(_, t)| *t == a).count();
        let into_b = arcs.iter().filter(|(_, t)| *t == b).count();
        assert_eq!(into_a, 3);
        assert_eq!(into_b, 1);
    }

    #[test]
    fn indirect_calls_are_invisible() {
        let exe = compile(
            "routine main { setslot 0, hidden calli 0 }
             routine hidden { work 1 }",
        );
        let arcs = discover_static_arcs(&exe).unwrap();
        assert!(arcs.is_empty(), "indirect call must not appear statically");
        // ...to the plain crawl. The dataflow-backed discovery sees that
        // slot 0 can only hold `hidden` and closes the blind spot.
        let discovery = discover_arcs_with_indirect(&exe).unwrap();
        let hidden = exe.symbols().by_name("hidden").unwrap().1.addr();
        assert_eq!(discovery.arcs.len(), 1);
        assert_eq!(discovery.arcs[0].1, hidden);
        assert!(discovery.unresolved.is_empty());
    }

    #[test]
    fn ambiguous_indirect_sites_are_reported_not_guessed() {
        let exe = compile(
            "routine main { setslot 0, a calli 0 setslot 0, b call flip }
             routine flip { calli 0 }
             routine a { work 1 }
             routine b { work 1 }",
        );
        let discovery = discover_arcs_with_indirect(&exe).unwrap();
        // main's own calli resolves (straight-line store of `a`); flip's
        // does not, because two different routines reach its slot.
        let a = exe.symbols().by_name("a").unwrap().1.addr();
        assert!(discovery.arcs.iter().any(|&(_, t)| t == a));
        assert_eq!(discovery.unresolved.len(), 1);
    }

    #[test]
    fn merged_arcs_preserve_address_order() {
        // Direct and indirect call sites interleaved in one routine: the
        // merged list must still be in strictly increasing site order.
        let exe = compile(
            "routine main { setslot 0, hidden call a calli 0 call a }
             routine a { work 1 }
             routine hidden { work 1 }",
        );
        let discovery = discover_arcs_with_indirect(&exe).unwrap();
        assert_eq!(discovery.arcs.len(), 3);
        for pair in discovery.arcs.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{:?}", discovery.arcs);
        }
    }

    #[test]
    fn loops_do_not_multiply_static_arcs() {
        let exe = compile(
            "routine main { loop 100 { call leaf } }
             routine leaf { work 1 }",
        );
        let arcs = discover_static_arcs(&exe).unwrap();
        assert_eq!(arcs.len(), 1, "one call site regardless of trip count");
    }

    #[test]
    fn return_addresses_match_mcount_convention() {
        use graphprof_machine::{Machine, MachineConfig, ProfilingHooks};
        #[derive(Default)]
        struct Collect(Vec<(Addr, Addr)>);
        impl ProfilingHooks for Collect {
            fn on_mcount(&mut self, from: Addr, callee: Addr) -> u64 {
                if !from.is_null() {
                    self.0.push((from, callee));
                }
                0
            }
        }
        let exe = compile(
            "routine main { call leaf }
             routine leaf { work 1 }",
        );
        let static_arcs = discover_static_arcs(&exe).unwrap();
        let mut hooks = Collect::default();
        let mut m = Machine::with_config(exe, MachineConfig::default());
        m.run(&mut hooks).unwrap();
        assert_eq!(static_arcs, hooks.0, "static and dynamic keys coincide");
    }

    #[test]
    fn covers_calls_in_every_routine() {
        let exe = compile(
            "routine main { call a }
             routine a { call b }
             routine b { call c }
             routine c { work 1 }",
        );
        let arcs = discover_static_arcs(&exe).unwrap();
        assert_eq!(arcs.len(), 3);
        // Arcs are in address order.
        for pair in arcs.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn parallel_discovery_matches_serial_exactly() {
        let mut src = String::from("routine main {");
        for i in 0..10 {
            src.push_str(&format!(" call r{i}"));
        }
        src.push_str(" setslot 0, hidden calli 0 setslot 1, a setslot 1, b call flip }\n");
        for i in 0..10 {
            src.push_str(&format!("routine r{i} {{ call a work {} }}\n", i + 1));
        }
        src.push_str(
            "routine flip { calli 1 }
             routine a { work 1 }
             routine b { work 1 }
             routine hidden { work 1 }",
        );
        let exe = compile(&src);
        assert_eq!(
            discover_static_arcs_jobs(&exe, 1).unwrap(),
            discover_static_arcs(&exe).unwrap()
        );
        assert_eq!(
            discover_static_arcs_jobs(&exe, 1).unwrap(),
            discover_static_arcs_jobs(&exe, 8).unwrap()
        );
        let serial = discover_arcs_with_indirect_jobs(&exe, 1).unwrap();
        assert_eq!(serial, discover_arcs_with_indirect_jobs(&exe, 8).unwrap());
        assert_eq!(serial, discover_arcs_with_indirect(&exe).unwrap());
        assert!(serial.arcs.len() > 11);
        assert_eq!(serial.unresolved.len(), 1);
    }

    mod generated {
        use super::*;
        use graphprof_machine::{Instruction, Program, Routine, Stmt};
        use proptest::prelude::*;

        /// Random terminating programs: routine `i` only calls
        /// later-indexed routines, directly, conditionally, or through a
        /// slot.
        fn arb_program() -> impl Strategy<Value = Program> {
            (2usize..6).prop_flat_map(|n| {
                let bodies: Vec<_> = (0..n)
                    .map(|i| {
                        let callee =
                            move |rel: usize| format!("f{}", i + 1 + rel % (n - i - 1).max(1));
                        let stmt = if i + 1 < n {
                            prop_oneof![
                                (1u32..50).prop_map(Stmt::Work),
                                (0usize..8).prop_map(move |r| Stmt::Call(callee(r))),
                                ((0u8..4), (0usize..8))
                                    .prop_map(move |(s, r)| Stmt::SetSlot(s, callee(r))),
                                (0u8..4).prop_map(Stmt::CallIndirect),
                                ((0u8..4), (0usize..8))
                                    .prop_map(move |(c, r)| Stmt::CallWhile(c, callee(r))),
                                ((1u32..3), (0usize..8)).prop_map(move |(count, r)| {
                                    Stmt::Loop { count, body: vec![Stmt::Call(callee(r))] }
                                }),
                            ]
                            .boxed()
                        } else {
                            (1u32..50).prop_map(Stmt::Work).boxed()
                        };
                        proptest::collection::vec(stmt, 1..5)
                    })
                    .collect();
                bodies.prop_map(move |bodies| {
                    let routines: Vec<Routine> = bodies
                        .into_iter()
                        .enumerate()
                        .map(|(i, body)| Routine::new(format!("f{i}"), body, true))
                        .collect();
                    Program::new(routines, "f0").expect("generated program is valid")
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The crawl finds exactly the direct call sites of every
            /// routine — no more, no fewer — in address order.
            #[test]
            fn covers_calls_in_every_generated_routine(program in arb_program()) {
                let exe = program
                    .compile(&CompileOptions::profiled())
                    .expect("compiles");
                let arcs = discover_static_arcs(&exe).unwrap();
                // Ground truth by independent disassembly.
                let mut expected = Vec::new();
                for (id, _) in exe.symbols().iter() {
                    for (addr, inst) in exe.disassemble_symbol(id).unwrap() {
                        if let Instruction::Call(target) = inst {
                            expected.push((addr.offset(encoded_len(inst)), target));
                        }
                    }
                }
                prop_assert_eq!(&arcs, &expected);
                for pair in arcs.windows(2) {
                    prop_assert!(pair[0].0 < pair[1].0, "address order violated");
                }
            }

            /// The indirect-aware discovery is a superset of the plain
            /// crawl, stays in address order, and accounts for every
            /// indirect site exactly once (resolved xor unresolved).
            #[test]
            fn indirect_discovery_extends_the_crawl(program in arb_program()) {
                let exe = program
                    .compile(&CompileOptions::profiled())
                    .expect("compiles");
                let direct = discover_static_arcs(&exe).unwrap();
                let discovery = discover_arcs_with_indirect(&exe).unwrap();
                for arc in &direct {
                    prop_assert!(discovery.arcs.contains(arc));
                }
                for pair in discovery.arcs.windows(2) {
                    prop_assert!(pair[0].0 < pair[1].0, "address order violated");
                }
                // Count reachable indirect sites (the dataflow only reads
                // sites reachable within their routine's CFG).
                let resolved = discovery.arcs.len() - direct.len();
                prop_assert_eq!(
                    resolved + discovery.unresolved.len(),
                    reachable_indirect_sites(&exe),
                );
            }
        }

        fn reachable_indirect_sites(exe: &Executable) -> usize {
            let mut n = 0;
            for (id, _) in exe.symbols().iter() {
                let cfg = graphprof_analysis::build_cfg(exe, id).unwrap();
                let reachable = cfg.reachable();
                for (bid, block) in cfg.iter() {
                    if !reachable[bid.index()] {
                        continue;
                    }
                    n += block
                        .insts()
                        .iter()
                        .filter(|(_, i)| matches!(i, Instruction::CallIndirect(_)))
                        .count();
                }
            }
            n
        }
    }
}
