//! Time propagation from callees to callers (§4).
//!
//! The recurrence: `T_r = S_r + Σ_{r CALLS e} T_e × C_e^r / C_e` — each
//! caller is "accountable for `C_e^r / C_e` of the time spent by the
//! callee", under the simplifying assumption that every call to a routine
//! costs that routine's average time.
//!
//! Components are visited in the topological pop order produced by
//! [`SccResult`], so every callee's total is final before any caller reads
//! it and "execution time can be propagated from descendants to ancestors
//! after a single traversal of each arc in the call graph".
//!
//! Cycles are collapsed (§4): a cycle's members pool their self time;
//! calls *into* the cycle share the cycle's whole time in proportion to
//! their counts of the total external calls ("not counting calls among
//! members of the cycle"); arcs *among* members — including a routine's
//! arcs to itself — "are of interest, but do not participate in time
//! propagation".
//!
//! Two quantities flow along every propagating arc: the callee side's
//! pooled *self* time and its accumulated *descendant* time. Keeping them
//! separate is what lets the profile listing show, for each parent, "the
//! amount of self and descendant time [the routine] propagates to them"
//! (§5.2, Figure 4).

use crate::graph::{ArcId, CallGraph, NodeId};
use crate::tarjan::{CompId, SccResult};

/// The result of time propagation over a call graph.
#[derive(Debug, Clone)]
pub struct Propagation {
    node_self: Vec<f64>,
    node_desc: Vec<f64>,
    comp_self: Vec<f64>,
    comp_desc: Vec<f64>,
    arc_self_flow: Vec<f64>,
    arc_desc_flow: Vec<f64>,
    external_calls_into: Vec<u64>,
}

impl Propagation {
    /// A node's own (self) time, as supplied.
    pub fn node_self(&self, node: NodeId) -> f64 {
        self.node_self[node.index()]
    }

    /// The descendant time propagated to a node along its own arcs to
    /// callees outside its component.
    pub fn node_desc(&self, node: NodeId) -> f64 {
        self.node_desc[node.index()]
    }

    /// A node's total: self plus propagated descendants. For a cycle
    /// member this is the member's *individual* total; the cycle's pooled
    /// total is [`Propagation::comp_total`].
    pub fn node_total(&self, node: NodeId) -> f64 {
        self.node_self[node.index()] + self.node_desc[node.index()]
    }

    /// The pooled self time of a component (sum over members).
    pub fn comp_self(&self, comp: CompId) -> f64 {
        self.comp_self[comp.index()]
    }

    /// The descendant time accumulated by a component from callees outside
    /// it.
    pub fn comp_desc(&self, comp: CompId) -> f64 {
        self.comp_desc[comp.index()]
    }

    /// A component's total time `T_C`.
    pub fn comp_total(&self, comp: CompId) -> f64 {
        self.comp_self(comp) + self.comp_desc(comp)
    }

    /// The self-time share flowing along an arc (zero for intra-component
    /// and never-traversed arcs).
    pub fn arc_self_flow(&self, arc: ArcId) -> f64 {
        self.arc_self_flow[arc.index()]
    }

    /// The descendant-time share flowing along an arc.
    pub fn arc_desc_flow(&self, arc: ArcId) -> f64 {
        self.arc_desc_flow[arc.index()]
    }

    /// Total time flowing along an arc.
    pub fn arc_flow(&self, arc: ArcId) -> f64 {
        self.arc_self_flow(arc) + self.arc_desc_flow(arc)
    }

    /// Total calls into a component from outside it — the `C_e` of the
    /// recurrence, "not counting calls among members of the cycle".
    pub fn external_calls_into(&self, comp: CompId) -> u64 {
        self.external_calls_into[comp.index()]
    }
}

/// Propagates `self_times` (one entry per node, in node order) up the call
/// graph. Returns per-node, per-component, and per-arc accounting.
///
/// ```
/// use graphprof_callgraph::{propagate, CallGraph, SccResult};
///
/// // Two callers split a callee's 100 time units 3:1 by call counts.
/// let mut graph = CallGraph::with_nodes(["hot", "cold", "shared"]);
/// let ids: Vec<_> = graph.nodes().collect();
/// graph.add_arc(ids[0], ids[2], 30);
/// graph.add_arc(ids[1], ids[2], 10);
/// let scc = SccResult::analyze(&graph);
/// let p = propagate(&graph, &scc, &[0.0, 0.0, 100.0]);
/// assert_eq!(p.node_total(ids[0]), 75.0);
/// assert_eq!(p.node_total(ids[1]), 25.0);
/// ```
///
/// # Panics
///
/// Panics if `self_times.len()` differs from the graph's node count or if
/// `scc` was computed for a different graph shape.
pub fn propagate(graph: &CallGraph, scc: &SccResult, self_times: &[f64]) -> Propagation {
    propagate_jobs(graph, scc, self_times, 1)
}

/// One component's contribution to the propagation, computed in
/// isolation: all the writes its evaluation would make, recorded in the
/// exact order the serial pass makes them.
struct CompUpdate {
    /// `(arc index, self flow, desc flow)` for every propagating arc.
    arc_flows: Vec<(usize, f64, f64)>,
    /// `(node index, descendant add)` — one entry per member that
    /// received any flow, accumulated in arc order.
    node_desc: Vec<(usize, f64)>,
    /// The component's own accumulated descendant time.
    comp_desc: f64,
}

/// Evaluates one component against finalized callee totals. The
/// iteration order (members in order, out-arcs in order) and the
/// accumulation order are exactly the serial pass's, so every f64 here
/// is bit-identical to what the serial pass would have produced.
fn eval_comp(graph: &CallGraph, scc: &SccResult, p: &Propagation, comp: CompId) -> CompUpdate {
    let mut up = CompUpdate { arc_flows: Vec::new(), node_desc: Vec::new(), comp_desc: 0.0 };
    for &member in scc.members(comp) {
        let mut member_desc = 0.0;
        for &arc_id in graph.out_arcs(member) {
            let arc = graph.arc(arc_id);
            let callee_comp = scc.comp(arc.to);
            if callee_comp == comp {
                continue; // intra-cycle or self arc: listed, never propagated
            }
            debug_assert!(
                callee_comp < comp,
                "topological order violated: {callee_comp} not before {comp}"
            );
            let denom = p.external_calls_into[callee_comp.index()];
            if denom == 0 || arc.count == 0 {
                continue; // static-only arcs never carry time (§4)
            }
            let fraction = arc.count as f64 / denom as f64;
            let self_flow = p.comp_self[callee_comp.index()] * fraction;
            let desc_flow = p.comp_desc[callee_comp.index()] * fraction;
            up.arc_flows.push((arc_id.index(), self_flow, desc_flow));
            member_desc += self_flow + desc_flow;
            up.comp_desc += self_flow + desc_flow;
        }
        if member_desc != 0.0 {
            up.node_desc.push((member.index(), member_desc));
        }
    }
    up
}

/// [`propagate`] with an explicit worker count.
///
/// The condensed component DAG is scheduled by topological level: a
/// component's level is one more than the deepest component it calls
/// into, so all its callees are finalized before it is evaluated.
/// Components within a level are independent — they share no nodes, no
/// arcs, and read only lower-level totals — and are evaluated
/// concurrently, each producing a [`CompUpdate`] that is applied back in
/// component (pop) order. Every per-component evaluation preserves the
/// serial pass's member/arc iteration and f64 accumulation order, so the
/// result is bit-identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `self_times.len()` differs from the graph's node count or if
/// `scc` was computed for a different graph shape.
pub fn propagate_jobs(
    graph: &CallGraph,
    scc: &SccResult,
    self_times: &[f64],
    jobs: usize,
) -> Propagation {
    assert_eq!(self_times.len(), graph.node_count(), "one self time per node required");
    let n_comps = scc.comp_count();
    let mut p = Propagation {
        node_self: self_times.to_vec(),
        node_desc: vec![0.0; graph.node_count()],
        comp_self: vec![0.0; n_comps],
        comp_desc: vec![0.0; n_comps],
        arc_self_flow: vec![0.0; graph.arc_count()],
        arc_desc_flow: vec![0.0; graph.arc_count()],
        external_calls_into: vec![0; n_comps],
    };

    for node in graph.nodes() {
        p.comp_self[scc.comp(node).index()] += self_times[node.index()];
    }
    for (_, arc) in graph.arcs() {
        if scc.comp(arc.from) != scc.comp(arc.to) {
            p.external_calls_into[scc.comp(arc.to).index()] += arc.count;
        }
    }

    if jobs <= 1 {
        // Pop order: every inter-component arc target is finalized before
        // its source component is visited.
        for comp in scc.comps() {
            let up = eval_comp(graph, scc, &p, comp);
            apply_update(&mut p, comp, up);
        }
        return p;
    }

    // Topological levels over the condensed DAG. Pop order guarantees a
    // component's callees precede it, so one forward sweep suffices.
    let mut level = vec![0usize; n_comps];
    let mut max_level = 0;
    for comp in scc.comps() {
        let mut l = 0;
        for &member in scc.members(comp) {
            for &arc_id in graph.out_arcs(member) {
                let callee_comp = scc.comp(graph.arc(arc_id).to);
                if callee_comp != comp {
                    l = l.max(level[callee_comp.index()] + 1);
                }
            }
        }
        level[comp.index()] = l;
        max_level = max_level.max(l);
    }
    let mut waves: Vec<Vec<CompId>> = vec![Vec::new(); max_level + 1];
    for comp in scc.comps() {
        waves[level[comp.index()]].push(comp);
    }
    for wave in waves {
        let updates =
            graphprof_exec::parallel_map(jobs, &wave, |_, &comp| eval_comp(graph, scc, &p, comp));
        for (&comp, up) in wave.iter().zip(updates) {
            apply_update(&mut p, comp, up);
        }
    }
    p
}

/// Writes one component's finished evaluation into the shared result.
/// Targets are disjoint across components, so apply order only matters
/// for readability; within a component the order matches the serial pass.
fn apply_update(p: &mut Propagation, comp: CompId, up: CompUpdate) {
    for (arc, self_flow, desc_flow) in up.arc_flows {
        p.arc_self_flow[arc] = self_flow;
        p.arc_desc_flow[arc] = desc_flow;
    }
    for (node, desc) in up.node_desc {
        p.node_desc[node] += desc;
    }
    p.comp_desc[comp.index()] += up.comp_desc;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;

    fn analyze(g: &CallGraph, self_times: &[f64]) -> (SccResult, Propagation) {
        let scc = SccResult::analyze(g);
        let p = propagate(g, &scc, self_times);
        (scc, p)
    }

    #[test]
    fn single_caller_inherits_everything() {
        let mut g = CallGraph::with_nodes(["main", "leaf"]);
        let main = NodeId::new(0);
        let leaf = NodeId::new(1);
        g.add_arc(main, leaf, 10);
        let (_, p) = analyze(&g, &[5.0, 95.0]);
        assert_eq!(p.node_total(main), 100.0);
        assert_eq!(p.node_total(leaf), 95.0);
        assert_eq!(p.node_desc(leaf), 0.0);
    }

    #[test]
    fn shares_split_by_call_counts() {
        // The paper's EXAMPLE shape: two callers, 4 and 6 calls.
        let mut g = CallGraph::with_nodes(["caller1", "caller2", "example"]);
        let c1 = NodeId::new(0);
        let c2 = NodeId::new(1);
        let ex = NodeId::new(2);
        let a1 = g.add_arc(c1, ex, 4);
        let a2 = g.add_arc(c2, ex, 6);
        let (_, p) = analyze(&g, &[0.0, 0.0, 10.0]);
        assert!((p.arc_flow(a1) - 4.0).abs() < 1e-9);
        assert!((p.arc_flow(a2) - 6.0).abs() < 1e-9);
        assert!((p.node_total(c1) - 4.0).abs() < 1e-9);
        assert!((p.node_total(c2) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn self_and_descendant_flows_are_separate() {
        // main -> mid -> leaf: mid passes leaf's time on as "descendant".
        let mut g = CallGraph::with_nodes(["main", "mid", "leaf"]);
        let main = NodeId::new(0);
        let mid = NodeId::new(1);
        let leaf = NodeId::new(2);
        let top = g.add_arc(main, mid, 2);
        g.add_arc(mid, leaf, 4);
        let (_, p) = analyze(&g, &[1.0, 10.0, 40.0]);
        assert!((p.arc_self_flow(top) - 10.0).abs() < 1e-9, "mid's self");
        assert!((p.arc_desc_flow(top) - 40.0).abs() < 1e-9, "leaf via mid");
        assert!((p.node_total(main) - 51.0).abs() < 1e-9);
    }

    #[test]
    fn chain_conserves_total_time_at_root() {
        let names: Vec<String> = (0..6).map(|i| format!("f{i}")).collect();
        let mut g = CallGraph::with_nodes(names);
        for i in 0..5u32 {
            g.add_arc(NodeId::new(i), NodeId::new(i + 1), 3);
        }
        let times: Vec<f64> = (1..=6).map(f64::from).collect();
        let (_, p) = analyze(&g, &times);
        let total: f64 = times.iter().sum();
        assert!((p.node_total(NodeId::new(0)) - total).abs() < 1e-9);
    }

    #[test]
    fn self_arcs_do_not_propagate() {
        let mut g = CallGraph::with_nodes(["main", "rec"]);
        let main = NodeId::new(0);
        let rec = NodeId::new(1);
        let outer = g.add_arc(main, rec, 2);
        let inner = g.add_arc(rec, rec, 50);
        let (scc, p) = analyze(&g, &[0.0, 80.0]);
        // All of rec's time flows along the outer arc, none along the
        // self-arc, and the denominator counts outside calls only.
        assert_eq!(p.external_calls_into(scc.comp(rec)), 2);
        assert!((p.arc_flow(outer) - 80.0).abs() < 1e-9);
        assert_eq!(p.arc_flow(inner), 0.0);
        assert!((p.node_total(main) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_pools_time_and_shares_by_external_calls() {
        // caller_a -(30)-> x <-> y <- caller_b (10)
        let mut g = CallGraph::with_nodes(["a", "b", "x", "y"]);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let x = NodeId::new(2);
        let y = NodeId::new(3);
        let from_a = g.add_arc(a, x, 30);
        let from_b = g.add_arc(b, y, 10);
        let xy = g.add_arc(x, y, 100);
        let yx = g.add_arc(y, x, 99);
        let (scc, p) = analyze(&g, &[0.0, 0.0, 60.0, 20.0]);
        let cycle = scc.comp(x);
        assert!(scc.is_cycle(cycle));
        assert_eq!(p.external_calls_into(cycle), 40);
        assert!((p.comp_self(cycle) - 80.0).abs() < 1e-9);
        // Intra-cycle arcs carry nothing.
        assert_eq!(p.arc_flow(xy), 0.0);
        assert_eq!(p.arc_flow(yx), 0.0);
        // External callers share the pooled 80.0 as 30/40 and 10/40.
        assert!((p.arc_flow(from_a) - 60.0).abs() < 1e-9);
        assert!((p.arc_flow(from_b) - 20.0).abs() < 1e-9);
        assert!((p.node_total(a) - 60.0).abs() < 1e-9);
        assert!((p.node_total(b) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_descendants_propagate_into_and_out_of_cycle() {
        // root -> x <-> y, y -> leaf. The leaf's time must flow through
        // the cycle to root.
        let mut g = CallGraph::with_nodes(["root", "x", "y", "leaf"]);
        let root = NodeId::new(0);
        let x = NodeId::new(1);
        let y = NodeId::new(2);
        let leaf = NodeId::new(3);
        let top = g.add_arc(root, x, 5);
        g.add_arc(x, y, 7);
        g.add_arc(y, x, 2);
        let bottom = g.add_arc(y, leaf, 3);
        let (scc, p) = analyze(&g, &[1.0, 10.0, 20.0, 30.0]);
        let cycle = scc.comp(x);
        assert!((p.arc_flow(bottom) - 30.0).abs() < 1e-9);
        assert!((p.comp_desc(cycle) - 30.0).abs() < 1e-9);
        // Root is the only external caller of the cycle: inherits all.
        assert!((p.arc_self_flow(top) - 30.0).abs() < 1e-9);
        assert!((p.arc_desc_flow(top) - 30.0).abs() < 1e-9);
        assert!((p.node_total(root) - 61.0).abs() < 1e-9);
    }

    #[test]
    fn static_only_arcs_carry_no_time() {
        let mut g = CallGraph::with_nodes(["main", "alt", "leaf"]);
        let main = NodeId::new(0);
        let alt = NodeId::new(1);
        let leaf = NodeId::new(2);
        let hot = g.add_arc(main, leaf, 10);
        let cold = g.add_arc(alt, leaf, 0); // discovered statically only
        let (_, p) = analyze(&g, &[0.0, 0.0, 50.0]);
        assert!((p.arc_flow(hot) - 50.0).abs() < 1e-9);
        assert_eq!(p.arc_flow(cold), 0.0);
        assert_eq!(p.node_total(alt), 0.0);
    }

    #[test]
    fn uncalled_component_keeps_its_time() {
        // A node with time but no callers at all: nothing to propagate to.
        let mut g = CallGraph::with_nodes(["orphan", "leaf"]);
        let orphan = NodeId::new(0);
        let leaf = NodeId::new(1);
        g.add_arc(orphan, leaf, 1);
        let (_, p) = analyze(&g, &[5.0, 7.0]);
        assert!((p.node_total(orphan) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn diamond_double_counts_shared_descendant_once_per_path_share() {
        // a -> b -> d, a -> c -> d: d's time splits between b and c by
        // call counts, and both shares reach a (summing to d's whole time).
        let mut g = CallGraph::with_nodes(["a", "b", "c", "d"]);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let c = NodeId::new(2);
        let d = NodeId::new(3);
        g.add_arc(a, b, 1);
        g.add_arc(a, c, 1);
        g.add_arc(b, d, 1);
        g.add_arc(c, d, 3);
        let (_, p) = analyze(&g, &[0.0, 0.0, 0.0, 100.0]);
        assert!((p.node_total(b) - 25.0).abs() < 1e-9);
        assert!((p.node_total(c) - 75.0).abs() < 1e-9);
        assert!((p.node_total(a) - 100.0).abs() < 1e-9);
    }

    /// Bitwise equality over every field, including the f64 vectors.
    fn assert_bit_identical(a: &Propagation, b: &Propagation) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.node_self), bits(&b.node_self));
        assert_eq!(bits(&a.node_desc), bits(&b.node_desc));
        assert_eq!(bits(&a.comp_self), bits(&b.comp_self));
        assert_eq!(bits(&a.comp_desc), bits(&b.comp_desc));
        assert_eq!(bits(&a.arc_self_flow), bits(&b.arc_self_flow));
        assert_eq!(bits(&a.arc_desc_flow), bits(&b.arc_desc_flow));
        assert_eq!(a.external_calls_into, b.external_calls_into);
    }

    #[test]
    fn level_parallel_propagation_is_bit_identical() {
        // A layered DAG with a cycle in the middle and awkward (hard to
        // reassociate) self times: the exact f64s must survive any
        // worker count.
        let names: Vec<String> = (0..24).map(|i| format!("f{i}")).collect();
        let mut g = CallGraph::with_nodes(names);
        for i in 0..18u32 {
            g.add_arc(NodeId::new(i), NodeId::new(i + 3), u64::from(i % 5 + 1));
            g.add_arc(NodeId::new(i), NodeId::new(i + 6), u64::from(i % 3 + 1));
        }
        g.add_arc(NodeId::new(10), NodeId::new(4), 2); // cycle 4..=10
        let times: Vec<f64> = (0..24).map(|i| 1.0 / f64::from(3 * i + 1)).collect();
        let scc = SccResult::analyze(&g);
        let serial = propagate_jobs(&g, &scc, &times, 1);
        for jobs in [2, 4, 8] {
            assert_bit_identical(&serial, &propagate_jobs(&g, &scc, &times, jobs));
        }
        assert_bit_identical(&serial, &propagate(&g, &scc, &times));
    }

    #[test]
    #[should_panic(expected = "one self time per node")]
    fn wrong_self_time_length_panics() {
        let g = CallGraph::with_nodes(["a"]);
        let scc = SccResult::analyze(&g);
        propagate(&g, &scc, &[]);
    }
}
