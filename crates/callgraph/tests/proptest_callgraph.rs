//! Property-based tests for the call graph algorithms: Tarjan against a
//! naive reachability model, propagation conservation laws, and cycle
//! breaking.

use proptest::prelude::*;

use graphprof_callgraph::arc_removal::is_propagation_acyclic;
use graphprof_callgraph::{
    break_cycles_exact, break_cycles_greedy, propagate, CallGraph, NodeId, SccResult,
};

fn arb_graph() -> impl Strategy<Value = CallGraph> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u64..50), 0..(3 * n)).prop_map(move |arcs| {
            let mut g = CallGraph::with_nodes((0..n).map(|i| format!("f{i}")));
            for (a, b, count) in arcs {
                g.add_arc(NodeId::new(a as u32), NodeId::new(b as u32), count);
            }
            g
        })
    })
}

/// A random single-root DAG: arcs only go from lower to higher indices,
/// and every non-root node has at least one caller.
fn arb_dag() -> impl Strategy<Value = CallGraph> {
    (2usize..10).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n, 1u64..20), 0..(2 * n));
        let spine = proptest::collection::vec(1u64..20, n - 1);
        (Just(n), spine, extra).prop_map(move |(n, spine, extra)| {
            let mut g = CallGraph::with_nodes((0..n).map(|i| format!("f{i}")));
            // Spine guarantees reachability from the root.
            for (i, count) in spine.into_iter().enumerate() {
                g.add_arc(NodeId::new(i as u32), NodeId::new(i as u32 + 1), count);
            }
            for (a, b, count) in extra {
                if a < b {
                    g.add_arc(NodeId::new(a as u32), NodeId::new(b as u32), count);
                }
            }
            g
        })
    })
}

fn reaches(g: &CallGraph, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if std::mem::replace(&mut seen[v.index()], true) {
            continue;
        }
        for &a in g.out_arcs(v) {
            stack.push(g.arc(a).to);
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tarjan's components equal the naive mutual-reachability relation,
    /// and the topological numbering descends along inter-component arcs.
    #[test]
    fn tarjan_matches_reachability_model(g in arb_graph()) {
        let scc = SccResult::analyze(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                let same = a == b || (reaches(&g, a, b) && reaches(&g, b, a));
                prop_assert_eq!(scc.comp(a) == scc.comp(b), same, "{} {}", a, b);
            }
        }
        for (_, arc) in g.arcs() {
            if scc.comp(arc.from) != scc.comp(arc.to) {
                prop_assert!(scc.topo_number(arc.from) > scc.topo_number(arc.to));
            }
        }
        // Components partition the nodes.
        let total: usize = scc.comps().map(|c| scc.members(c).len()).sum();
        prop_assert_eq!(total, g.node_count());
    }

    /// Propagation invariants that hold on any graph:
    /// * a component's descendant time equals the flows its members
    ///   received;
    /// * flows out of a component never exceed its total;
    /// * intra-component arcs carry nothing.
    #[test]
    fn propagation_invariants(g in arb_graph()) {
        let scc = SccResult::analyze(&g);
        let self_times: Vec<f64> =
            (0..g.node_count()).map(|i| (i as f64 + 1.0) * 10.0).collect();
        let p = propagate(&g, &scc, &self_times);
        for comp in scc.comps() {
            let member_desc: f64 =
                scc.members(comp).iter().map(|&m| p.node_desc(m)).sum();
            prop_assert!((member_desc - p.comp_desc(comp)).abs() < 1e-9);
            // Total outflow <= comp total (equality only when every
            // external call into the component propagates).
            let outflow: f64 = g
                .arcs()
                .filter(|(_, a)| {
                    scc.comp(a.to) == comp && scc.comp(a.from) != comp
                })
                .map(|(id, _)| p.arc_flow(id))
                .sum();
            prop_assert!(outflow <= p.comp_total(comp) + 1e-9);
        }
        for (id, arc) in g.arcs() {
            if scc.comp(arc.from) == scc.comp(arc.to) {
                prop_assert_eq!(p.arc_flow(id), 0.0);
            }
            prop_assert!(p.arc_self_flow(id) >= 0.0);
            prop_assert!(p.arc_desc_flow(id) >= 0.0);
        }
    }

    /// On a single-root DAG where every call is dynamic, the root's total
    /// equals the whole program: time is conserved up the graph.
    #[test]
    fn dag_conservation(g in arb_dag()) {
        let scc = SccResult::analyze(&g);
        let self_times: Vec<f64> =
            (0..g.node_count()).map(|i| (i as f64 + 1.0) * 7.0).collect();
        let total: f64 = self_times.iter().sum();
        let p = propagate(&g, &scc, &self_times);
        let root = NodeId::new(0);
        prop_assert!((p.node_total(root) - total).abs() < 1e-6,
            "root {} vs total {}", p.node_total(root), total);
    }

    /// Greedy cycle breaking with a generous bound always succeeds, and
    /// the exact search never removes more traversals than greedy.
    #[test]
    fn cycle_breaking_terminates_and_exact_is_optimal(g in arb_graph()) {
        let bound = g.arc_count() + 1;
        let greedy = break_cycles_greedy(&g, bound);
        prop_assert!(greedy.complete);
        prop_assert!(is_propagation_acyclic(&g.without_arcs(&greedy.removed)));
        if let Some(exact) = break_cycles_exact(&g, bound) {
            prop_assert!(exact.complete);
            prop_assert!(exact.count_removed <= greedy.count_removed);
            prop_assert!(is_propagation_acyclic(&g.without_arcs(&exact.removed)));
        }
    }

    /// `without_arcs` only ever removes what it is told: node set and the
    /// other arcs survive with their counts.
    #[test]
    fn without_arcs_is_surgical(g in arb_graph()) {
        let victims: Vec<(NodeId, NodeId)> = g
            .arcs()
            .take(2)
            .map(|(_, a)| (a.from, a.to))
            .collect();
        let cut = g.without_arcs(&victims);
        prop_assert_eq!(cut.node_count(), g.node_count());
        for (_, arc) in g.arcs() {
            let removed = victims.contains(&(arc.from, arc.to));
            match cut.arc_between(arc.from, arc.to) {
                Some(id) => {
                    prop_assert!(!removed);
                    prop_assert_eq!(cut.arc(id).count, arc.count);
                }
                None => prop_assert!(removed),
            }
        }
    }
}
