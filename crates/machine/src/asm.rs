//! A small textual assembly language for workload programs.
//!
//! Workloads can be written as text and parsed into a [`Program`]:
//!
//! ```
//! use graphprof_machine::asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::parse(
//!     r#"
//!     ; the motivating shape: an abstraction used from two places
//!     routine main {
//!         call producer
//!         call consumer
//!     }
//!     routine producer { loop 10 { call buffer } }
//!     routine consumer { loop 20 { call buffer } }
//!     noprofile routine buffer { work 100 }
//!     entry main
//!     "#,
//! )?;
//! assert_eq!(program.routines().len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! Grammar (comments run from `;` to end of line):
//!
//! ```text
//! program  := item*
//! item     := ["noprofile"] "routine" IDENT "{" stmt* "}"
//!           | "entry" IDENT
//! stmt     := "work" NUMBER
//!           | "call" IDENT
//!           | "calli" NUMBER
//!           | "setslot" NUMBER "," IDENT
//!           | "loop" NUMBER "{" stmt* "}"
//!           | "setcounter" NUMBER "," NUMBER
//!           | "callwhile" NUMBER "," IDENT
//!           | "ret" | "halt"
//! ```

use crate::error::{AsmError, CompileError};
use crate::program::{Program, Routine, Stmt};

/// Parses assembly text into a [`Program`].
///
/// The entry point defaults to `main` (or the first routine) when no
/// `entry` directive appears, matching [`Program::builder`].
///
/// # Errors
///
/// Returns an [`AsmError`] with a line/column position for syntax errors,
/// and wraps semantic errors (unknown routines, duplicates) from
/// [`Program::new`] with the position of the end of input.
pub fn parse(source: &str) -> Result<Program, AsmError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program(source)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    Ident(String),
    Number(u32),
    LBrace,
    RBrace,
    Comma,
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokenKind,
    line: usize,
    col: usize,
}

fn lex(source: &str) -> Result<Vec<Token>, AsmError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| {
            let c = chars.next().expect("peeked");
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(&mut chars);
            }
            ';' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump(&mut chars);
                }
            }
            '{' => {
                bump(&mut chars);
                tokens.push(Token { kind: TokenKind::LBrace, line: tl, col: tc });
            }
            '}' => {
                bump(&mut chars);
                tokens.push(Token { kind: TokenKind::RBrace, line: tl, col: tc });
            }
            ',' => {
                bump(&mut chars);
                tokens.push(Token { kind: TokenKind::Comma, line: tl, col: tc });
            }
            '0'..='9' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        if c != '_' {
                            text.push(c);
                        }
                        bump(&mut chars);
                    } else {
                        break;
                    }
                }
                let value = text.parse::<u32>().map_err(|_| AsmError {
                    line: tl,
                    col: tc,
                    message: format!("number `{text}` does not fit in 32 bits"),
                })?;
                tokens.push(Token { kind: TokenKind::Number(value), line: tl, col: tc });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        bump(&mut chars);
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Ident(text), line: tl, col: tc });
            }
            other => {
                return Err(AsmError {
                    line: tl,
                    col: tc,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, token: &Token, message: impl Into<String>) -> AsmError {
        AsmError { line: token.line, col: token.col, message: message.into() }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, AsmError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Ident(name) => Ok(name),
            _ => Err(self.error(&t, format!("expected {what}"))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<u32, AsmError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Number(n) => Ok(n),
            _ => Err(self.error(&t, format!("expected {what}"))),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), AsmError> {
        let t = self.advance();
        if t.kind == kind {
            Ok(())
        } else {
            Err(self.error(&t, format!("expected {what}")))
        }
    }

    fn program(&mut self, source: &str) -> Result<Program, AsmError> {
        let mut routines = Vec::new();
        let mut entry: Option<String> = None;
        loop {
            let t = self.advance();
            match &t.kind {
                TokenKind::Eof => break,
                TokenKind::Ident(word) if word == "routine" => {
                    routines.push(self.routine(true)?);
                }
                TokenKind::Ident(word) if word == "noprofile" => {
                    let next = self.advance();
                    match &next.kind {
                        TokenKind::Ident(w) if w == "routine" => {
                            routines.push(self.routine(false)?);
                        }
                        _ => return Err(self.error(&next, "expected `routine` after `noprofile`")),
                    }
                }
                TokenKind::Ident(word) if word == "entry" => {
                    let name = self.expect_ident("entry routine name")?;
                    if entry.replace(name).is_some() {
                        return Err(self.error(&t, "duplicate `entry` directive"));
                    }
                }
                _ => {
                    return Err(
                        self.error(&t, "expected `routine`, `noprofile routine`, or `entry`")
                    )
                }
            }
        }
        let entry = entry.unwrap_or_else(|| {
            if routines.iter().any(|r: &Routine| r.name() == "main") {
                "main".to_string()
            } else {
                routines.first().map(|r| r.name().to_string()).unwrap_or_default()
            }
        });
        let last_line = source.lines().count().max(1);
        Program::new(routines, entry).map_err(|e: CompileError| AsmError {
            line: last_line,
            col: 1,
            message: e.to_string(),
        })
    }

    fn routine(&mut self, profiled: bool) -> Result<Routine, AsmError> {
        let name = self.expect_ident("routine name")?;
        self.expect(TokenKind::LBrace, "`{` to open routine body")?;
        let body = self.block()?;
        Ok(Routine::new(name, body, profiled))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, AsmError> {
        let mut stmts = Vec::new();
        loop {
            let t = self.advance();
            match &t.kind {
                TokenKind::RBrace => return Ok(stmts),
                TokenKind::Eof => return Err(self.error(&t, "unterminated block: expected `}`")),
                TokenKind::Ident(word) => match word.as_str() {
                    "work" => stmts.push(Stmt::Work(self.expect_number("cycle count")?)),
                    "call" => stmts.push(Stmt::Call(self.expect_ident("routine name")?)),
                    "calli" => {
                        let slot = self.expect_number("slot index")?;
                        let slot = u8::try_from(slot)
                            .map_err(|_| self.error(&t, "slot index out of range"))?;
                        stmts.push(Stmt::CallIndirect(slot));
                    }
                    "setslot" => {
                        let slot = self.expect_number("slot index")?;
                        let slot = u8::try_from(slot)
                            .map_err(|_| self.error(&t, "slot index out of range"))?;
                        self.expect(TokenKind::Comma, "`,` between slot and routine")?;
                        let name = self.expect_ident("routine name")?;
                        stmts.push(Stmt::SetSlot(slot, name));
                    }
                    "loop" => {
                        let count = self.expect_number("iteration count")?;
                        self.expect(TokenKind::LBrace, "`{` to open loop body")?;
                        let body = self.block()?;
                        stmts.push(Stmt::Loop { count, body });
                    }
                    "setcounter" => {
                        let reg = self.expect_number("register index")?;
                        let reg = u8::try_from(reg)
                            .map_err(|_| self.error(&t, "register index out of range"))?;
                        self.expect(TokenKind::Comma, "`,` between register and value")?;
                        let value = self.expect_number("counter value")?;
                        stmts.push(Stmt::SetCounter(reg, value));
                    }
                    "callwhile" => {
                        let reg = self.expect_number("register index")?;
                        let reg = u8::try_from(reg)
                            .map_err(|_| self.error(&t, "register index out of range"))?;
                        self.expect(TokenKind::Comma, "`,` between register and routine")?;
                        let name = self.expect_ident("routine name")?;
                        stmts.push(Stmt::CallWhile(reg, name));
                    }
                    "ret" => stmts.push(Stmt::Ret),
                    "halt" => stmts.push(Stmt::Halt),
                    other => return Err(self.error(&t, format!("unknown statement `{other}`"))),
                },
                _ => return Err(self.error(&t, "expected a statement or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Stmt;

    #[test]
    fn parses_minimal_program() {
        let p = parse("routine main { work 10 }").unwrap();
        assert_eq!(p.entry(), "main");
        assert_eq!(p.routines()[0].body(), &[Stmt::Work(10)]);
    }

    #[test]
    fn parses_all_statement_forms() {
        let p = parse(
            "routine main {
                work 1
                call f
                setslot 2, f
                calli 2
                loop 3 { call f }
                ret
                halt
             }
             routine f { work 1 }",
        )
        .unwrap();
        let body = p.routines()[0].body();
        assert_eq!(body.len(), 7);
        assert!(matches!(&body[4], Stmt::Loop { count: 3, .. }));
    }

    #[test]
    fn entry_directive_overrides_default() {
        let p = parse("routine a { work 1 } routine b { work 2 } entry b").unwrap();
        assert_eq!(p.entry(), "b");
    }

    #[test]
    fn noprofile_routine_flag() {
        let p = parse("routine main { call lib } noprofile routine lib { work 1 }").unwrap();
        assert!(p.routines()[0].profiled());
        assert!(!p.routines()[1].profiled());
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let p = parse("; heading comment\nroutine main { work 1_000 ; inline comment\n }").unwrap();
        assert_eq!(p.routines()[0].body(), &[Stmt::Work(1000)]);
    }

    #[test]
    fn error_positions_point_at_problem() {
        let err = parse("routine main {\n  wurk 10\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("wurk"));
    }

    #[test]
    fn unterminated_block_is_reported() {
        let err = parse("routine main { work 1").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unknown_call_target_is_reported() {
        let err = parse("routine main { call ghost }").unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn duplicate_entry_directive_is_rejected() {
        let err = parse("routine a { work 1 } entry a entry a").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn stray_character_is_rejected_with_position() {
        let err = parse("routine main { work 1 } #").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn huge_number_is_rejected() {
        let err = parse("routine main { work 99999999999 }").unwrap_err();
        assert!(err.message.contains("32 bits"));
    }

    #[test]
    fn parsed_program_compiles_and_runs() {
        use crate::{CompileOptions, Machine, NoHooks};
        let p = parse(
            "routine main { loop 5 { call leaf } }
             routine leaf { work 10 }",
        )
        .unwrap();
        let exe = p.compile(&CompileOptions::default()).unwrap();
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        assert!(summary.halted);
        let truth = m.ground_truth().unwrap();
        assert_eq!(truth.routine("leaf").unwrap().calls, 5);
    }
}
