//! The instruction set of the profiling substrate machine.
//!
//! The ISA is deliberately small but has everything the gprof environment
//! needs: computation that occupies the program counter ([`Instruction::Work`]),
//! direct and indirect calls (indirect calls model the paper's "functional
//! parameters and functional variables", which are invisible to static call
//! graph discovery), loops via a decrement-and-branch instruction, and the
//! two instrumentation prologue instructions the "compiler" can insert:
//! [`Instruction::Mcount`] (gprof-style arc recording) and
//! [`Instruction::CountCall`] (prof-style plain counters).

use std::fmt;

/// Number of general-purpose registers. Loops use one register per nesting
/// level, so this bounds loop nesting depth. Registers are saved across
/// calls (caller-saved by the hardware), so a callee's loops never disturb
/// its caller's.
pub const NUM_REGS: usize = 8;

/// Number of global counter registers. Unlike general registers, counters
/// are *not* saved across calls: they hold budgets shared by every
/// activation, which is what lets conditional calls express terminating
/// recursion.
pub const NUM_COUNTERS: usize = 8;

/// Number of indirect-call slots (function-pointer cells).
pub const NUM_SLOTS: usize = 16;

/// An address in the machine's text segment.
///
/// Addresses are 32-bit, like the "expansive" address spaces the
/// retrospective celebrates. Address `0` is reserved as the null address
/// (used for "spontaneous" callers); executables are laid out from a nonzero
/// base, `0x1000` by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// The null address: never a valid code location.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw 32-bit value.
    pub const fn new(raw: u32) -> Self {
        Addr(raw)
    }

    /// Returns the raw 32-bit value.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns `true` for the reserved null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address offset by `delta` bytes.
    ///
    /// # Panics
    ///
    /// Panics on 32-bit overflow; text segments are far smaller than 4 GiB.
    pub fn offset(self, delta: u32) -> Addr {
        Addr(self.0.checked_add(delta).expect("address overflow"))
    }

    /// Byte distance from `base` to `self`.
    ///
    /// Returns `None` if `self < base`.
    pub fn checked_sub(self, base: Addr) -> Option<u32> {
        self.0.checked_sub(base.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(raw: u32) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u32 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

/// A single machine instruction.
///
/// Every variant has a fixed byte encoding, defined in [`crate::encode`];
/// sizes do not depend on operand values, so layout is a single pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Busy-loop for the given number of cycles. The program counter stays
    /// at this instruction for the whole duration, so clock-tick samples
    /// land here — this is how workloads model "computation".
    Work(u32),
    /// Push a return address and jump to the target.
    Call(Addr),
    /// Call through an indirect slot (a functional parameter/variable).
    /// Invisible to static call graph discovery.
    CallIndirect(u8),
    /// Store a routine address into an indirect slot.
    SetSlot(u8, Addr),
    /// Pop a return address and jump to it. Returning with an empty call
    /// stack halts the machine (the entry routine "returning to the OS").
    Ret,
    /// Load an immediate into a (per-frame) register.
    SetReg(u8, u32),
    /// Decrement the register; if it is still nonzero, jump to the target.
    /// Decrementing a zero register leaves it at zero and falls through.
    DecJnz(u8, Addr),
    /// Load an immediate into a global counter register.
    SetCtr(u8, u32),
    /// Decrement the global counter; if it is still nonzero, jump to the
    /// target. Decrementing a zero counter leaves it at zero and falls
    /// through. Because counters survive calls and returns, this is the
    /// machine's terminating-recursion primitive.
    DecCtrJnz(u8, Addr),
    /// Unconditional jump.
    Jmp(Addr),
    /// The gprof monitoring-routine prologue hook. Executing it invokes
    /// [`ProfilingHooks::on_mcount`](crate::ProfilingHooks::on_mcount) with
    /// the caller's return address and the containing routine's entry
    /// address; the hook's returned cycle cost is charged to the clock.
    Mcount,
    /// The prof(1)-style prologue hook: a plain per-routine counter bump.
    CountCall,
    /// Do nothing for one cycle.
    Nop,
    /// Stop the machine.
    Halt,
}

impl Instruction {
    /// A short mnemonic for diagnostics and disassembly listings.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Instruction::Work(_) => "work",
            Instruction::Call(_) => "call",
            Instruction::CallIndirect(_) => "calli",
            Instruction::SetSlot(..) => "setslot",
            Instruction::Ret => "ret",
            Instruction::SetReg(..) => "setreg",
            Instruction::DecJnz(..) => "decjnz",
            Instruction::SetCtr(..) => "setctr",
            Instruction::DecCtrJnz(..) => "decctrjnz",
            Instruction::Jmp(_) => "jmp",
            Instruction::Mcount => "mcount",
            Instruction::CountCall => "countcall",
            Instruction::Nop => "nop",
            Instruction::Halt => "halt",
        }
    }

    /// Returns `true` if this instruction transfers control to a statically
    /// known callee (used by static call graph discovery).
    pub fn direct_call_target(self) -> Option<Addr> {
        match self {
            Instruction::Call(target) => Some(target),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Work(n) => write!(f, "work {n}"),
            Instruction::Call(a) => write!(f, "call {a}"),
            Instruction::CallIndirect(s) => write!(f, "calli {s}"),
            Instruction::SetSlot(s, a) => write!(f, "setslot {s}, {a}"),
            Instruction::Ret => write!(f, "ret"),
            Instruction::SetReg(r, v) => write!(f, "setreg r{r}, {v}"),
            Instruction::DecJnz(r, a) => write!(f, "decjnz r{r}, {a}"),
            Instruction::SetCtr(c, v) => write!(f, "setctr c{c}, {v}"),
            Instruction::DecCtrJnz(c, a) => write!(f, "decctrjnz c{c}, {a}"),
            Instruction::Jmp(a) => write!(f, "jmp {a}"),
            Instruction::Mcount => write!(f, "mcount"),
            Instruction::CountCall => write!(f, "countcall"),
            Instruction::Nop => write!(f, "nop"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_null_is_reserved() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(0x1000).is_null());
    }

    #[test]
    fn addr_offset_and_sub() {
        let a = Addr::new(0x1000);
        assert_eq!(a.offset(5), Addr::new(0x1005));
        assert_eq!(a.offset(5).checked_sub(a), Some(5));
        assert_eq!(a.checked_sub(a.offset(1)), None);
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn addr_offset_overflow_panics() {
        Addr::new(u32::MAX).offset(1);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0x1000).to_string(), "0x1000");
        assert_eq!(format!("{:x}", Addr::new(0xabcd)), "abcd");
    }

    #[test]
    fn addr_conversions_round_trip() {
        let a: Addr = 0x2345u32.into();
        let raw: u32 = a.into();
        assert_eq!(raw, 0x2345);
    }

    #[test]
    fn direct_call_target_only_for_call() {
        assert_eq!(Instruction::Call(Addr::new(7)).direct_call_target(), Some(Addr::new(7)));
        assert_eq!(Instruction::CallIndirect(0).direct_call_target(), None);
        assert_eq!(Instruction::Jmp(Addr::new(7)).direct_call_target(), None);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(Instruction::Work(3).to_string(), "work 3");
        assert_eq!(Instruction::Call(Addr::new(0x1000)).to_string(), "call 0x1000");
        assert_eq!(Instruction::SetReg(2, 9).to_string(), "setreg r2, 9");
        assert_eq!(Instruction::Mcount.to_string(), "mcount");
    }
}
