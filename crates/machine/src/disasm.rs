//! Disassembly listings of executable text.
//!
//! Used by the `gpx-dis` tool and handy in tests and examples: a
//! symbol-annotated, address-ordered listing of every instruction, in the
//! same left-to-right form the assembler accepts.

use std::fmt::Write as _;

use crate::error::DecodeError;
use crate::image::Executable;
use crate::isa::Instruction;

/// Renders a full disassembly listing of the executable.
///
/// Each routine is introduced by its symbol line (`name: addr size
/// [profiled]`); call targets are annotated with the callee's name when
/// it is a known routine entry.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the text is malformed.
pub fn disassemble(exe: &Executable) -> Result<String, DecodeError> {
    let mut out = String::new();
    let _ = writeln!(out, "text {}..{} entry {}", exe.base(), exe.end(), exe.entry());
    for (id, sym) in exe.symbols().iter() {
        let _ = writeln!(
            out,
            "\n{}: {} +{}{}",
            sym.name(),
            sym.addr(),
            sym.size(),
            if sym.profiled() { " [profiled]" } else { "" },
        );
        for (addr, inst) in exe.disassemble_symbol(id)? {
            let annotation = match annotated_target(inst) {
                Some(target) => exe
                    .symbols()
                    .lookup_pc(target)
                    .filter(|(_, s)| s.addr() == target)
                    .map(|(_, s)| format!("  ; {}", s.name()))
                    .unwrap_or_default(),
                None => String::new(),
            };
            let _ = writeln!(out, "  {addr}  {inst}{annotation}");
        }
    }
    Ok(out)
}

fn annotated_target(inst: Instruction) -> Option<crate::isa::Addr> {
    match inst {
        Instruction::Call(t) | Instruction::SetSlot(_, t) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CompileOptions, Program};

    fn sample() -> Executable {
        let mut b = Program::builder();
        b.routine("main", |r| r.work(10).call("leaf").set_slot(0, "leaf"));
        b.noprofile_routine("leaf", |r| r.work(50));
        b.build().unwrap().compile(&CompileOptions::profiled()).unwrap()
    }

    #[test]
    fn listing_contains_every_routine_and_instruction() {
        let text = disassemble(&sample()).unwrap();
        assert!(text.contains("main: 0x1000"));
        assert!(text.contains("[profiled]"));
        assert!(text.contains("leaf:"));
        assert!(text.contains("mcount"));
        assert!(text.contains("work 10"));
        assert!(text.contains("work 50"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn call_targets_are_annotated_with_names() {
        let text = disassemble(&sample()).unwrap();
        let call_line = text.lines().find(|l| l.contains("call 0x")).unwrap();
        assert!(call_line.ends_with("; leaf"), "{call_line}");
        let slot_line = text.lines().find(|l| l.contains("setslot")).unwrap();
        assert!(slot_line.ends_with("; leaf"), "{slot_line}");
    }

    #[test]
    fn unprofiled_routine_is_not_marked() {
        let text = disassemble(&sample()).unwrap();
        let leaf_header = text.lines().find(|l| l.starts_with("leaf:")).unwrap();
        assert!(!leaf_header.contains("[profiled]"));
    }
}
