//! The cycle-accurate interpreter with profiling hooks.
//!
//! The interpreter reproduces the two measurement channels of §3:
//!
//! * **Execution counts / arcs** — executing an [`Instruction::Mcount`]
//!   prologue invokes [`ProfilingHooks::on_mcount`] with exactly the two
//!   addresses the paper's monitoring routine discovers "in a
//!   machine-dependent fashion": the caller's return address (the call
//!   site) and the entry address of the routine whose prologue is running
//!   (the callee). If the call stack is empty the caller address is the
//!   null address — the "spontaneous" case. The hook returns the number of
//!   cycles the monitoring routine took, and the interpreter charges them
//!   to the clock *inside the callee's prologue*, so profiling overhead
//!   perturbs the measured program the same way it did in 1982.
//!
//! * **Execution times** — when `cycles_per_tick` is nonzero, every clock
//!   tick delivers the current program counter to
//!   [`ProfilingHooks::on_tick`], which the monitor uses to maintain the PC
//!   histogram. Sampling costs nothing here, matching the paper's
//!   observation that the kernel's histogram increment "had an almost
//!   negligible overhead".
//!
//! Independently of the hooks, the interpreter keeps exact ground-truth
//! accounting (see [`GroundTruth`]) for scoring the profiler's estimates.

use crate::cost::CostModel;
use crate::error::InterpError;
use crate::image::{Executable, SymbolId};
use crate::isa::{Addr, Instruction, NUM_COUNTERS, NUM_REGS, NUM_SLOTS};
use crate::truth::{ArcTruth, GroundTruth, RoutineTruth};

use std::collections::HashMap;

/// Receiver of the machine's profiling events.
///
/// The default implementations ignore every event and charge no cycles, so
/// an uninstrumented run can pass [`NoHooks`].
pub trait ProfilingHooks {
    /// The gprof monitoring routine: called from a profiled routine's
    /// prologue with the caller's return address (`from_pc`; null when the
    /// activation is spontaneous) and the callee's entry address
    /// (`self_pc`). Returns the cycle cost to charge to the clock.
    fn on_mcount(&mut self, from_pc: Addr, self_pc: Addr) -> u64 {
        let _ = (from_pc, self_pc);
        0
    }

    /// The prof(1)-style counter bump for the routine entered at `self_pc`.
    /// Returns the cycle cost to charge to the clock.
    fn on_count_call(&mut self, self_pc: Addr) -> u64 {
        let _ = self_pc;
        0
    }

    /// `ticks` clock ticks elapsed while the program counter was at `pc`.
    fn on_tick(&mut self, pc: Addr, ticks: u64) {
        let _ = (pc, ticks);
    }

    /// A buffered run of tick samples, in delivery order.
    ///
    /// The machine groups tick events into batches of
    /// [`MachineConfig::tick_batch`] so samplers can recognize the bulk
    /// case (see `Histogram::record_batch` in the monitor crate). The
    /// default implementation folds the batch through
    /// [`ProfilingHooks::on_tick`] in order, so implementing only
    /// `on_tick` remains fully correct: batching changes *when* samples
    /// are handed over, never their content or order.
    fn on_tick_batch(&mut self, samples: &[(Addr, u64)]) {
        for &(pc, ticks) in samples {
            self.on_tick(pc, ticks);
        }
    }

    /// Whether the sampler wants complete call stacks at every tick.
    ///
    /// The retrospective: "Modern profilers solve both these problems by
    /// periodically gathering not just isolated program counter samples
    /// and isolated call graph arcs, but complete call stacks. [...]
    /// Gathering complete call stacks depends on being able to find the
    /// return addresses all the way up the stack" — which this machine's
    /// frame layout provides, as the debugging convention did in 1982.
    /// Stack delivery costs the interpreter a buffer walk per tick, so it
    /// is opt-in.
    fn wants_stack_samples(&self) -> bool {
        false
    }

    /// A complete stack sample: `stack[0]` is the current program
    /// counter, followed by the return addresses of every live frame from
    /// innermost to outermost. Only delivered when
    /// [`ProfilingHooks::wants_stack_samples`] returns `true`.
    fn on_stack_sample(&mut self, stack: &[Addr], ticks: u64) {
        let _ = (stack, ticks);
    }
}

/// Hooks that ignore everything: a plain, unprofiled run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ProfilingHooks for NoHooks {}

/// Configuration of a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cycles between clock ticks; `0` disables sampling. The paper's
    /// environment ticked at 1/60 s — the profiler chooses a value and
    /// records it in the profile file so times can be converted to seconds.
    pub cycles_per_tick: u64,
    /// Maximum call stack depth before [`InterpError::StackOverflow`].
    pub max_call_depth: usize,
    /// Per-instruction cycle costs.
    pub cost: CostModel,
    /// Whether to collect exact ground-truth accounting (small constant
    /// overhead per call; disable for the largest benchmark runs).
    pub collect_ground_truth: bool,
    /// Predecode policy: `0` re-decodes the text on every fetch (the
    /// original fetch-decode loop), `1` decodes each routine once into a
    /// per-pc cache before execution, and `N > 1` fans the predecode
    /// pass out over `N` workers. The cache changes only *when* decoding
    /// happens, never *what* executes: the cycle/cost model, `mcount`
    /// accounting, and every fault are bit-identical across settings
    /// (jumps into the middle of an instruction fall back to the
    /// on-demand decoder, which reproduces the fetch-decode behavior
    /// exactly).
    pub predecode_jobs: usize,
    /// Tick-delivery batch size: the machine buffers up to this many
    /// `(pc, ticks)` samples before handing them to
    /// [`ProfilingHooks::on_tick_batch`]. `0` or `1` delivers every tick
    /// immediately. Buffered samples are flushed in order whenever a run
    /// slice ends (halt, pause, or fault) and whenever the hooks request
    /// stack samples, so batching never changes what a sampler observes —
    /// only how many hook crossings it costs.
    pub tick_batch: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cycles_per_tick: 0,
            max_call_depth: 1 << 16,
            cost: CostModel::classic(),
            collect_ground_truth: true,
            predecode_jobs: 1,
            tick_batch: 64,
        }
    }
}

/// Summary of a completed [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Whether the program halted (always `true` for `run`).
    pub halted: bool,
    /// Final clock value in cycles.
    pub clock: u64,
    /// Number of instructions executed.
    pub instructions: u64,
}

/// Result of a bounded [`Machine::run_for`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program halted within the slice.
    Halted,
    /// The cycle budget was exhausted; the machine can be resumed.
    Paused,
}

#[derive(Debug, Clone)]
struct Frame {
    return_pc: Addr,
    /// Symbol we return into (caller's routine) for self-time accounting.
    caller_sym: Option<SymbolId>,
    /// Symbol entered by the call, for on-stack accounting.
    callee_sym: Option<SymbolId>,
    /// Ground-truth arc key `(from_pc, callee_entry)`.
    arc_key: Option<(Addr, Addr)>,
    enter_clock: u64,
    /// The caller's register file, restored on return (registers are
    /// caller-saved by the hardware so callee loops never disturb them).
    saved_regs: [u32; NUM_REGS],
}

#[derive(Debug, Clone, Default)]
struct TruthCollector {
    calls: Vec<u64>,
    self_cycles: Vec<u64>,
    total_cycles: Vec<u64>,
    on_stack: Vec<u32>,
    first_enter: Vec<u64>,
    arcs: HashMap<(Addr, Addr), (u64, u64)>,
}

impl TruthCollector {
    fn new(n: usize) -> Self {
        TruthCollector {
            calls: vec![0; n],
            self_cycles: vec![0; n],
            total_cycles: vec![0; n],
            on_stack: vec![0; n],
            first_enter: vec![0; n],
            arcs: HashMap::new(),
        }
    }

    fn enter(&mut self, sym: SymbolId, clock: u64) {
        let i = sym.index();
        self.calls[i] += 1;
        if self.on_stack[i] == 0 {
            self.first_enter[i] = clock;
        }
        self.on_stack[i] += 1;
    }

    fn exit(&mut self, sym: SymbolId, clock: u64) {
        let i = sym.index();
        debug_assert!(self.on_stack[i] > 0, "unbalanced routine exit");
        self.on_stack[i] -= 1;
        if self.on_stack[i] == 0 {
            self.total_cycles[i] += clock - self.first_enter[i];
        }
    }
}

/// The virtual machine: a loaded executable plus execution state.
///
/// ```
/// use graphprof_machine::{CompileOptions, Machine, NoHooks, Program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Program::builder();
/// b.routine("main", |r| r.call_n("leaf", 3));
/// b.routine("leaf", |r| r.work(100));
/// let exe = b.build()?.compile(&CompileOptions::default())?;
/// let mut machine = Machine::new(exe);
/// let summary = machine.run(&mut NoHooks)?;
/// assert!(summary.halted);
/// // The machine keeps exact ground truth alongside execution.
/// let truth = machine.ground_truth().expect("enabled by default");
/// assert_eq!(truth.routine("leaf").unwrap().calls, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    exe: Executable,
    config: MachineConfig,
    pc: Addr,
    regs: [u32; NUM_REGS],
    counters: [u32; NUM_COUNTERS],
    slots: [u32; NUM_SLOTS],
    stack: Vec<Frame>,
    clock: u64,
    instructions: u64,
    halted: bool,
    cur_sym: Option<SymbolId>,
    truth: Option<TruthCollector>,
    /// Scratch buffer for stack-sample delivery.
    stack_scratch: Vec<Addr>,
    /// Pending tick samples awaiting batched delivery (see
    /// [`MachineConfig::tick_batch`]).
    tick_buf: Vec<(Addr, u64)>,
    /// Predecoded instructions, indexed by text offset. `Some` exactly at
    /// the offsets where linear disassembly from a symbol boundary lands;
    /// everything else (gaps, mid-instruction addresses, undecodable
    /// tails) falls back to the on-demand decoder. Empty when
    /// `predecode_jobs == 0`.
    decoded: Vec<Option<(Instruction, u32)>>,
}

impl Machine {
    /// Loads an executable with the default configuration.
    pub fn new(exe: Executable) -> Self {
        Machine::with_config(exe, MachineConfig::default())
    }

    /// Loads an executable with an explicit configuration.
    pub fn with_config(exe: Executable, config: MachineConfig) -> Self {
        let truth = config.collect_ground_truth.then(|| TruthCollector::new(exe.symbols().len()));
        let entry = exe.entry();
        let cur_sym = exe.symbols().lookup_pc(entry).map(|(id, _)| id);
        let decoded = predecode(&exe, config.predecode_jobs);
        let mut machine = Machine {
            exe,
            config,
            pc: entry,
            regs: [0; NUM_REGS],
            counters: [0; NUM_COUNTERS],
            slots: [0; NUM_SLOTS],
            stack: Vec::new(),
            clock: 0,
            instructions: 0,
            halted: false,
            cur_sym,
            truth,
            stack_scratch: Vec::new(),
            tick_buf: Vec::with_capacity(config.tick_batch.min(1 << 16)),
            decoded,
        };
        // The entry routine's activation is spontaneous: count it as one
        // call entered at clock zero.
        if let (Some(t), Some(sym)) = (machine.truth.as_mut(), cur_sym) {
            t.enter(sym, 0);
        }
        machine
    }

    /// The loaded executable.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// The active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current clock in cycles.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether the machine has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current call stack depth.
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }

    /// Current program counter.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Runs the program until it halts.
    ///
    /// Does not return if the program never halts; use [`Machine::run_for`]
    /// to bound execution.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on a run-time fault or if the machine had
    /// already halted.
    pub fn run<H: ProfilingHooks>(&mut self, hooks: &mut H) -> Result<RunSummary, InterpError> {
        if self.halted {
            return Err(InterpError::AlreadyHalted);
        }
        let mut result = Ok(());
        while !self.halted {
            if let Err(e) = self.step(hooks) {
                result = Err(e);
                break;
            }
        }
        // Ticks buffered up to (and including) a fault are still real
        // samples: flush before propagating so no profile data is lost.
        self.flush_ticks(hooks);
        result?;
        Ok(RunSummary { halted: true, clock: self.clock, instructions: self.instructions })
    }

    /// Runs for at most `cycles` additional cycles, then pauses.
    ///
    /// This is the primitive beneath the kernel-profiling control interface:
    /// a long-running system is executed in slices, and the profiler can be
    /// switched on and off or have its data extracted between slices.
    /// A multi-cycle instruction is never split, so the slice may overshoot
    /// by the length of one instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on a run-time fault or if the machine had
    /// already halted.
    pub fn run_for<H: ProfilingHooks>(
        &mut self,
        hooks: &mut H,
        cycles: u64,
    ) -> Result<RunStatus, InterpError> {
        if self.halted {
            return Err(InterpError::AlreadyHalted);
        }
        let deadline = self.clock.saturating_add(cycles);
        let mut result = Ok(());
        while !self.halted && self.clock < deadline {
            if let Err(e) = self.step(hooks) {
                result = Err(e);
                break;
            }
        }
        // Flush at every slice boundary so the control interface sees a
        // complete profile between slices (and after a fault).
        self.flush_ticks(hooks);
        result?;
        Ok(if self.halted { RunStatus::Halted } else { RunStatus::Paused })
    }

    /// Takes an exact accounting snapshot, closing open call frames at the
    /// current clock.
    ///
    /// Returns `None` when ground-truth collection is disabled.
    pub fn ground_truth(&self) -> Option<GroundTruth> {
        let t = self.truth.as_ref()?;
        let mut total = t.total_cycles.clone();
        let mut first = t.first_enter.clone();
        let mut on = t.on_stack.clone();
        // Close out every routine still on the stack.
        for (i, &count) in on.iter().enumerate() {
            if count > 0 {
                total[i] += self.clock - first[i];
                first[i] = self.clock;
            }
        }
        on.iter_mut().for_each(|c| *c = 0);
        let routines = self
            .exe
            .symbols()
            .iter()
            .map(|(id, sym)| RoutineTruth {
                name: sym.name().to_string(),
                entry: sym.addr(),
                calls: t.calls[id.index()],
                self_cycles: t.self_cycles[id.index()],
                total_cycles: total[id.index()],
            })
            .collect();
        let mut arcs: HashMap<(Addr, Addr), (u64, u64)> = t.arcs.clone();
        // Close out arcs with open frames.
        for frame in &self.stack {
            if let Some(key) = frame.arc_key {
                let entry = arcs.entry(key).or_insert((0, 0));
                entry.1 += self.clock - frame.enter_clock;
            }
        }
        let arcs = arcs
            .into_iter()
            .map(|((from_pc, callee), (count, cycles_under))| ArcTruth {
                from_pc,
                callee,
                count,
                cycles_under,
            })
            .collect();
        Some(GroundTruth::new(routines, arcs, self.clock))
    }

    /// Delivers any buffered tick samples, in order.
    fn flush_ticks<H: ProfilingHooks>(&mut self, hooks: &mut H) {
        if !self.tick_buf.is_empty() {
            hooks.on_tick_batch(&self.tick_buf);
            self.tick_buf.clear();
        }
    }

    /// Consumes `n` cycles with the program counter at `at_pc`, delivering
    /// any clock ticks that elapse to the sampler hook.
    fn consume<H: ProfilingHooks>(&mut self, hooks: &mut H, n: u64, at_pc: Addr) {
        if n == 0 {
            return;
        }
        let t = self.config.cycles_per_tick;
        // (clippy suggests checked_div; the explicit `t > 0` test reads as
        // "sampling enabled", which is the actual meaning of t == 0.)
        #[allow(clippy::manual_checked_ops)]
        if t > 0 {
            let before = self.clock / t;
            let after = (self.clock + n) / t;
            if after > before {
                let ticks = after - before;
                if hooks.wants_stack_samples() {
                    // Stack samples need the live stack, so they cannot be
                    // deferred; flush first to keep tick order intact.
                    self.flush_ticks(hooks);
                    hooks.on_tick(at_pc, ticks);
                    self.stack_scratch.clear();
                    self.stack_scratch.push(at_pc);
                    self.stack_scratch.extend(self.stack.iter().rev().map(|f| f.return_pc));
                    hooks.on_stack_sample(&self.stack_scratch, ticks);
                } else if self.config.tick_batch <= 1 {
                    hooks.on_tick(at_pc, ticks);
                } else {
                    self.tick_buf.push((at_pc, ticks));
                    if self.tick_buf.len() >= self.config.tick_batch {
                        self.flush_ticks(hooks);
                    }
                }
            }
        }
        self.clock += n;
        if let (Some(truth), Some(sym)) = (self.truth.as_mut(), self.cur_sym) {
            truth.self_cycles[sym.index()] += n;
        }
    }

    fn jump(&mut self, from: Addr, target: Addr) -> Result<(), InterpError> {
        if !self.exe.contains(target) {
            return Err(InterpError::BadJump { pc: from, target });
        }
        self.pc = target;
        self.cur_sym = self.exe.symbols().lookup_pc(target).map(|(id, _)| id);
        Ok(())
    }

    fn do_call<H: ProfilingHooks>(
        &mut self,
        hooks: &mut H,
        target: Addr,
        return_pc: Addr,
        cost: u64,
        at_pc: Addr,
    ) -> Result<(), InterpError> {
        if self.stack.len() >= self.config.max_call_depth {
            return Err(InterpError::StackOverflow {
                pc: at_pc,
                limit: self.config.max_call_depth,
            });
        }
        // The call's own cost is charged in the caller, before transfer.
        self.consume(hooks, cost, at_pc);
        let caller_sym = self.cur_sym;
        if !self.exe.contains(target) {
            return Err(InterpError::BadJump { pc: at_pc, target });
        }
        let callee_sym = self.exe.symbols().lookup_pc(target).map(|(id, _)| id);
        let arc_key = self.truth.is_some().then_some((return_pc, target));
        if let Some(truth) = self.truth.as_mut() {
            truth.arcs.entry((return_pc, target)).or_insert((0, 0)).0 += 1;
            if let Some(sym) = callee_sym {
                truth.enter(sym, self.clock);
            }
        }
        self.stack.push(Frame {
            return_pc,
            caller_sym,
            callee_sym,
            arc_key,
            enter_clock: self.clock,
            saved_regs: self.regs,
        });
        self.regs = [0; NUM_REGS];
        self.pc = target;
        self.cur_sym = callee_sym;
        Ok(())
    }

    /// Fetches the instruction at `pc`: a predecode-cache hit costs an
    /// index instead of a byte-level decode; misses (cache disabled,
    /// out-of-cache addresses, mid-instruction jumps) take the original
    /// fetch-decode path, so faults and results are identical either way.
    #[inline]
    fn fetch(&self, pc: Addr) -> Result<(Instruction, u32), InterpError> {
        if let Some(offset) = pc.checked_sub(self.exe.base()) {
            if let Some(&Some(hit)) = self.decoded.get(offset as usize) {
                return Ok(hit);
            }
        }
        Ok(self.exe.decode(pc)?)
    }

    /// Executes one instruction.
    fn step<H: ProfilingHooks>(&mut self, hooks: &mut H) -> Result<(), InterpError> {
        let pc = self.pc;
        let (inst, len) = self.fetch(pc)?;
        self.instructions += 1;
        let cost = self.config.cost;
        match inst {
            Instruction::Work(n) => {
                self.consume(hooks, u64::from(n), pc);
                self.pc = pc.offset(len);
            }
            Instruction::Call(target) => {
                self.do_call(hooks, target, pc.offset(len), cost.call, pc)?;
            }
            Instruction::CallIndirect(slot) => {
                let raw = self.slots[usize::from(slot)];
                if raw == 0 {
                    return Err(InterpError::NullSlot { pc, slot });
                }
                self.do_call(hooks, Addr::new(raw), pc.offset(len), cost.call_indirect, pc)?;
            }
            Instruction::SetSlot(slot, addr) => {
                self.consume(hooks, cost.set, pc);
                self.slots[usize::from(slot)] = addr.get();
                self.pc = pc.offset(len);
            }
            Instruction::Ret => {
                self.consume(hooks, cost.ret, pc);
                match self.stack.pop() {
                    Some(frame) => {
                        if let Some(truth) = self.truth.as_mut() {
                            if let Some(key) = frame.arc_key {
                                let e = truth.arcs.entry(key).or_insert((0, 0));
                                e.1 += self.clock - frame.enter_clock;
                            }
                            if let Some(sym) = frame.callee_sym {
                                truth.exit(sym, self.clock);
                            }
                        }
                        self.pc = frame.return_pc;
                        self.cur_sym = frame.caller_sym;
                        self.regs = frame.saved_regs;
                    }
                    None => {
                        // The entry routine returned to the "operating
                        // system": a clean halt.
                        self.finish_entry();
                        self.halted = true;
                    }
                }
            }
            Instruction::SetReg(reg, val) => {
                self.consume(hooks, cost.set, pc);
                self.regs[usize::from(reg)] = val;
                self.pc = pc.offset(len);
            }
            Instruction::DecJnz(reg, target) => {
                self.consume(hooks, cost.branch, pc);
                let r = &mut self.regs[usize::from(reg)];
                if *r > 0 {
                    *r -= 1;
                    if *r > 0 {
                        self.jump(pc, target)?;
                        return Ok(());
                    }
                }
                self.pc = pc.offset(len);
            }
            Instruction::SetCtr(ctr, val) => {
                self.consume(hooks, cost.set, pc);
                self.counters[usize::from(ctr)] = val;
                self.pc = pc.offset(len);
            }
            Instruction::DecCtrJnz(ctr, target) => {
                self.consume(hooks, cost.branch, pc);
                let c = &mut self.counters[usize::from(ctr)];
                if *c > 0 {
                    *c -= 1;
                    if *c > 0 {
                        self.jump(pc, target)?;
                        return Ok(());
                    }
                }
                self.pc = pc.offset(len);
            }
            Instruction::Jmp(target) => {
                self.consume(hooks, cost.branch, pc);
                self.jump(pc, target)?;
            }
            Instruction::Mcount => {
                let from_pc = self.stack.last().map(|f| f.return_pc).unwrap_or(Addr::NULL);
                let self_pc =
                    self.exe.symbols().lookup_pc(pc).map(|(_, sym)| sym.addr()).unwrap_or(pc);
                let monitor_cost = hooks.on_mcount(from_pc, self_pc);
                self.consume(hooks, monitor_cost, pc);
                self.pc = pc.offset(len);
            }
            Instruction::CountCall => {
                let self_pc =
                    self.exe.symbols().lookup_pc(pc).map(|(_, sym)| sym.addr()).unwrap_or(pc);
                let monitor_cost = hooks.on_count_call(self_pc);
                self.consume(hooks, monitor_cost, pc);
                self.pc = pc.offset(len);
            }
            Instruction::Nop => {
                self.consume(hooks, cost.nop, pc);
                self.pc = pc.offset(len);
            }
            Instruction::Halt => {
                self.finish_entry();
                self.halted = true;
            }
        }
        Ok(())
    }

    /// Closes the spontaneous entry activation in the ground truth when the
    /// machine halts cleanly via the entry routine's return. (Frames still
    /// open at a `halt` are closed by the `ground_truth` snapshot instead,
    /// since `halt` can fire at any depth.)
    fn finish_entry(&mut self) {
        if !self.stack.is_empty() {
            return;
        }
        let entry_sym = self.exe.symbols().lookup_pc(self.exe.entry()).map(|(id, _)| id);
        if let (Some(truth), Some(sym)) = (self.truth.as_mut(), entry_sym) {
            if truth.on_stack[sym.index()] > 0 {
                let clock = self.clock;
                truth.exit(sym, clock);
            }
        }
    }
}

/// Builds the predecode table: one linear-disassembly sweep per symbol,
/// recording `(Instruction, len)` at every offset the sweep lands on.
///
/// `jobs == 0` disables the cache entirely (every fetch decodes on
/// demand); `jobs == 1` sweeps serially; `jobs > 1` fans the sweeps out
/// over a worker pool — symbols are independent, and per-symbol results
/// are written back in symbol order, so the table is identical for any
/// job count. Sweeps stop quietly at undecodable bytes: those offsets
/// stay `None` and the on-demand path surfaces the fault at runtime,
/// exactly as fetch-decode would.
fn predecode(exe: &Executable, jobs: usize) -> Vec<Option<(Instruction, u32)>> {
    if jobs == 0 || exe.text().is_empty() {
        return Vec::new();
    }
    let symbols: Vec<(Addr, Addr)> =
        exe.symbols().iter().map(|(_, sym)| (sym.addr(), sym.end())).collect();
    let sweeps = graphprof_exec::parallel_map(jobs, &symbols, |_, &(start, end)| {
        predecode_sweep(exe, start, end)
    });
    let mut table = vec![None; exe.text().len()];
    for (offset, entry) in sweeps.into_iter().flatten() {
        table[offset] = Some(entry);
    }
    table
}

/// Linearly disassembles `[start, end)`, returning `(text offset, decoded
/// instruction)` pairs. Stops at the first decode error or when the
/// sweep would leave the text segment.
fn predecode_sweep(exe: &Executable, start: Addr, end: Addr) -> Vec<(usize, (Instruction, u32))> {
    let mut out = Vec::new();
    let mut pc = start;
    while pc < end && pc < exe.end() {
        let Some(offset) = pc.checked_sub(exe.base()) else { break };
        let Ok((inst, len)) = exe.decode(pc) else { break };
        out.push((offset as usize, (inst, len)));
        pc = pc.offset(len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CompileOptions, Program};

    fn compile(f: impl FnOnce(&mut crate::ProgramBuilder)) -> Executable {
        let mut b = Program::builder();
        f(&mut b);
        b.build().unwrap().compile(&CompileOptions::default()).unwrap()
    }

    fn compile_profiled(f: impl FnOnce(&mut crate::ProgramBuilder)) -> Executable {
        let mut b = Program::builder();
        f(&mut b);
        b.build().unwrap().compile(&CompileOptions::profiled()).unwrap()
    }

    #[test]
    fn straight_line_program_clock() {
        let exe = compile(|b| {
            b.routine("main", |r| r.work(100));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        // work(100) + ret(4)
        assert_eq!(summary.clock, 104);
        assert!(summary.halted);
        assert!(m.halted());
    }

    #[test]
    fn run_after_halt_is_an_error() {
        let exe = compile(|b| {
            b.routine("main", |r| r.work(1));
        });
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.run(&mut NoHooks).unwrap_err(), InterpError::AlreadyHalted);
    }

    #[test]
    fn calls_transfer_and_return() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call("leaf").work(10));
            b.routine("leaf", |r| r.work(50));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        // call(4) + work(50) + ret(4) + work(10) + ret(4)
        assert_eq!(summary.clock, 72);
    }

    #[test]
    fn loop_executes_body_count_times() {
        let exe = compile(|b| {
            b.routine("main", |r| r.loop_n(7, |l| l.call("leaf")));
            b.routine("leaf", |r| r.work(1));
        });
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        assert_eq!(t.routine("leaf").unwrap().calls, 7);
    }

    #[test]
    fn nested_loops_multiply() {
        let exe = compile(|b| {
            b.routine("main", |r| r.loop_n(3, |o| o.loop_n(4, |i| i.call("leaf"))));
            b.routine("leaf", |r| r.work(1));
        });
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.ground_truth().unwrap().routine("leaf").unwrap().calls, 12);
    }

    #[test]
    fn indirect_call_through_slot() {
        let exe = compile(|b| {
            b.routine("main", |r| r.set_slot(1, "f").call_indirect(1));
            b.routine("f", |r| r.work(5));
        });
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.ground_truth().unwrap().routine("f").unwrap().calls, 1);
    }

    #[test]
    fn unset_slot_faults() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call_indirect(3));
        });
        let mut m = Machine::new(exe);
        assert!(matches!(m.run(&mut NoHooks).unwrap_err(), InterpError::NullSlot { slot: 3, .. }));
    }

    #[test]
    fn deep_recursion_overflows() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call("main"));
        });
        let config = MachineConfig { max_call_depth: 10, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        assert!(matches!(
            m.run(&mut NoHooks).unwrap_err(),
            InterpError::StackOverflow { limit: 10, .. }
        ));
    }

    #[test]
    fn ground_truth_self_and_total() {
        let exe = compile(|b| {
            b.routine("main", |r| r.work(10).call("mid"));
            b.routine("mid", |r| r.work(20).call("leaf"));
            b.routine("leaf", |r| r.work(30));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        // Every cycle is attributed to some routine.
        assert_eq!(t.total_self_cycles(), summary.clock);
        let main = t.routine("main").unwrap();
        let mid = t.routine("mid").unwrap();
        let leaf = t.routine("leaf").unwrap();
        assert_eq!(main.total_cycles, summary.clock);
        assert!(mid.total_cycles > leaf.total_cycles);
        assert_eq!(leaf.self_cycles, leaf.total_cycles);
        assert_eq!(main.calls, 1);
        assert!(main.self_cycles >= 10);
    }

    #[test]
    fn recursion_does_not_double_count_inclusive_time() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call("rec"));
            // rec: work, then self-call bounded by depth via loop? The ISA
            // has no conditionals, so build bounded recursion with a chain.
            b.routine("rec", |r| r.work(10).call("rec2"));
            b.routine("rec2", |r| r.work(10).call("rec3"));
            b.routine("rec3", |r| r.work(10));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        assert!(t.routine("rec").unwrap().total_cycles <= summary.clock);
    }

    #[test]
    fn self_recursive_inclusive_counts_once() {
        // main calls rec twice; rec calls itself via a two-deep chain
        // emulated by direct self-call with stack bound.
        let exe = compile(|b| {
            b.routine("main", |r| r.call("rec"));
            b.routine("rec", |r| r.work(10).call("leaf"));
            b.routine("leaf", |r| r.work(5).call("rec_inner"));
            b.routine("rec_inner", |r| r.work(1));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        let rec = t.routine("rec").unwrap();
        assert!(rec.total_cycles < summary.clock);
        assert!(rec.total_cycles >= 16);
    }

    #[test]
    fn call_while_bounds_mutual_recursion() {
        let exe = compile(|b| {
            b.routine("main", |r| r.set_counter(7, 6).call("ping"));
            b.routine("ping", |r| r.work(10).call_while(7, "pong"));
            b.routine("pong", |r| r.work(20).call_while(7, "ping"));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        assert!(summary.halted);
        let t = m.ground_truth().unwrap();
        // Counter 6 admits five conditional calls: pong,ping,pong,ping,pong.
        assert_eq!(t.routine("ping").unwrap().calls, 3); // 1 from main + 2
        assert_eq!(t.routine("pong").unwrap().calls, 3);
    }

    #[test]
    fn call_while_with_zero_counter_never_calls() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call_while(6, "leaf").work(5));
            b.routine("leaf", |r| r.work(100));
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        assert_eq!(t.routine("leaf").unwrap().calls, 0);
        assert!(summary.clock < 50);
    }

    #[test]
    fn call_while_self_recursion_terminates() {
        let exe = compile(|b| {
            b.routine("main", |r| r.set_counter(5, 4).call("rec"));
            b.routine("rec", |r| r.work(10).call_while(5, "rec"));
        });
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        // 1 call from main + 3 self-recursive calls (counter 4).
        assert_eq!(t.routine("rec").unwrap().calls, 4);
        assert!(t.routine("rec").unwrap().self_cycles >= 40);
    }

    #[test]
    fn mcount_hook_sees_caller_and_callee() {
        #[derive(Default)]
        struct Recorder {
            events: Vec<(Addr, Addr)>,
        }
        impl ProfilingHooks for Recorder {
            fn on_mcount(&mut self, from: Addr, callee: Addr) -> u64 {
                self.events.push((from, callee));
                7
            }
        }
        let exe = compile_profiled(|b| {
            b.routine("main", |r| r.call("leaf").call("leaf"));
            b.routine("leaf", |r| r.work(1));
        });
        let leaf_addr = exe.symbols().by_name("leaf").unwrap().1.addr();
        let main_addr = exe.symbols().by_name("main").unwrap().1.addr();
        let mut hooks = Recorder::default();
        let mut m = Machine::new(exe);
        m.run(&mut hooks).unwrap();
        // First event: main's own prologue with a spontaneous caller.
        assert_eq!(hooks.events[0], (Addr::NULL, main_addr));
        // Then two activations of leaf from two different call sites.
        assert_eq!(hooks.events.len(), 3);
        assert_eq!(hooks.events[1].1, leaf_addr);
        assert_eq!(hooks.events[2].1, leaf_addr);
        assert!(!hooks.events[1].0.is_null());
        assert_ne!(hooks.events[1].0, hooks.events[2].0, "distinct call sites");
    }

    #[test]
    fn mcount_cost_is_charged_to_clock() {
        struct FixedCost;
        impl ProfilingHooks for FixedCost {
            fn on_mcount(&mut self, _: Addr, _: Addr) -> u64 {
                100
            }
        }
        let exe_plain = compile(|b| {
            b.routine("main", |r| r.work(10));
        });
        let exe_prof = compile_profiled(|b| {
            b.routine("main", |r| r.work(10));
        });
        let mut plain = Machine::new(exe_plain);
        let base = plain.run(&mut NoHooks).unwrap().clock;
        let mut prof = Machine::new(exe_prof);
        let with = prof.run(&mut FixedCost).unwrap().clock;
        assert_eq!(with, base + 100);
    }

    #[test]
    fn ticks_are_delivered_with_pc() {
        #[derive(Default)]
        struct Sampler {
            samples: Vec<(Addr, u64)>,
        }
        impl ProfilingHooks for Sampler {
            fn on_tick(&mut self, pc: Addr, ticks: u64) {
                self.samples.push((pc, ticks));
            }
        }
        let exe = compile(|b| {
            b.routine("main", |r| r.work(1000));
        });
        let work_pc = exe.symbols().by_name("main").unwrap().1.addr();
        let config = MachineConfig { cycles_per_tick: 100, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        let mut hooks = Sampler::default();
        m.run(&mut hooks).unwrap();
        let total: u64 = hooks.samples.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 10);
        // All work happens at the single work instruction (= routine entry,
        // since this is an unprofiled build).
        assert!(hooks.samples.iter().all(|&(pc, _)| pc == work_pc));
    }

    #[test]
    fn tick_count_matches_clock_over_long_run() {
        #[derive(Default)]
        struct Counter(u64);
        impl ProfilingHooks for Counter {
            fn on_tick(&mut self, _: Addr, ticks: u64) {
                self.0 += ticks;
            }
        }
        let exe = compile(|b| {
            b.routine("main", |r| r.loop_n(100, |l| l.call("leaf").work(37)));
            b.routine("leaf", |r| r.work(11));
        });
        let config = MachineConfig { cycles_per_tick: 13, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        let mut hooks = Counter::default();
        let summary = m.run(&mut hooks).unwrap();
        assert_eq!(hooks.0, summary.clock / 13);
    }

    /// Records every tick sample and the batch boundaries it arrived in.
    #[derive(Default)]
    struct BatchLog {
        samples: Vec<(Addr, u64)>,
        batch_sizes: Vec<usize>,
    }
    impl ProfilingHooks for BatchLog {
        fn on_tick(&mut self, pc: Addr, ticks: u64) {
            self.samples.push((pc, ticks));
        }
        fn on_tick_batch(&mut self, samples: &[(Addr, u64)]) {
            self.batch_sizes.push(samples.len());
            self.samples.extend_from_slice(samples);
        }
    }

    #[test]
    fn tick_stream_is_identical_across_batch_sizes() {
        let build = |b: &mut crate::ProgramBuilder| {
            b.routine("main", |r| r.loop_n(50, |l| l.call("leaf").work(37)));
            b.routine("leaf", |r| r.work(11));
        };
        let baseline = {
            let exe = compile(build);
            let config =
                MachineConfig { cycles_per_tick: 13, tick_batch: 1, ..MachineConfig::default() };
            let mut m = Machine::with_config(exe, config);
            let mut hooks = BatchLog::default();
            m.run(&mut hooks).unwrap();
            assert!(hooks.batch_sizes.is_empty(), "tick_batch 1 delivers immediately");
            hooks.samples
        };
        for tick_batch in [0usize, 7, 64, 1 << 20] {
            let exe = compile(build);
            let config =
                MachineConfig { cycles_per_tick: 13, tick_batch, ..MachineConfig::default() };
            let mut m = Machine::with_config(exe, config);
            let mut hooks = BatchLog::default();
            m.run(&mut hooks).unwrap();
            assert_eq!(hooks.samples, baseline, "tick_batch {tick_batch}");
            if tick_batch > 1 {
                assert!(
                    hooks.batch_sizes.iter().all(|&n| n >= 1 && n <= tick_batch),
                    "batches of {:?} exceed capacity {tick_batch}",
                    hooks.batch_sizes
                );
            }
        }
    }

    #[test]
    fn buffered_ticks_flush_at_slice_boundaries() {
        let exe = compile(|b| {
            b.routine("main", |r| r.loop_n(100, |l| l.work(100)));
        });
        let config =
            MachineConfig { cycles_per_tick: 10, tick_batch: 1 << 20, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        let mut hooks = BatchLog::default();
        // The batch capacity is never reached, so every sample the slice
        // produced must arrive via the boundary flush.
        let status = m.run_for(&mut hooks, 500).unwrap();
        assert_eq!(status, RunStatus::Paused);
        let after_slice: u64 = hooks.samples.iter().map(|&(_, n)| n).sum();
        assert_eq!(after_slice, m.clock() / 10, "pause must not hold back buffered ticks");
        m.run(&mut hooks).unwrap();
        let total: u64 = hooks.samples.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, m.clock() / 10);
    }

    #[test]
    fn stack_sampling_bypasses_tick_batching() {
        #[derive(Default)]
        struct PairLog {
            events: Vec<(&'static str, u64)>,
        }
        impl ProfilingHooks for PairLog {
            fn on_tick(&mut self, _: Addr, ticks: u64) {
                self.events.push(("tick", ticks));
            }
            fn on_tick_batch(&mut self, samples: &[(Addr, u64)]) {
                self.events.push(("batch", samples.len() as u64));
            }
            fn wants_stack_samples(&self) -> bool {
                true
            }
            fn on_stack_sample(&mut self, _: &[Addr], ticks: u64) {
                self.events.push(("stack", ticks));
            }
        }
        let exe = compile(|b| {
            b.routine("main", |r| r.work(1000));
        });
        let config =
            MachineConfig { cycles_per_tick: 100, tick_batch: 64, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        let mut hooks = PairLog::default();
        m.run(&mut hooks).unwrap();
        // Every tick is delivered immediately, paired with its stack
        // sample; nothing is ever deferred into a batch.
        assert!(!hooks.events.is_empty());
        assert!(hooks.events.chunks(2).all(|c| c[0].0 == "tick" && c[1].0 == "stack"));
    }

    #[test]
    fn stack_samples_carry_the_whole_chain() {
        #[derive(Default)]
        struct StackSampler {
            samples: Vec<Vec<Addr>>,
        }
        impl ProfilingHooks for StackSampler {
            fn wants_stack_samples(&self) -> bool {
                true
            }
            fn on_stack_sample(&mut self, stack: &[Addr], _ticks: u64) {
                self.samples.push(stack.to_vec());
            }
        }
        let exe = compile(|b| {
            b.routine("main", |r| r.call("mid"));
            b.routine("mid", |r| r.call("leaf"));
            b.routine("leaf", |r| r.work(1000));
        });
        let symbols = exe.symbols().clone();
        let config = MachineConfig { cycles_per_tick: 100, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        let mut hooks = StackSampler::default();
        m.run(&mut hooks).unwrap();
        assert!(!hooks.samples.is_empty());
        // Samples taken inside leaf's work show the full chain:
        // leaf pc, return into mid, return into main.
        let deep: Vec<&Vec<Addr>> = hooks.samples.iter().filter(|s| s.len() == 3).collect();
        assert!(!deep.is_empty(), "{:?}", hooks.samples);
        for stack in deep {
            let names: Vec<&str> =
                stack.iter().map(|&pc| symbols.lookup_pc(pc).unwrap().1.name()).collect();
            assert_eq!(names, ["leaf", "mid", "main"]);
        }
    }

    #[test]
    fn stack_samples_are_not_built_when_unwanted() {
        // NoHooks leaves wants_stack_samples false; this is a smoke test
        // that the default path still ticks correctly.
        let exe = compile(|b| {
            b.routine("main", |r| r.work(1000));
        });
        let config = MachineConfig { cycles_per_tick: 10, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        m.run(&mut NoHooks).unwrap();
        assert_eq!(m.clock(), 1004);
    }

    #[test]
    fn run_for_pauses_and_resumes() {
        let exe = compile(|b| {
            b.routine("main", |r| r.loop_n(100, |l| l.work(100)));
        });
        let mut m = Machine::new(exe);
        let status = m.run_for(&mut NoHooks, 500).unwrap();
        assert_eq!(status, RunStatus::Paused);
        assert!(m.clock() >= 500);
        assert!(!m.halted());
        // Resume to completion.
        let status = m.run_for(&mut NoHooks, u64::MAX).unwrap();
        assert_eq!(status, RunStatus::Halted);
        assert!(m.halted());
    }

    #[test]
    fn mid_run_ground_truth_is_consistent() {
        let exe = compile(|b| {
            b.routine("main", |r| r.loop_n(10, |l| l.call("leaf")));
            b.routine("leaf", |r| r.work(1000));
        });
        let mut m = Machine::new(exe);
        m.run_for(&mut NoHooks, 2500).unwrap();
        let t = m.ground_truth().unwrap();
        assert_eq!(t.total_self_cycles(), m.clock());
        assert_eq!(t.routine("main").unwrap().total_cycles, m.clock());
    }

    #[test]
    fn halt_instruction_stops_at_depth() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call("stopper").work(1000));
            b.routine("stopper", |r| r.work(10).halt());
        });
        let mut m = Machine::new(exe);
        let summary = m.run(&mut NoHooks).unwrap();
        assert!(summary.clock < 100);
        let t = m.ground_truth().unwrap();
        assert_eq!(t.routine("main").unwrap().total_cycles, m.clock());
        assert_eq!(t.total_self_cycles(), m.clock());
    }

    #[test]
    fn arc_truth_counts_and_cycles() {
        let exe = compile(|b| {
            b.routine("main", |r| r.call("leaf").call("leaf"));
            b.routine("leaf", |r| r.work(25));
        });
        let leaf = exe.symbols().by_name("leaf").unwrap().1.addr();
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        let t = m.ground_truth().unwrap();
        let (count, cycles) = t.arcs_into(leaf);
        assert_eq!(count, 2);
        // Each call spends work(25) + ret(4) beneath the arc.
        assert_eq!(cycles, 2 * 29);
        assert_eq!(t.arcs().len(), 2, "two distinct call sites");
    }

    #[test]
    fn ground_truth_disabled_returns_none() {
        let exe = compile(|b| {
            b.routine("main", |r| r.work(1));
        });
        let config = MachineConfig { collect_ground_truth: false, ..MachineConfig::default() };
        let mut m = Machine::with_config(exe, config);
        m.run(&mut NoHooks).unwrap();
        assert!(m.ground_truth().is_none());
    }

    #[test]
    fn countcall_hook_fires_per_activation() {
        #[derive(Default)]
        struct Counter(std::collections::HashMap<Addr, u64>);
        impl ProfilingHooks for Counter {
            fn on_count_call(&mut self, self_pc: Addr) -> u64 {
                *self.0.entry(self_pc).or_insert(0) += 1;
                3
            }
        }
        let mut b = Program::builder();
        b.routine("main", |r| r.call_n("leaf", 5));
        b.routine("leaf", |r| r.work(1));
        let exe = b.build().unwrap().compile(&CompileOptions::counted()).unwrap();
        let leaf = exe.symbols().by_name("leaf").unwrap().1.addr();
        let mut hooks = Counter::default();
        let mut m = Machine::new(exe);
        m.run(&mut hooks).unwrap();
        assert_eq!(hooks.0[&leaf], 5);
    }

    /// The predecode cache must never change what executes: every fetch
    /// path (disabled, serial sweep, parallel sweep) yields the same
    /// clock, instruction count, tick stream, and ground truth.
    #[test]
    fn predecode_is_bit_identical_to_fetch_decode() {
        #[derive(Default, PartialEq, Debug)]
        struct TickLog(Vec<(Addr, u64)>);
        impl ProfilingHooks for TickLog {
            fn on_tick(&mut self, pc: Addr, ticks: u64) {
                self.0.push((pc, ticks));
            }
        }
        let build = || {
            compile_profiled(|b| {
                b.routine("main", |r| r.loop_n(25, |l| l.call("mid").work(7)));
                b.routine("mid", |r| r.call("leaf").call("leaf").work(13));
                b.routine("leaf", |r| r.work(41));
            })
        };
        let mut runs = Vec::new();
        for jobs in [0usize, 1, 8] {
            let config = MachineConfig {
                cycles_per_tick: 17,
                predecode_jobs: jobs,
                ..MachineConfig::default()
            };
            let mut m = Machine::with_config(build(), config);
            let mut ticks = TickLog::default();
            let summary = m.run(&mut ticks).unwrap();
            runs.push((summary, ticks, format!("{:?}", m.ground_truth())));
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    /// The parallel sweep writes per-symbol results back in symbol order,
    /// so the table itself is identical for any job count.
    #[test]
    fn predecode_table_is_job_count_invariant() {
        let exe = compile_profiled(|b| {
            for i in 0..12 {
                let name = format!("r{i}");
                b.routine(&name, |r| r.work(10 + i));
            }
            b.routine("main", |r| (0..12).fold(r, |r, i| r.call(format!("r{i}"))));
        });
        let serial = predecode(&exe, 1);
        let parallel = predecode(&exe, 8);
        assert_eq!(serial, parallel);
        assert!(serial.iter().any(|e| e.is_some()));
        assert!(predecode(&exe, 0).is_empty());
    }
}
