//! Executable images and symbol tables.
//!
//! An [`Executable`] plays the role of the UNIX `a.out` file in the paper:
//! a text segment of encoded instructions plus a symbol table mapping
//! routine names to address ranges. The profiler post-processor uses the
//! symbol table both to assign histogram samples to routines and to resolve
//! arc endpoints, and the static call graph pass disassembles the text from
//! symbol boundaries.

use std::fmt;

use crate::encode::decode_at;
use crate::error::DecodeError;
use crate::isa::{Addr, Instruction};

/// Index of a symbol within its [`SymbolTable`].
///
/// Symbol ids are dense (0-based) and follow text-segment address order, so
/// they double as array indices in the profiler's per-routine accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl SymbolId {
    /// Creates a symbol id from a raw index.
    pub const fn new(index: u32) -> Self {
        SymbolId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One routine in the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    name: String,
    addr: Addr,
    size: u32,
    profiled: bool,
}

impl Symbol {
    /// Creates a symbol covering `[addr, addr + size)`.
    pub fn new(name: impl Into<String>, addr: Addr, size: u32, profiled: bool) -> Self {
        Symbol { name: name.into(), addr, size, profiled }
    }

    /// The routine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The routine's entry address (start of its prologue).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The routine's size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// One past the last address of the routine.
    pub fn end(&self) -> Addr {
        self.addr.offset(self.size)
    }

    /// Whether the routine was compiled with a profiling prologue.
    ///
    /// Unprofiled routines "run at full speed" (§3.1) and never record
    /// incoming arcs.
    pub fn profiled(&self) -> bool {
        self.profiled
    }

    /// Returns `true` if `pc` falls inside this routine.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.addr && pc < self.end()
    }
}

/// A symbol table: routines sorted by entry address.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
}

impl SymbolTable {
    /// Builds a table from symbols, sorting them by address.
    ///
    /// # Panics
    ///
    /// Panics if two symbols overlap; the compiler never produces
    /// overlapping routines.
    pub fn new(mut symbols: Vec<Symbol>) -> Self {
        symbols.sort_by_key(|s| s.addr);
        for pair in symbols.windows(2) {
            assert!(
                pair[0].end() <= pair[1].addr,
                "overlapping symbols {} and {}",
                pair[0].name,
                pair[1].name
            );
        }
        SymbolTable { symbols }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` when the table has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.index()]
    }

    /// Looks a symbol up by name.
    pub fn by_name(&self, name: &str) -> Option<(SymbolId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (SymbolId::new(i as u32), s))
    }

    /// Finds the routine containing `pc`, if any.
    ///
    /// This is the mapping used to attribute histogram samples and resolve
    /// arc endpoints; it is a binary search over the sorted address ranges.
    pub fn lookup_pc(&self, pc: Addr) -> Option<(SymbolId, &Symbol)> {
        if self.symbols.is_empty() {
            return None;
        }
        let idx = match self.symbols.binary_search_by(|s| s.addr.cmp(&pc)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let sym = &self.symbols[idx];
        sym.contains(pc).then_some((SymbolId::new(idx as u32), sym))
    }

    /// Iterates over `(id, symbol)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> {
        self.symbols.iter().enumerate().map(|(i, s)| (SymbolId::new(i as u32), s))
    }
}

/// A loaded executable: text segment, symbol table, and entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executable {
    base: Addr,
    text: Vec<u8>,
    symbols: SymbolTable,
    entry: Addr,
}

impl Executable {
    /// Assembles an executable from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the entry point lies outside the text segment.
    pub fn new(base: Addr, text: Vec<u8>, symbols: SymbolTable, entry: Addr) -> Self {
        assert!(
            entry >= base
                && entry.checked_sub(base).map(|o| (o as usize) < text.len()).unwrap_or(false),
            "entry point {entry} outside text segment"
        );
        Executable { base, text, symbols, entry }
    }

    /// First address of the text segment.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// One past the last text address.
    pub fn end(&self) -> Addr {
        self.base.offset(self.text.len() as u32)
    }

    /// The raw text segment bytes.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The entry point address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Returns `true` if `pc` lies within the text segment.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.base && pc < self.end()
    }

    /// Decodes the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if `pc` is outside the text segment or the
    /// bytes there do not form a valid instruction.
    pub fn decode(&self, pc: Addr) -> Result<(Instruction, u32), DecodeError> {
        let offset = pc
            .checked_sub(self.base)
            .filter(|&o| (o as usize) < self.text.len())
            .ok_or(DecodeError::Truncated { offset: self.text.len() })?;
        decode_at(&self.text, offset as usize)
    }

    /// Linearly disassembles one routine from its entry address, stopping at
    /// the routine's end.
    ///
    /// This is the primitive used by static call graph discovery: starting
    /// from symbol boundaries guarantees correct instruction alignment, just
    /// as gprof's crawl of object text relies on the symbol table.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed text.
    pub fn disassemble_symbol(
        &self,
        id: SymbolId,
    ) -> Result<Vec<(Addr, Instruction)>, DecodeError> {
        let sym = self.symbols.symbol(id);
        let mut pc = sym.addr();
        let mut out = Vec::new();
        while pc < sym.end() {
            let (inst, len) = self.decode(pc)?;
            out.push((pc, inst));
            pc = pc.offset(len);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_into;

    fn table() -> SymbolTable {
        SymbolTable::new(vec![
            Symbol::new("b", Addr::new(0x1010), 0x10, true),
            Symbol::new("a", Addr::new(0x1000), 0x10, true),
            Symbol::new("c", Addr::new(0x1020), 0x08, false),
        ])
    }

    #[test]
    fn symbols_are_sorted_by_address() {
        let t = table();
        let names: Vec<_> = t.iter().map(|(_, s)| s.name().to_string()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn lookup_pc_finds_containing_routine() {
        let t = table();
        assert_eq!(t.lookup_pc(Addr::new(0x1000)).unwrap().1.name(), "a");
        assert_eq!(t.lookup_pc(Addr::new(0x100f)).unwrap().1.name(), "a");
        assert_eq!(t.lookup_pc(Addr::new(0x1010)).unwrap().1.name(), "b");
        assert_eq!(t.lookup_pc(Addr::new(0x1027)).unwrap().1.name(), "c");
    }

    #[test]
    fn lookup_pc_misses_outside_ranges() {
        let t = table();
        assert!(t.lookup_pc(Addr::new(0x0fff)).is_none());
        assert!(t.lookup_pc(Addr::new(0x1028)).is_none());
        assert!(SymbolTable::default().lookup_pc(Addr::new(0x1000)).is_none());
    }

    #[test]
    fn by_name_returns_matching_id() {
        let t = table();
        let (id, sym) = t.by_name("b").unwrap();
        assert_eq!(t.symbol(id).name(), "b");
        assert_eq!(sym.addr(), Addr::new(0x1010));
        assert!(t.by_name("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "overlapping symbols")]
    fn overlapping_symbols_panic() {
        SymbolTable::new(vec![
            Symbol::new("a", Addr::new(0x1000), 0x20, true),
            Symbol::new("b", Addr::new(0x1010), 0x10, true),
        ]);
    }

    #[test]
    fn executable_decode_and_bounds() {
        let mut text = Vec::new();
        encode_into(Instruction::Work(5), &mut text);
        encode_into(Instruction::Halt, &mut text);
        let size = text.len() as u32;
        let symbols = SymbolTable::new(vec![Symbol::new("main", Addr::new(0x1000), size, true)]);
        let exe = Executable::new(Addr::new(0x1000), text, symbols, Addr::new(0x1000));
        assert!(exe.contains(Addr::new(0x1000)));
        assert!(!exe.contains(exe.end()));
        let (inst, len) = exe.decode(Addr::new(0x1000)).unwrap();
        assert_eq!(inst, Instruction::Work(5));
        assert_eq!(len, 5);
        assert!(exe.decode(Addr::new(0x0)).is_err());
    }

    #[test]
    fn disassemble_symbol_walks_whole_routine() {
        let mut text = Vec::new();
        encode_into(Instruction::Work(1), &mut text);
        encode_into(Instruction::Call(Addr::new(0x1000)), &mut text);
        encode_into(Instruction::Ret, &mut text);
        let size = text.len() as u32;
        let symbols = SymbolTable::new(vec![Symbol::new("f", Addr::new(0x1000), size, true)]);
        let exe = Executable::new(Addr::new(0x1000), text, symbols, Addr::new(0x1000));
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[0].0, Addr::new(0x1000));
        assert_eq!(insts[1].1, Instruction::Call(Addr::new(0x1000)));
    }

    #[test]
    #[should_panic(expected = "entry point")]
    fn entry_outside_text_panics() {
        let symbols = SymbolTable::default();
        Executable::new(Addr::new(0x1000), vec![0x0c], symbols, Addr::new(0x2000));
    }
}
