//! The byte encoding of the instruction set — the machine's "object format".
//!
//! Instructions encode to a one-byte opcode followed by fixed-size
//! little-endian operands. Fixed sizes keep layout single-pass, and a real
//! byte-level text segment is what lets static call graph discovery crawl
//! the executable for `call` instructions exactly the way gprof crawls
//! object code (§4 of the paper).

use crate::error::DecodeError;
use crate::isa::{Addr, Instruction, NUM_COUNTERS, NUM_REGS, NUM_SLOTS};

const OP_WORK: u8 = 0x01;
const OP_CALL: u8 = 0x02;
const OP_CALLI: u8 = 0x03;
const OP_SETSLOT: u8 = 0x04;
const OP_RET: u8 = 0x05;
const OP_SETREG: u8 = 0x06;
const OP_DECJNZ: u8 = 0x07;
const OP_JMP: u8 = 0x08;
const OP_MCOUNT: u8 = 0x09;
const OP_COUNTCALL: u8 = 0x0a;
const OP_NOP: u8 = 0x0b;
const OP_HALT: u8 = 0x0c;
const OP_SETCTR: u8 = 0x0d;
const OP_DECCTRJNZ: u8 = 0x0e;

/// Returns the encoded size of an instruction in bytes.
///
/// Sizes are fixed per opcode and never depend on operand values.
pub fn encoded_len(inst: Instruction) -> u32 {
    match inst {
        Instruction::Work(_) => 5,
        Instruction::Call(_) => 5,
        Instruction::CallIndirect(_) => 2,
        Instruction::SetSlot(..) => 6,
        Instruction::Ret => 1,
        Instruction::SetReg(..) => 6,
        Instruction::DecJnz(..) => 6,
        Instruction::SetCtr(..) => 6,
        Instruction::DecCtrJnz(..) => 6,
        Instruction::Jmp(_) => 5,
        Instruction::Mcount => 1,
        Instruction::CountCall => 1,
        Instruction::Nop => 1,
        Instruction::Halt => 1,
    }
}

/// Appends the encoding of `inst` to `out`, returning the number of bytes
/// written.
pub fn encode_into(inst: Instruction, out: &mut Vec<u8>) -> u32 {
    let start = out.len();
    match inst {
        Instruction::Work(n) => {
            out.push(OP_WORK);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Instruction::Call(a) => {
            out.push(OP_CALL);
            out.extend_from_slice(&a.get().to_le_bytes());
        }
        Instruction::CallIndirect(s) => {
            out.push(OP_CALLI);
            out.push(s);
        }
        Instruction::SetSlot(s, a) => {
            out.push(OP_SETSLOT);
            out.push(s);
            out.extend_from_slice(&a.get().to_le_bytes());
        }
        Instruction::Ret => out.push(OP_RET),
        Instruction::SetReg(r, v) => {
            out.push(OP_SETREG);
            out.push(r);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Instruction::DecJnz(r, a) => {
            out.push(OP_DECJNZ);
            out.push(r);
            out.extend_from_slice(&a.get().to_le_bytes());
        }
        Instruction::SetCtr(c, v) => {
            out.push(OP_SETCTR);
            out.push(c);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Instruction::DecCtrJnz(c, a) => {
            out.push(OP_DECCTRJNZ);
            out.push(c);
            out.extend_from_slice(&a.get().to_le_bytes());
        }
        Instruction::Jmp(a) => {
            out.push(OP_JMP);
            out.extend_from_slice(&a.get().to_le_bytes());
        }
        Instruction::Mcount => out.push(OP_MCOUNT),
        Instruction::CountCall => out.push(OP_COUNTCALL),
        Instruction::Nop => out.push(OP_NOP),
        Instruction::Halt => out.push(OP_HALT),
    }
    (out.len() - start) as u32
}

fn read_u32(text: &[u8], offset: usize) -> Option<u32> {
    let bytes = text.get(offset..offset + 4)?;
    Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
}

/// Decodes the instruction starting at byte `offset` of `text`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] when the text ends mid-instruction and
/// [`DecodeError::BadOpcode`] on an unknown opcode. Register and slot
/// operands out of range yield [`DecodeError::BadOperand`].
pub fn decode_at(text: &[u8], offset: usize) -> Result<(Instruction, u32), DecodeError> {
    let op = *text.get(offset).ok_or(DecodeError::Truncated { offset })?;
    let trunc = DecodeError::Truncated { offset };
    let inst = match op {
        OP_WORK => Instruction::Work(read_u32(text, offset + 1).ok_or(trunc)?),
        OP_CALL => Instruction::Call(Addr::new(read_u32(text, offset + 1).ok_or(trunc)?)),
        OP_CALLI => {
            let slot = *text.get(offset + 1).ok_or(trunc)?;
            if usize::from(slot) >= NUM_SLOTS {
                return Err(DecodeError::BadOperand { offset, operand: u32::from(slot) });
            }
            Instruction::CallIndirect(slot)
        }
        OP_SETSLOT => {
            let slot = *text.get(offset + 1).ok_or(trunc)?;
            if usize::from(slot) >= NUM_SLOTS {
                return Err(DecodeError::BadOperand { offset, operand: u32::from(slot) });
            }
            Instruction::SetSlot(slot, Addr::new(read_u32(text, offset + 2).ok_or(trunc)?))
        }
        OP_RET => Instruction::Ret,
        OP_SETREG => {
            let reg = *text.get(offset + 1).ok_or(trunc)?;
            if usize::from(reg) >= NUM_REGS {
                return Err(DecodeError::BadOperand { offset, operand: u32::from(reg) });
            }
            Instruction::SetReg(reg, read_u32(text, offset + 2).ok_or(trunc)?)
        }
        OP_DECJNZ => {
            let reg = *text.get(offset + 1).ok_or(trunc)?;
            if usize::from(reg) >= NUM_REGS {
                return Err(DecodeError::BadOperand { offset, operand: u32::from(reg) });
            }
            Instruction::DecJnz(reg, Addr::new(read_u32(text, offset + 2).ok_or(trunc)?))
        }
        OP_JMP => Instruction::Jmp(Addr::new(read_u32(text, offset + 1).ok_or(trunc)?)),
        OP_SETCTR => {
            let ctr = *text.get(offset + 1).ok_or(trunc)?;
            if usize::from(ctr) >= NUM_COUNTERS {
                return Err(DecodeError::BadOperand { offset, operand: u32::from(ctr) });
            }
            Instruction::SetCtr(ctr, read_u32(text, offset + 2).ok_or(trunc)?)
        }
        OP_DECCTRJNZ => {
            let ctr = *text.get(offset + 1).ok_or(trunc)?;
            if usize::from(ctr) >= NUM_COUNTERS {
                return Err(DecodeError::BadOperand { offset, operand: u32::from(ctr) });
            }
            Instruction::DecCtrJnz(ctr, Addr::new(read_u32(text, offset + 2).ok_or(trunc)?))
        }
        OP_MCOUNT => Instruction::Mcount,
        OP_COUNTCALL => Instruction::CountCall,
        OP_NOP => Instruction::Nop,
        OP_HALT => Instruction::Halt,
        other => return Err(DecodeError::BadOpcode { offset, opcode: other }),
    };
    Ok((inst, encoded_len(inst)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Work(0),
            Instruction::Work(u32::MAX),
            Instruction::Call(Addr::new(0x1000)),
            Instruction::CallIndirect(0),
            Instruction::CallIndirect((NUM_SLOTS - 1) as u8),
            Instruction::SetSlot(3, Addr::new(0xdead)),
            Instruction::Ret,
            Instruction::SetReg(7, 42),
            Instruction::DecJnz(0, Addr::new(0x10)),
            Instruction::SetCtr(2, 77),
            Instruction::DecCtrJnz(7, Addr::new(0x20)),
            Instruction::Jmp(Addr::new(0x2000)),
            Instruction::Mcount,
            Instruction::CountCall,
            Instruction::Nop,
            Instruction::Halt,
        ]
    }

    #[test]
    fn round_trip_every_instruction() {
        for inst in all_instructions() {
            let mut buf = Vec::new();
            let len = encode_into(inst, &mut buf);
            assert_eq!(len, encoded_len(inst), "{inst}");
            assert_eq!(len as usize, buf.len(), "{inst}");
            let (decoded, dlen) = decode_at(&buf, 0).expect("decodes");
            assert_eq!(decoded, inst);
            assert_eq!(dlen, len);
        }
    }

    #[test]
    fn round_trip_instruction_stream() {
        let insts = all_instructions();
        let mut buf = Vec::new();
        for &inst in &insts {
            encode_into(inst, &mut buf);
        }
        let mut offset = 0usize;
        let mut decoded = Vec::new();
        while offset < buf.len() {
            let (inst, len) = decode_at(&buf, offset).expect("stream decodes");
            decoded.push(inst);
            offset += len as usize;
        }
        assert_eq!(decoded, insts);
    }

    #[test]
    fn truncated_operand_is_an_error() {
        let mut buf = Vec::new();
        encode_into(Instruction::Call(Addr::new(0x1234)), &mut buf);
        buf.truncate(3);
        assert!(matches!(decode_at(&buf, 0), Err(DecodeError::Truncated { offset: 0 })));
    }

    #[test]
    fn empty_text_is_truncated() {
        assert!(matches!(decode_at(&[], 0), Err(DecodeError::Truncated { offset: 0 })));
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        assert!(matches!(decode_at(&[0xff], 0), Err(DecodeError::BadOpcode { opcode: 0xff, .. })));
    }

    #[test]
    fn out_of_range_register_is_an_error() {
        let buf = [super::OP_SETREG, NUM_REGS as u8, 0, 0, 0, 0];
        assert!(matches!(decode_at(&buf, 0), Err(DecodeError::BadOperand { .. })));
    }

    #[test]
    fn out_of_range_slot_is_an_error() {
        let buf = [super::OP_CALLI, NUM_SLOTS as u8];
        assert!(matches!(decode_at(&buf, 0), Err(DecodeError::BadOperand { .. })));
    }
}
