//! The on-disk executable format — the machine's `a.out`.
//!
//! gprof is a post-processor: it reads the executable image (for the
//! symbol table and the static call graph) separately from the profile
//! data. To support the same workflow — assemble once, run elsewhere,
//! analyze later — executables serialize to a small versioned binary
//! format:
//!
//! ```text
//! magic    b"GPXE"           4 bytes
//! version  u16 LE            currently 1
//! flags    u16 LE            reserved, 0
//! base     u32 LE            text base address
//! entry    u32 LE            entry point
//! text_len u32 LE
//! text     text_len bytes
//! nsyms    u32 LE
//! symbols  nsyms × { addr u32, size u32, flags u8 (bit0 = profiled),
//!                    name_len u8, name bytes (UTF-8) }
//! ```
//!
//! Symbols are written in address order and validated on load (in-range,
//! non-overlapping, entry inside text).

use std::fmt;

use crate::error::DecodeError;
use crate::image::{Executable, Symbol, SymbolTable};
use crate::isa::Addr;

const MAGIC: &[u8; 4] = b"GPXE";
const VERSION: u16 = 1;

/// An error reading an executable file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjFileError {
    /// The file does not start with the executable magic.
    BadMagic,
    /// The file has a version this library cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// The file ended before its declared contents.
    Truncated,
    /// A structural inconsistency in the contents.
    Corrupt {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for ObjFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjFileError::BadMagic => write!(f, "not an executable file (bad magic)"),
            ObjFileError::UnsupportedVersion { version } => {
                write!(f, "unsupported executable version {version}")
            }
            ObjFileError::Truncated => write!(f, "executable file is truncated"),
            ObjFileError::Corrupt { reason } => {
                write!(f, "corrupt executable file: {reason}")
            }
        }
    }
}

impl std::error::Error for ObjFileError {}

impl From<DecodeError> for ObjFileError {
    fn from(e: DecodeError) -> Self {
        ObjFileError::Corrupt { reason: e.to_string() }
    }
}

/// Serializes an executable to the on-disk format.
pub fn write_executable(exe: &Executable) -> Vec<u8> {
    let text = exe.text();
    let mut out = Vec::with_capacity(24 + text.len() + exe.symbols().len() * 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&exe.base().get().to_le_bytes());
    out.extend_from_slice(&exe.entry().get().to_le_bytes());
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text);
    out.extend_from_slice(&(exe.symbols().len() as u32).to_le_bytes());
    for (_, sym) in exe.symbols().iter() {
        out.extend_from_slice(&sym.addr().get().to_le_bytes());
        out.extend_from_slice(&sym.size().to_le_bytes());
        out.push(u8::from(sym.profiled()));
        let name = sym.name().as_bytes();
        debug_assert!(name.len() <= u8::MAX as usize, "symbol names are short");
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
    }
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjFileError> {
        let end = self.pos.checked_add(n).ok_or(ObjFileError::Truncated)?;
        let slice = self.data.get(self.pos..end).ok_or(ObjFileError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ObjFileError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ObjFileError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ObjFileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

/// Deserializes an executable from the on-disk format.
///
/// # Errors
///
/// Returns an [`ObjFileError`] for truncated, corrupt, or incompatible
/// files; symbol ranges and the entry point are validated.
pub fn read_executable(data: &[u8]) -> Result<Executable, ObjFileError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ObjFileError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ObjFileError::UnsupportedVersion { version });
    }
    let _flags = r.u16()?;
    let base = Addr::new(r.u32()?);
    if base.is_null() {
        return Err(ObjFileError::Corrupt { reason: "null base address".to_string() });
    }
    let entry = Addr::new(r.u32()?);
    let text_len = r.u32()? as usize;
    let text = r.take(text_len)?.to_vec();
    let end = base
        .get()
        .checked_add(text_len as u32)
        .ok_or_else(|| ObjFileError::Corrupt { reason: "text wraps address space".to_string() })?;
    if entry < base || entry.get() >= end {
        return Err(ObjFileError::Corrupt { reason: format!("entry {entry} outside text") });
    }
    let nsyms = r.u32()? as usize;
    let mut symbols = Vec::with_capacity(nsyms.min(1 << 16));
    let mut prev_end = base;
    for i in 0..nsyms {
        let addr = Addr::new(r.u32()?);
        let size = r.u32()?;
        let flags = r.u8()?;
        let name_len = r.u8()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| ObjFileError::Corrupt { reason: format!("symbol {i} name is not UTF-8") })?
            .to_string();
        if addr < prev_end {
            return Err(ObjFileError::Corrupt {
                reason: format!("symbol `{name}` out of order or overlapping"),
            });
        }
        let sym_end = addr.get().checked_add(size).ok_or_else(|| ObjFileError::Corrupt {
            reason: format!("symbol `{name}` wraps address space"),
        })?;
        if sym_end > end {
            return Err(ObjFileError::Corrupt {
                reason: format!("symbol `{name}` extends past text"),
            });
        }
        prev_end = Addr::new(sym_end);
        symbols.push(Symbol::new(name, addr, size, flags & 1 != 0));
    }
    if r.pos != data.len() {
        return Err(ObjFileError::Corrupt {
            reason: format!("{} trailing bytes", data.len() - r.pos),
        });
    }
    Ok(Executable::new(base, text, SymbolTable::new(symbols), entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CompileOptions, Program};

    fn sample_exe() -> Executable {
        let mut b = Program::builder();
        b.routine("main", |r| r.work(10).call("leaf").set_slot(1, "leaf"));
        b.noprofile_routine("leaf", |r| r.work(50));
        b.build().unwrap().compile(&CompileOptions::profiled()).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let exe = sample_exe();
        let bytes = write_executable(&exe);
        let back = read_executable(&bytes).unwrap();
        assert_eq!(back, exe);
        // Profiled flags survive.
        assert!(back.symbols().by_name("main").unwrap().1.profiled());
        assert!(!back.symbols().by_name("leaf").unwrap().1.profiled());
    }

    #[test]
    fn round_tripped_executable_runs_identically() {
        use crate::interp::{Machine, NoHooks};
        let exe = sample_exe();
        let back = read_executable(&write_executable(&exe)).unwrap();
        let mut m1 = Machine::new(exe);
        let mut m2 = Machine::new(back);
        let s1 = m1.run(&mut NoHooks).unwrap();
        let s2 = m2.run(&mut NoHooks).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(m1.ground_truth(), m2.ground_truth());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_executable(&sample_exe());
        bytes[0] = b'X';
        assert_eq!(read_executable(&bytes), Err(ObjFileError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = write_executable(&sample_exe());
        bytes[4] = 9;
        assert!(matches!(
            read_executable(&bytes),
            Err(ObjFileError::UnsupportedVersion { version: 9 })
        ));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = write_executable(&sample_exe());
        for len in 0..bytes.len() {
            assert!(read_executable(&bytes[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = write_executable(&sample_exe());
        bytes.push(0);
        assert!(matches!(read_executable(&bytes), Err(ObjFileError::Corrupt { .. })));
    }

    #[test]
    fn entry_outside_text_is_rejected() {
        let mut bytes = write_executable(&sample_exe());
        // entry field at offset 12..16
        bytes[12..16].copy_from_slice(&0xffff_0000u32.to_le_bytes());
        assert!(matches!(read_executable(&bytes), Err(ObjFileError::Corrupt { .. })));
    }

    #[test]
    fn overlapping_symbols_are_rejected() {
        let exe = sample_exe();
        let mut bytes = write_executable(&exe);
        // Corrupt the second symbol's addr (after text + nsyms + first
        // symbol record) to overlap the first. Locate: header 20 + text.
        let text_len = exe.text().len();
        let first_sym = 20 + text_len + 4;
        let first_name_len = bytes[first_sym + 9] as usize;
        let second_sym = first_sym + 10 + first_name_len;
        bytes[second_sym..second_sym + 4].copy_from_slice(&exe.base().get().to_le_bytes());
        assert!(matches!(read_executable(&bytes), Err(ObjFileError::Corrupt { .. })));
    }

    #[test]
    fn non_utf8_symbol_name_is_rejected() {
        let exe = sample_exe();
        let mut bytes = write_executable(&exe);
        let text_len = exe.text().len();
        let first_name = 20 + text_len + 4 + 10;
        bytes[first_name] = 0xff;
        assert!(matches!(read_executable(&bytes), Err(ObjFileError::Corrupt { .. })));
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(ObjFileError::BadMagic.to_string().contains("magic"));
        assert!(ObjFileError::Truncated.to_string().contains("truncated"));
    }
}
