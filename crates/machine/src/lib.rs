//! A deterministic virtual machine substrate for the `graphprof` profiler.
//!
//! The 1982 gprof paper profiles programs running on a real processor under
//! UNIX: the compiler inserts a call to a monitoring routine in every profiled
//! routine's prologue, and the operating system histograms the program counter
//! at every clock tick. This crate reproduces that *environment* so the
//! profiler built on top of it has exactly the same contract — program
//! counters, return addresses, a symbol table, and a clock — while remaining
//! deterministic and portable.
//!
//! The pieces are:
//!
//! * an instruction set ([`Instruction`]) with a fixed byte encoding, so
//!   programs have a real *text segment* that a static analyzer can crawl
//!   for call instructions (as gprof does with object code);
//! * a structured program [`builder`](ProgramBuilder) and a small textual
//!   [assembly language](asm) for writing workloads;
//! * a "compiler" pass ([`Program::compile`]) that lays routines out in
//!   memory and, like `cc -pg`, optionally inserts profiling prologues;
//! * an [`Executable`] image with a [`SymbolTable`];
//! * a cycle-accurate interpreter ([`Machine`]) with profiling hooks
//!   ([`ProfilingHooks`]) for the monitoring routine and the clock-tick
//!   sampler, plus exact ground-truth accounting ([`GroundTruth`]) that the
//!   experiments use to score the profiler's statistical estimates.
//!
//! # Example
//!
//! ```
//! use graphprof_machine::{Program, CompileOptions, Machine, NoHooks};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = Program::builder();
//! program
//!     .routine("main", |b| {
//!         b.work(10).call("helper").call("helper")
//!     })
//!     .routine("helper", |b| b.work(50));
//! let program = program.entry("main").build()?;
//! let exe = program.compile(&CompileOptions::default())?;
//! let mut machine = Machine::new(exe);
//! let summary = machine.run(&mut NoHooks)?;
//! assert!(summary.halted);
//! assert!(summary.clock >= 110);
//! # Ok(())
//! # }
//! ```

pub mod asm;
mod cost;
pub mod disasm;
mod encode;
mod error;
mod image;
mod interp;
mod isa;
pub mod objfile;
mod program;
mod truth;
pub mod verify;

pub use cost::CostModel;
pub use disasm::disassemble;
pub use encode::{decode_at, encode_into, encoded_len};
pub use error::{AsmError, CompileError, DecodeError, InterpError};
pub use image::{Executable, Symbol, SymbolId, SymbolTable};
pub use interp::{Machine, MachineConfig, NoHooks, ProfilingHooks, RunStatus, RunSummary};
pub use isa::{Addr, Instruction, NUM_COUNTERS, NUM_REGS, NUM_SLOTS};
pub use objfile::{read_executable, write_executable, ObjFileError};
pub use program::{
    BodyBuilder, CompileOptions, Instrumentation, ProfileSelection, Program, ProgramBuilder,
    Routine, Stmt,
};
pub use truth::{ArcTruth, GroundTruth, RoutineTruth};
pub use verify::{verify_executable, VerifyIssue};
