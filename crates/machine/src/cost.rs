//! The machine's cycle cost model.
//!
//! Costs are deliberately explicit and configurable: the paper's §7 claim —
//! that profiling "adds only five to thirty percent execution overhead" — is
//! a statement about the *ratio* of monitoring-routine cycles to useful
//! work, and the overhead experiment sweeps that ratio. The monitoring
//! instructions themselves ([`Instruction::Mcount`] and
//! [`Instruction::CountCall`]) have no fixed cost here; their cost is
//! whatever the profiling hook returns, so the monitor implementation (hash
//! probes and all) decides what it charges to the clock.
//!
//! [`Instruction::Mcount`]: crate::Instruction::Mcount
//! [`Instruction::CountCall`]: crate::Instruction::CountCall

/// Per-instruction cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a direct `call` (push return address, jump).
    pub call: u64,
    /// Cost of an indirect `calli` (slot load, push, jump).
    pub call_indirect: u64,
    /// Cost of `ret`.
    pub ret: u64,
    /// Cost of `jmp` and `decjnz`.
    pub branch: u64,
    /// Cost of `setreg` and `setslot`.
    pub set: u64,
    /// Cost of `nop`.
    pub nop: u64,
}

impl CostModel {
    /// A model loosely shaped like a 1980s minicomputer: calls and returns
    /// cost a few cycles, register operations one.
    pub const fn classic() -> Self {
        CostModel { call: 4, call_indirect: 6, ret: 4, branch: 1, set: 1, nop: 1 }
    }

    /// A RISC-flavored model: one-cycle calls and returns. With calls this
    /// cheap, the monitoring routine's fixed cost looms much larger — the
    /// cost-model ablation of the §7 overhead claim.
    pub const fn risc() -> Self {
        CostModel { call: 1, call_indirect: 2, ret: 1, branch: 1, set: 1, nop: 1 }
    }

    /// A heavily microcoded model: calls and returns cost a dozen cycles
    /// (VAX `CALLS` territory), which *hides* monitoring cost.
    pub const fn cisc() -> Self {
        CostModel { call: 12, call_indirect: 16, ret: 12, branch: 2, set: 2, nop: 1 }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::classic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_classic() {
        assert_eq!(CostModel::default(), CostModel::classic());
    }

    #[test]
    fn classic_costs_are_nonzero_where_it_matters() {
        let c = CostModel::classic();
        assert!(c.call > 0 && c.ret > 0);
        assert!(c.call_indirect >= c.call);
    }

    #[test]
    fn presets_order_call_costs() {
        assert!(CostModel::risc().call < CostModel::classic().call);
        assert!(CostModel::classic().call < CostModel::cisc().call);
    }
}
