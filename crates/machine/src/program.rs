//! Structured programs and the "compiler" that lays them out as executables.
//!
//! A [`Program`] is a set of named routines with structured bodies
//! ([`Stmt`]). [`Program::compile`] plays the role of `cc` in the paper:
//! it lowers structured statements to instructions, lays routines out in a
//! text segment, builds the symbol table, and — when asked, like `cc -pg` —
//! inserts a profiling prologue ([`Instruction::Mcount`] or
//! [`Instruction::CountCall`]) at the head of each profiled routine.
//! "Use of the monitoring routine requires no planning on part of a
//! programmer other than to request that augmented routine prologues be
//! produced during compilation" (§3).

use std::collections::HashMap;

use crate::encode::{encode_into, encoded_len};
use crate::error::CompileError;
use crate::image::{Executable, Symbol, SymbolTable};
use crate::isa::{Addr, Instruction, NUM_COUNTERS, NUM_REGS, NUM_SLOTS};

/// A structured statement in a routine body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Spend the given number of cycles of "computation" at one address.
    Work(u32),
    /// Call a routine by name.
    Call(String),
    /// Call through an indirect slot.
    CallIndirect(u8),
    /// Store the address of a named routine into an indirect slot.
    SetSlot(u8, String),
    /// Execute the body `count` times (zero executes it not at all).
    Loop {
        /// Number of iterations.
        count: u32,
        /// Statements repeated each iteration.
        body: Vec<Stmt>,
    },
    /// Load a recursion-budget counter register. Counters live in their
    /// own global register file ([`NUM_COUNTERS`] entries), distinct from
    /// the per-frame registers loops use, so a budget survives across
    /// calls and returns.
    SetCounter(u8, u32),
    /// Conditionally call a routine, consuming the counter register: each
    /// execution decrements the counter and calls only while it remains
    /// nonzero afterwards. Loading the counter with `n + 1` yields `n`
    /// calls. This is the machine's only conditional, and what makes
    /// *terminating* recursion — including the mutual recursion that
    /// produces call graph cycles — expressible. A never-enabled
    /// `CallWhile` also leaves a call instruction in the text that is
    /// visible to static call graph discovery but never traversed (§4).
    CallWhile(u8, String),
    /// Return early from the routine.
    Ret,
    /// Halt the whole machine.
    Halt,
}

/// A named routine: a body plus a per-routine profiling flag.
///
/// Routines with `profiled == false` model code "compiled without the
/// profiling augmentations" (§3.1): they get no prologue, run at full speed,
/// and no arcs into them are ever recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routine {
    name: String,
    body: Vec<Stmt>,
    profiled: bool,
}

impl Routine {
    /// Creates a routine.
    pub fn new(name: impl Into<String>, body: Vec<Stmt>, profiled: bool) -> Self {
        Routine { name: name.into(), body, profiled }
    }

    /// The routine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The routine's body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Whether this routine asks for a profiling prologue.
    pub fn profiled(&self) -> bool {
        self.profiled
    }
}

/// Which instrumentation the compiler inserts in routine prologues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Instrumentation {
    /// No prologue at all: an ordinary, unprofiled build.
    #[default]
    None,
    /// gprof-style: `mcount`, recording call graph arcs.
    CallGraph,
    /// prof(1)-style: a plain per-routine call counter.
    Counts,
}

/// Selects which routines receive the profiling prologue.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ProfileSelection {
    /// All routines whose [`Routine::profiled`] flag is set (the default;
    /// the flag defaults to `true`).
    #[default]
    All,
    /// Only the named routines (intersected with the per-routine flag).
    Only(Vec<String>),
    /// All flagged routines except the named ones.
    Except(Vec<String>),
}

impl ProfileSelection {
    fn selects(&self, name: &str) -> bool {
        match self {
            ProfileSelection::All => true,
            ProfileSelection::Only(names) => names.iter().any(|n| n == name),
            ProfileSelection::Except(names) => !names.iter().any(|n| n == name),
        }
    }
}

/// Options for [`Program::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// The prologue instrumentation to insert.
    pub instrumentation: Instrumentation,
    /// Which routines are instrumented.
    pub profile: ProfileSelection,
    /// Base address of the text segment. Must be nonzero so that the null
    /// address stays reserved for "spontaneous" callers.
    pub base: Addr,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            instrumentation: Instrumentation::None,
            profile: ProfileSelection::All,
            base: Addr::new(0x1000),
        }
    }
}

impl CompileOptions {
    /// Convenience: a gprof-style profiled build of every routine.
    pub fn profiled() -> Self {
        CompileOptions { instrumentation: Instrumentation::CallGraph, ..Self::default() }
    }

    /// Convenience: a prof(1)-style counter build of every routine.
    pub fn counted() -> Self {
        CompileOptions { instrumentation: Instrumentation::Counts, ..Self::default() }
    }
}

/// A complete program: routines plus an entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    routines: Vec<Routine>,
    entry: String,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// Creates a program from parts, validating routine references.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for duplicate routine names, unknown
    /// call/slot targets, a missing entry routine, or an empty program.
    pub fn new(routines: Vec<Routine>, entry: impl Into<String>) -> Result<Self, CompileError> {
        let entry = entry.into();
        if routines.is_empty() {
            return Err(CompileError::Empty);
        }
        let mut seen = HashMap::new();
        for r in &routines {
            if seen.insert(r.name.clone(), ()).is_some() {
                return Err(CompileError::DuplicateRoutine { name: r.name.clone() });
            }
        }
        if !seen.contains_key(&entry) {
            return Err(CompileError::UnknownEntry { name: entry });
        }
        for r in &routines {
            check_refs(&r.name, &r.body, &seen, 0)?;
        }
        Ok(Program { routines, entry })
    }

    /// The program's routines, in definition order.
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// The entry routine's name.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// Compiles the program to an [`Executable`].
    ///
    /// Routines are laid out in definition order starting at
    /// [`CompileOptions::base`]. When instrumentation is requested, each
    /// selected routine's prologue begins with the corresponding monitoring
    /// instruction, and the symbol is marked profiled.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::LoopTooDeep`] when loops nest deeper than the
    /// register file, or [`CompileError::SlotOutOfRange`] for bad slots.
    pub fn compile(&self, options: &CompileOptions) -> Result<Executable, CompileError> {
        assert!(!options.base.is_null(), "text base must be nonzero");
        let index: HashMap<&str, usize> =
            self.routines.iter().enumerate().map(|(i, r)| (r.name.as_str(), i)).collect();

        // Lower every routine to symbolic instructions first; sizes are
        // fixed per opcode, so routine sizes and entry addresses follow
        // without operand values.
        let mut lowered: Vec<Vec<LoInst>> = Vec::with_capacity(self.routines.len());
        let mut instrumented: Vec<bool> = Vec::with_capacity(self.routines.len());
        for r in &self.routines {
            let wants = r.profiled && options.profile.selects(&r.name);
            let prologue = match options.instrumentation {
                Instrumentation::None => None,
                Instrumentation::CallGraph => wants.then_some(Instruction::Mcount),
                Instrumentation::Counts => wants.then_some(Instruction::CountCall),
            };
            instrumented.push(prologue.is_some());
            let mut insts = Vec::new();
            if let Some(p) = prologue {
                insts.push(LoInst::Real(p));
            }
            lower_body(&r.name, &r.body, &index, 0, &mut insts)?;
            if !matches!(insts.last(), Some(LoInst::Real(Instruction::Ret | Instruction::Halt))) {
                insts.push(LoInst::Real(Instruction::Ret));
            }
            lowered.push(insts);
        }

        // Assign entry addresses.
        let mut entries = Vec::with_capacity(lowered.len());
        let mut cursor = options.base;
        for insts in &lowered {
            entries.push(cursor);
            let size: u32 = insts.iter().map(|i| encoded_len(i.shape())).sum();
            cursor = cursor.offset(size);
        }

        // Resolve symbolic operands and encode.
        let mut text = Vec::new();
        let mut symbols = Vec::with_capacity(self.routines.len());
        for (ri, insts) in lowered.iter().enumerate() {
            let start = entries[ri];
            // Byte offset of each instruction within the routine, for labels.
            let mut offsets = Vec::with_capacity(insts.len());
            let mut off = 0u32;
            for inst in insts {
                offsets.push(off);
                off += encoded_len(inst.shape());
            }
            for inst in insts {
                let real = match *inst {
                    LoInst::Real(i) => i,
                    LoInst::CallSym(target) => Instruction::Call(entries[target]),
                    LoInst::SetSlotSym(slot, target) => Instruction::SetSlot(slot, entries[target]),
                    LoInst::DecJnzLabel(reg, label_inst) => {
                        Instruction::DecJnz(reg, start.offset(offsets[label_inst]))
                    }
                    LoInst::DecCtrJnzLabel(ctr, label_inst) => {
                        Instruction::DecCtrJnz(ctr, start.offset(offsets[label_inst]))
                    }
                    LoInst::JmpLabel(label_inst) => {
                        Instruction::Jmp(start.offset(offsets[label_inst]))
                    }
                };
                encode_into(real, &mut text);
            }
            symbols.push(Symbol::new(self.routines[ri].name.clone(), start, off, instrumented[ri]));
        }

        let entry_idx = index[self.entry.as_str()];
        Ok(Executable::new(options.base, text, SymbolTable::new(symbols), entries[entry_idx]))
    }
}

/// Lowered instruction with unresolved symbolic operands.
#[derive(Debug, Clone, Copy)]
enum LoInst {
    Real(Instruction),
    /// Call routine by index.
    CallSym(usize),
    /// Set slot to routine entry by index.
    SetSlotSym(u8, usize),
    /// Conditional register branch to the instruction at the given index
    /// in this routine (backward, for loops).
    DecJnzLabel(u8, usize),
    /// Conditional counter branch to the instruction at the given index
    /// (forward, for `CallWhile`).
    DecCtrJnzLabel(u8, usize),
    /// Unconditional branch to the instruction at the given index.
    JmpLabel(usize),
}

impl LoInst {
    /// An instruction with the same encoded size, for layout.
    fn shape(self) -> Instruction {
        match self {
            LoInst::Real(i) => i,
            LoInst::CallSym(_) => Instruction::Call(Addr::NULL),
            LoInst::SetSlotSym(slot, _) => Instruction::SetSlot(slot, Addr::NULL),
            LoInst::DecJnzLabel(reg, _) => Instruction::DecJnz(reg, Addr::NULL),
            LoInst::DecCtrJnzLabel(ctr, _) => Instruction::DecCtrJnz(ctr, Addr::NULL),
            LoInst::JmpLabel(_) => Instruction::Jmp(Addr::NULL),
        }
    }
}

fn check_refs(
    routine: &str,
    body: &[Stmt],
    names: &HashMap<String, ()>,
    depth: usize,
) -> Result<(), CompileError> {
    for stmt in body {
        match stmt {
            Stmt::Call(name) | Stmt::SetSlot(_, name) | Stmt::CallWhile(_, name) => {
                if !names.contains_key(name) {
                    return Err(CompileError::UnknownRoutine {
                        from: routine.to_string(),
                        name: name.clone(),
                    });
                }
                if let Stmt::SetSlot(slot, _) = stmt {
                    if usize::from(*slot) >= NUM_SLOTS {
                        return Err(CompileError::SlotOutOfRange {
                            routine: routine.to_string(),
                            slot: *slot,
                        });
                    }
                }
                if let Stmt::CallWhile(reg, _) = stmt {
                    if usize::from(*reg) >= NUM_COUNTERS {
                        return Err(CompileError::RegisterOutOfRange {
                            routine: routine.to_string(),
                            register: *reg,
                        });
                    }
                }
            }
            Stmt::CallIndirect(slot) => {
                if usize::from(*slot) >= NUM_SLOTS {
                    return Err(CompileError::SlotOutOfRange {
                        routine: routine.to_string(),
                        slot: *slot,
                    });
                }
            }
            Stmt::SetCounter(reg, _) => {
                if usize::from(*reg) >= NUM_COUNTERS {
                    return Err(CompileError::RegisterOutOfRange {
                        routine: routine.to_string(),
                        register: *reg,
                    });
                }
            }
            Stmt::Loop { body, .. } => {
                if depth + 1 >= NUM_REGS {
                    return Err(CompileError::LoopTooDeep {
                        routine: routine.to_string(),
                        max: NUM_REGS,
                    });
                }
                check_refs(routine, body, names, depth + 1)?;
            }
            Stmt::Work(_) | Stmt::Ret | Stmt::Halt => {}
        }
    }
    Ok(())
}

fn lower_body(
    routine: &str,
    body: &[Stmt],
    index: &HashMap<&str, usize>,
    depth: usize,
    out: &mut Vec<LoInst>,
) -> Result<(), CompileError> {
    for stmt in body {
        match stmt {
            Stmt::Work(n) => out.push(LoInst::Real(Instruction::Work(*n))),
            Stmt::Call(name) => out.push(LoInst::CallSym(index[name.as_str()])),
            Stmt::CallIndirect(slot) => out.push(LoInst::Real(Instruction::CallIndirect(*slot))),
            Stmt::SetSlot(slot, name) => out.push(LoInst::SetSlotSym(*slot, index[name.as_str()])),
            Stmt::Loop { count, body } => {
                if *count == 0 {
                    continue;
                }
                if depth + 1 >= NUM_REGS {
                    return Err(CompileError::LoopTooDeep {
                        routine: routine.to_string(),
                        max: NUM_REGS,
                    });
                }
                let reg = depth as u8;
                out.push(LoInst::Real(Instruction::SetReg(reg, *count)));
                let top = out.len();
                lower_body(routine, body, index, depth + 1, out)?;
                if out.len() == top {
                    // Empty loop body: nothing to repeat; drop the counter.
                    out.pop();
                    continue;
                }
                out.push(LoInst::DecJnzLabel(reg, top));
            }
            Stmt::SetCounter(ctr, value) => {
                out.push(LoInst::Real(Instruction::SetCtr(*ctr, *value)))
            }
            Stmt::CallWhile(reg, name) => {
                // decjnz reg, Lcall ; jmp Lend ; Lcall: call name ; Lend:
                let decjnz_pos = out.len();
                out.push(LoInst::DecCtrJnzLabel(*reg, 0));
                let jmp_pos = out.len();
                out.push(LoInst::JmpLabel(0));
                let lcall = out.len();
                out.push(LoInst::CallSym(index[name.as_str()]));
                let lend = out.len();
                out[decjnz_pos] = LoInst::DecCtrJnzLabel(*reg, lcall);
                // `lend` names the next instruction; one always follows,
                // because lowering appends a final `ret` when the body does
                // not already end in `ret`/`halt`.
                out[jmp_pos] = LoInst::JmpLabel(lend);
            }
            Stmt::Ret => out.push(LoInst::Real(Instruction::Ret)),
            Stmt::Halt => out.push(LoInst::Real(Instruction::Halt)),
        }
    }
    Ok(())
}

/// Builds a [`Program`] routine by routine.
///
/// ```
/// use graphprof_machine::Program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Program::builder();
/// b.routine("main", |r| r.loop_n(3, |l| l.call("leaf")).work(5));
/// b.routine("leaf", |r| r.work(100));
/// let program = b.entry("main").build()?;
/// assert_eq!(program.routines().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    routines: Vec<Routine>,
    entry: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Adds a profiled routine whose body is described by the closure.
    pub fn routine(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(BodyBuilder) -> BodyBuilder,
    ) -> &mut Self {
        self.routines.push(Routine::new(name, f(BodyBuilder::new()).finish(), true));
        self
    }

    /// Adds a routine compiled *without* profiling augmentation (§3.1).
    pub fn noprofile_routine(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(BodyBuilder) -> BodyBuilder,
    ) -> &mut Self {
        self.routines.push(Routine::new(name, f(BodyBuilder::new()).finish(), false));
        self
    }

    /// Adds an already-constructed routine.
    pub fn push(&mut self, routine: Routine) -> &mut Self {
        self.routines.push(routine);
        self
    }

    /// Sets the entry routine (defaults to `main` if defined, else the
    /// first routine).
    pub fn entry(&mut self, name: impl Into<String>) -> &mut Self {
        self.entry = Some(name.into());
        self
    }

    /// Validates and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// See [`Program::new`].
    pub fn build(&mut self) -> Result<Program, CompileError> {
        let routines = std::mem::take(&mut self.routines);
        let entry = match self.entry.take() {
            Some(e) => e,
            None if routines.iter().any(|r| r.name() == "main") => "main".to_string(),
            None => routines.first().map(|r| r.name().to_string()).unwrap_or_default(),
        };
        Program::new(routines, entry)
    }
}

/// Builds a routine body with a fluent interface.
#[derive(Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
}

impl BodyBuilder {
    /// Creates an empty body.
    pub fn new() -> Self {
        BodyBuilder::default()
    }

    /// Appends `work n`.
    pub fn work(mut self, cycles: u32) -> Self {
        self.stmts.push(Stmt::Work(cycles));
        self
    }

    /// Appends a direct call.
    pub fn call(mut self, name: impl Into<String>) -> Self {
        self.stmts.push(Stmt::Call(name.into()));
        self
    }

    /// Appends `count` direct calls to the same routine, via a loop.
    pub fn call_n(self, name: impl Into<String>, count: u32) -> Self {
        let name = name.into();
        self.loop_n(count, |b| b.call(name.clone()))
    }

    /// Appends an indirect call through a slot.
    pub fn call_indirect(mut self, slot: u8) -> Self {
        self.stmts.push(Stmt::CallIndirect(slot));
        self
    }

    /// Stores a routine address into a slot.
    pub fn set_slot(mut self, slot: u8, name: impl Into<String>) -> Self {
        self.stmts.push(Stmt::SetSlot(slot, name.into()));
        self
    }

    /// Appends a counted loop around the closure-described body.
    pub fn loop_n(mut self, count: u32, f: impl FnOnce(BodyBuilder) -> BodyBuilder) -> Self {
        self.stmts.push(Stmt::Loop { count, body: f(BodyBuilder::new()).finish() });
        self
    }

    /// Loads a recursion-budget counter register.
    pub fn set_counter(mut self, reg: u8, value: u32) -> Self {
        self.stmts.push(Stmt::SetCounter(reg, value));
        self
    }

    /// Appends a conditional call that decrements the counter register and
    /// calls only while it stays nonzero — the idiom for *terminating*
    /// (possibly mutual) recursion. A counter loaded with `n + 1` yields
    /// `n` calls.
    pub fn call_while(mut self, reg: u8, name: impl Into<String>) -> Self {
        self.stmts.push(Stmt::CallWhile(reg, name.into()));
        self
    }

    /// Appends an early return.
    pub fn ret(mut self) -> Self {
        self.stmts.push(Stmt::Ret);
        self
    }

    /// Appends a machine halt.
    pub fn halt(mut self) -> Self {
        self.stmts.push(Stmt::Halt);
        self
    }

    /// Returns the accumulated statements.
    pub fn finish(self) -> Vec<Stmt> {
        self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::SymbolId;

    fn two_routine_program() -> Program {
        let mut b = Program::builder();
        b.routine("main", |r| r.work(10).call("leaf").call("leaf"));
        b.routine("leaf", |r| r.work(3));
        b.build().unwrap()
    }

    #[test]
    fn build_defaults_entry_to_main() {
        let p = two_routine_program();
        assert_eq!(p.entry(), "main");
    }

    #[test]
    fn build_defaults_entry_to_first_routine_without_main() {
        let mut b = Program::builder();
        b.routine("start", |r| r.work(1));
        let p = b.build().unwrap();
        assert_eq!(p.entry(), "start");
    }

    #[test]
    fn unknown_call_target_is_rejected() {
        let mut b = Program::builder();
        b.routine("main", |r| r.call("ghost"));
        let err = b.build().unwrap_err();
        assert_eq!(err, CompileError::UnknownRoutine { from: "main".into(), name: "ghost".into() });
    }

    #[test]
    fn duplicate_routine_is_rejected() {
        let mut b = Program::builder();
        b.routine("x", |r| r.work(1));
        b.routine("x", |r| r.work(2));
        assert_eq!(b.build().unwrap_err(), CompileError::DuplicateRoutine { name: "x".into() });
    }

    #[test]
    fn unknown_entry_is_rejected() {
        let mut b = Program::builder();
        b.routine("a", |r| r.work(1));
        b.entry("nope");
        assert_eq!(b.build().unwrap_err(), CompileError::UnknownEntry { name: "nope".into() });
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(Program::builder().build().unwrap_err(), CompileError::Empty);
    }

    #[test]
    fn compile_lays_out_routines_in_order() {
        let p = two_routine_program();
        let exe = p.compile(&CompileOptions::default()).unwrap();
        let (_, main) = exe.symbols().by_name("main").unwrap();
        let (_, leaf) = exe.symbols().by_name("leaf").unwrap();
        assert_eq!(main.addr(), Addr::new(0x1000));
        assert_eq!(leaf.addr(), main.end());
        assert_eq!(exe.entry(), main.addr());
        assert_eq!(exe.end().checked_sub(exe.base()).unwrap() as usize, exe.text().len());
    }

    #[test]
    fn unprofiled_build_inserts_no_prologue() {
        let p = two_routine_program();
        let exe = p.compile(&CompileOptions::default()).unwrap();
        for (id, sym) in exe.symbols().iter() {
            assert!(!sym.profiled());
            let insts = exe.disassemble_symbol(id).unwrap();
            assert!(!insts
                .iter()
                .any(|(_, i)| matches!(i, Instruction::Mcount | Instruction::CountCall)));
        }
    }

    #[test]
    fn profiled_build_inserts_mcount_prologue() {
        let p = two_routine_program();
        let exe = p.compile(&CompileOptions::profiled()).unwrap();
        for (id, sym) in exe.symbols().iter() {
            assert!(sym.profiled());
            let insts = exe.disassemble_symbol(id).unwrap();
            assert_eq!(insts[0].1, Instruction::Mcount, "{}", sym.name());
        }
    }

    #[test]
    fn counted_build_inserts_countcall_prologue() {
        let p = two_routine_program();
        let exe = p.compile(&CompileOptions::counted()).unwrap();
        let (id, _) = exe.symbols().by_name("leaf").unwrap();
        let insts = exe.disassemble_symbol(id).unwrap();
        assert_eq!(insts[0].1, Instruction::CountCall);
    }

    #[test]
    fn profile_selection_only_limits_instrumentation() {
        let p = two_routine_program();
        let options = CompileOptions {
            profile: ProfileSelection::Only(vec!["leaf".into()]),
            ..CompileOptions::profiled()
        };
        let exe = p.compile(&options).unwrap();
        assert!(!exe.symbols().by_name("main").unwrap().1.profiled());
        assert!(exe.symbols().by_name("leaf").unwrap().1.profiled());
    }

    #[test]
    fn profile_selection_except_excludes() {
        let p = two_routine_program();
        let options = CompileOptions {
            profile: ProfileSelection::Except(vec!["leaf".into()]),
            ..CompileOptions::profiled()
        };
        let exe = p.compile(&options).unwrap();
        assert!(exe.symbols().by_name("main").unwrap().1.profiled());
        assert!(!exe.symbols().by_name("leaf").unwrap().1.profiled());
    }

    #[test]
    fn noprofile_routine_flag_overrides_selection() {
        let mut b = Program::builder();
        b.routine("main", |r| r.call("lib"));
        b.noprofile_routine("lib", |r| r.work(1));
        let exe = b.build().unwrap().compile(&CompileOptions::profiled()).unwrap();
        assert!(!exe.symbols().by_name("lib").unwrap().1.profiled());
    }

    #[test]
    fn loop_lowering_emits_counter_and_backward_branch() {
        let mut b = Program::builder();
        b.routine("main", |r| r.loop_n(5, |l| l.work(2)));
        let exe = b.build().unwrap().compile(&CompileOptions::default()).unwrap();
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        let kinds: Vec<_> = insts.iter().map(|(_, i)| i.mnemonic()).collect();
        assert_eq!(kinds, ["setreg", "work", "decjnz", "ret"]);
        let work_addr = insts[1].0;
        match insts[2].1 {
            Instruction::DecJnz(0, target) => assert_eq!(target, work_addr),
            other => panic!("expected decjnz, got {other}"),
        }
    }

    #[test]
    fn zero_and_empty_loops_vanish() {
        let mut b = Program::builder();
        b.routine("main", |r| r.loop_n(0, |l| l.work(2)).loop_n(9, |l| l).work(1));
        let exe = b.build().unwrap().compile(&CompileOptions::default()).unwrap();
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        let kinds: Vec<_> = insts.iter().map(|(_, i)| i.mnemonic()).collect();
        assert_eq!(kinds, ["work", "ret"]);
    }

    #[test]
    fn nested_loops_use_distinct_registers() {
        let mut b = Program::builder();
        b.routine("main", |r| r.loop_n(2, |o| o.loop_n(3, |i| i.work(1))));
        let exe = b.build().unwrap().compile(&CompileOptions::default()).unwrap();
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        let regs: Vec<u8> = insts
            .iter()
            .filter_map(|(_, i)| match i {
                Instruction::SetReg(r, _) => Some(*r),
                _ => None,
            })
            .collect();
        assert_eq!(regs, [0, 1]);
    }

    #[test]
    fn too_deep_loop_nest_is_rejected() {
        fn nest(depth: usize) -> Vec<Stmt> {
            if depth == 0 {
                vec![Stmt::Work(1)]
            } else {
                vec![Stmt::Loop { count: 1, body: nest(depth - 1) }]
            }
        }
        let r = Routine::new("main", nest(NUM_REGS), true);
        let err = Program::new(vec![r], "main").unwrap_err();
        assert!(matches!(err, CompileError::LoopTooDeep { .. }));
    }

    #[test]
    fn slot_out_of_range_is_rejected() {
        let mut b = Program::builder();
        b.routine("main", |r| r.call_indirect(NUM_SLOTS as u8));
        assert!(matches!(b.build().unwrap_err(), CompileError::SlotOutOfRange { .. }));
    }

    #[test]
    fn trailing_ret_not_duplicated() {
        let mut b = Program::builder();
        b.routine("main", |r| r.work(1).ret());
        let exe = b.build().unwrap().compile(&CompileOptions::default()).unwrap();
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        let rets = insts.iter().filter(|(_, i)| matches!(i, Instruction::Ret)).count();
        assert_eq!(rets, 1);
    }

    #[test]
    fn call_n_expands_to_loop() {
        let mut b = Program::builder();
        b.routine("main", |r| r.call_n("leaf", 4));
        b.routine("leaf", |r| r.work(1));
        let exe = b.build().unwrap().compile(&CompileOptions::default()).unwrap();
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        let kinds: Vec<_> = insts.iter().map(|(_, i)| i.mnemonic()).collect();
        assert_eq!(kinds, ["setreg", "call", "decjnz", "ret"]);
    }

    #[test]
    fn set_slot_resolves_routine_address() {
        let mut b = Program::builder();
        b.routine("main", |r| r.set_slot(2, "leaf").call_indirect(2));
        b.routine("leaf", |r| r.work(1));
        let exe = b.build().unwrap().compile(&CompileOptions::default()).unwrap();
        let leaf_addr = exe.symbols().by_name("leaf").unwrap().1.addr();
        let insts = exe.disassemble_symbol(SymbolId::new(0)).unwrap();
        assert_eq!(insts[0].1, Instruction::SetSlot(2, leaf_addr));
    }
}
