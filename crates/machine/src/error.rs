//! Error types for the machine substrate.

use std::error::Error;
use std::fmt;

use crate::isa::Addr;

/// An error decoding the text segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The text ended in the middle of an instruction.
    Truncated {
        /// Byte offset of the instruction being decoded.
        offset: usize,
    },
    /// An unknown opcode byte.
    BadOpcode {
        /// Byte offset of the instruction being decoded.
        offset: usize,
        /// The offending opcode byte.
        opcode: u8,
    },
    /// A register or slot operand out of range.
    BadOperand {
        /// Byte offset of the instruction being decoded.
        offset: usize,
        /// The offending operand value.
        operand: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated { offset } => {
                write!(f, "text truncated inside instruction at offset {offset}")
            }
            DecodeError::BadOpcode { offset, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {offset}")
            }
            DecodeError::BadOperand { offset, operand } => {
                write!(f, "operand {operand} out of range at offset {offset}")
            }
        }
    }
}

impl Error for DecodeError {}

/// An error building or compiling a [`Program`](crate::Program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A call or slot assignment referenced a routine that does not exist.
    UnknownRoutine {
        /// The routine containing the reference.
        from: String,
        /// The missing routine name.
        name: String,
    },
    /// Two routines share a name.
    DuplicateRoutine {
        /// The duplicated name.
        name: String,
    },
    /// The declared entry routine does not exist.
    UnknownEntry {
        /// The missing entry name.
        name: String,
    },
    /// The program has no routines.
    Empty,
    /// Loops nested deeper than the register file allows.
    LoopTooDeep {
        /// The routine containing the loop nest.
        routine: String,
        /// Maximum supported nesting depth.
        max: usize,
    },
    /// A slot index outside `0..NUM_SLOTS`.
    SlotOutOfRange {
        /// The routine containing the reference.
        routine: String,
        /// The offending slot index.
        slot: u8,
    },
    /// A counter register outside `0..NUM_REGS`.
    RegisterOutOfRange {
        /// The routine containing the reference.
        routine: String,
        /// The offending register index.
        register: u8,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownRoutine { from, name } => {
                write!(f, "routine `{from}` references unknown routine `{name}`")
            }
            CompileError::DuplicateRoutine { name } => {
                write!(f, "duplicate routine `{name}`")
            }
            CompileError::UnknownEntry { name } => {
                write!(f, "entry routine `{name}` is not defined")
            }
            CompileError::Empty => write!(f, "program has no routines"),
            CompileError::LoopTooDeep { routine, max } => {
                write!(f, "loops in `{routine}` nest deeper than {max} levels")
            }
            CompileError::SlotOutOfRange { routine, slot } => {
                write!(f, "slot {slot} out of range in `{routine}`")
            }
            CompileError::RegisterOutOfRange { routine, register } => {
                write!(f, "register {register} out of range in `{routine}`")
            }
        }
    }
}

impl Error for CompileError {}

/// A run-time fault in the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// The program counter left the text segment or landed on bad bytes.
    Decode(DecodeError),
    /// A call or jump targeted an address outside the text segment.
    BadJump {
        /// Program counter of the transfer instruction.
        pc: Addr,
        /// The invalid target.
        target: Addr,
    },
    /// An indirect call went through a slot that was never set.
    NullSlot {
        /// Program counter of the `calli`.
        pc: Addr,
        /// The slot index.
        slot: u8,
    },
    /// The call stack exceeded the configured maximum depth.
    StackOverflow {
        /// Program counter of the offending call.
        pc: Addr,
        /// The configured depth limit.
        limit: usize,
    },
    /// `run` was called on a machine that already halted.
    AlreadyHalted,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InterpError::Decode(e) => write!(f, "decode fault: {e}"),
            InterpError::BadJump { pc, target } => {
                write!(f, "control transfer at {pc} to invalid address {target}")
            }
            InterpError::NullSlot { pc, slot } => {
                write!(f, "indirect call at {pc} through unset slot {slot}")
            }
            InterpError::StackOverflow { pc, limit } => {
                write!(f, "call stack exceeded {limit} frames at {pc}")
            }
            InterpError::AlreadyHalted => write!(f, "machine already halted"),
        }
    }
}

impl Error for InterpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InterpError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for InterpError {
    fn from(e: DecodeError) -> Self {
        InterpError::Decode(e)
    }
}

/// A diagnostic from the textual assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// 1-based source column of the problem.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            DecodeError::Truncated { offset: 3 }.to_string(),
            CompileError::Empty.to_string(),
            InterpError::AlreadyHalted.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
        }
    }

    #[test]
    fn interp_error_sources_decode_error() {
        let e = InterpError::from(DecodeError::BadOpcode { offset: 1, opcode: 0x7f });
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&InterpError::AlreadyHalted).is_none());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_bounds<T: Send + Sync + std::fmt::Debug>() {}
        assert_bounds::<DecodeError>();
        assert_bounds::<CompileError>();
        assert_bounds::<InterpError>();
        assert_bounds::<AsmError>();
    }

    #[test]
    fn asm_error_display_includes_position() {
        let e = AsmError { line: 4, col: 9, message: "bad token".into() };
        assert_eq!(e.to_string(), "4:9: bad token");
    }
}
