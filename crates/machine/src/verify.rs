//! Executable verification: a linker-style sanity pass.
//!
//! The object-file reader validates *structure* (ranges, ordering, UTF-8);
//! this pass validates *semantics*: every byte of text disassembles, every
//! direct call and slot load targets a routine entry, every intra-routine
//! branch stays inside its routine, and the entry point is a routine
//! start. `gpx-as` runs it on everything it emits, and the profiler's
//! static call graph discovery can assume verified inputs.

use crate::encode::encoded_len;
use crate::error::DecodeError;
use crate::image::Executable;
use crate::isa::{Addr, Instruction};

/// A finding from [`verify_executable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyIssue {
    /// The text failed to disassemble.
    BadText(DecodeError),
    /// A direct call or slot load targets something that is not a routine
    /// entry point.
    BadCallTarget {
        /// Address of the offending instruction.
        at: Addr,
        /// The target that is not a routine entry.
        target: Addr,
    },
    /// A branch (`jmp`/`decjnz`/`decctrjnz`) leaves its routine.
    BranchEscapesRoutine {
        /// Address of the offending instruction.
        at: Addr,
        /// The out-of-routine target.
        target: Addr,
    },
    /// The entry point is not a routine entry.
    BadEntry {
        /// The executable's declared entry.
        entry: Addr,
    },
    /// A routine is unreachable from the entry point through direct calls
    /// (it may still be reached indirectly; this is a lint, not an error).
    Unreachable {
        /// The unreachable routine's name.
        name: String,
    },
}

impl std::fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyIssue::BadText(e) => write!(f, "text does not disassemble: {e}"),
            VerifyIssue::BadCallTarget { at, target } => {
                write!(f, "call at {at} targets {target}, not a routine entry")
            }
            VerifyIssue::BranchEscapesRoutine { at, target } => {
                write!(f, "branch at {at} leaves its routine (to {target})")
            }
            VerifyIssue::BadEntry { entry } => {
                write!(f, "entry point {entry} is not a routine entry")
            }
            VerifyIssue::Unreachable { name } => {
                write!(f, "routine `{name}` is unreachable by direct calls")
            }
        }
    }
}

impl VerifyIssue {
    /// Whether the issue is a hard error (as opposed to the reachability
    /// lint).
    pub fn is_error(&self) -> bool {
        !matches!(self, VerifyIssue::Unreachable { .. })
    }
}

/// Verifies an executable, returning every issue found (empty = clean).
///
/// Unreachability is reported as a lint ([`VerifyIssue::is_error`] is
/// `false`) because indirect calls and never-armed conditional calls are
/// legitimate reasons for a routine to look unreachable statically — the
/// same §2 blind spot the profiler itself has.
pub fn verify_executable(exe: &Executable) -> Vec<VerifyIssue> {
    let mut issues = Vec::new();
    let symbols = exe.symbols();
    let is_entry_point =
        |addr: Addr| symbols.lookup_pc(addr).map(|(_, s)| s.addr() == addr).unwrap_or(false);

    if !is_entry_point(exe.entry()) {
        issues.push(VerifyIssue::BadEntry { entry: exe.entry() });
    }

    let mut callees_of: Vec<Vec<usize>> = vec![Vec::new(); symbols.len()];
    for (id, sym) in symbols.iter() {
        let insts = match exe.disassemble_symbol(id) {
            Ok(insts) => insts,
            Err(e) => {
                issues.push(VerifyIssue::BadText(e));
                continue;
            }
        };
        for (addr, inst) in insts {
            match inst {
                Instruction::Call(target) | Instruction::SetSlot(_, target) => {
                    match symbols.lookup_pc(target) {
                        Some((callee_id, callee)) if callee.addr() == target => {
                            callees_of[id.index()].push(callee_id.index());
                        }
                        _ => issues.push(VerifyIssue::BadCallTarget { at: addr, target }),
                    }
                }
                Instruction::Jmp(target)
                | Instruction::DecJnz(_, target)
                | Instruction::DecCtrJnz(_, target) => {
                    if !sym.contains(target) {
                        issues.push(VerifyIssue::BranchEscapesRoutine { at: addr, target });
                    }
                }
                _ => {
                    let _ = encoded_len(inst);
                }
            }
        }
    }

    // Reachability lint over direct calls from the entry routine.
    if let Some((entry_id, _)) = symbols.lookup_pc(exe.entry()) {
        let mut reachable = vec![false; symbols.len()];
        let mut stack = vec![entry_id.index()];
        reachable[entry_id.index()] = true;
        while let Some(i) = stack.pop() {
            for &j in &callees_of[i] {
                if !std::mem::replace(&mut reachable[j], true) {
                    stack.push(j);
                }
            }
        }
        for (id, sym) in symbols.iter() {
            if !reachable[id.index()] {
                issues.push(VerifyIssue::Unreachable { name: sym.name().to_string() });
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CompileOptions;

    fn compile(source: &str) -> Executable {
        crate::asm::parse(source).unwrap().compile(&CompileOptions::profiled()).unwrap()
    }

    #[test]
    fn compiler_output_is_clean() {
        let exe = compile(
            "routine main { loop 3 { call a } setslot 0, b calli 0 }
             routine a { work 5 callwhile 7, a }
             routine b { work 5 }",
        );
        let issues = verify_executable(&exe);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn unreachable_routines_are_linted_not_errored() {
        let exe = compile(
            "routine main { work 5 }
             routine island { work 5 }",
        );
        let issues = verify_executable(&exe);
        assert_eq!(issues.len(), 1);
        assert!(!issues[0].is_error());
        assert!(matches!(&issues[0], VerifyIssue::Unreachable { name } if name == "island"));
    }

    #[test]
    fn indirect_targets_count_as_reachable() {
        let exe = compile(
            "routine main { setslot 0, plugin calli 0 }
             routine plugin { work 5 }",
        );
        // setslot names plugin, so the lint treats it as reachable.
        assert!(verify_executable(&exe).is_empty());
    }

    #[test]
    fn corrupted_call_target_is_an_error() {
        let exe = compile(
            "routine main { call a }
             routine a { work 500 }",
        );
        // Patch the call's target to the middle of `a`.
        let mut bytes = crate::objfile::write_executable(&exe);
        let a = exe.symbols().by_name("a").unwrap().1.addr();
        let mid = a.get() + 2;
        // Find the call's 4-byte LE target within the text and overwrite.
        let text_start = 20;
        let text = &mut bytes[text_start..text_start + exe.text().len()];
        let needle = a.get().to_le_bytes();
        let pos = text.windows(4).position(|w| w == needle).expect("call target in text");
        text[pos..pos + 4].copy_from_slice(&mid.to_le_bytes());
        let patched = crate::objfile::read_executable(&bytes).unwrap();
        let issues = verify_executable(&patched);
        assert!(
            issues.iter().any(|i| matches!(i, VerifyIssue::BadCallTarget { .. })),
            "{issues:?}"
        );
        assert!(issues.iter().any(VerifyIssue::is_error));
    }

    #[test]
    fn corrupted_text_is_reported() {
        use crate::image::{Symbol, SymbolTable};
        let symbols = SymbolTable::new(vec![Symbol::new("junk", Addr::new(0x1000), 4, false)]);
        let exe = Executable::new(Addr::new(0x1000), vec![0xee; 4], symbols, Addr::new(0x1000));
        let issues = verify_executable(&exe);
        assert!(issues.iter().any(|i| matches!(i, VerifyIssue::BadText(_))));
    }

    #[test]
    fn display_is_informative() {
        let issue = VerifyIssue::BadCallTarget { at: Addr::new(0x1000), target: Addr::new(0x2002) };
        assert!(issue.to_string().contains("0x2002"));
    }
}
