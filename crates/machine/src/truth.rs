//! Exact execution accounting ("ground truth").
//!
//! The machine knows things a real 1982 profiler could not afford to
//! measure: the exact number of cycles spent in every routine, the exact
//! inclusive time of every routine (cycles during which it was anywhere on
//! the call stack, counted once), and the exact cycles spent beneath every
//! individual call arc. gprof *estimates* these from a statistical PC
//! histogram plus arc counts; the experiments score those estimates against
//! this ground truth (sampling error, and the §4 "average time per call"
//! assumption error).

use crate::isa::Addr;

/// Exact per-routine accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutineTruth {
    /// Routine name from the symbol table.
    pub name: String,
    /// Routine entry address.
    pub entry: Addr,
    /// Number of times the routine was called (the entry routine counts
    /// its spontaneous activation).
    pub calls: u64,
    /// Cycles spent executing the routine's own instructions, including
    /// any instrumentation prologue cost charged inside it.
    pub self_cycles: u64,
    /// Cycles during which the routine was on the call stack at least once
    /// (inclusive time; recursion is not double-counted).
    pub total_cycles: u64,
}

/// Exact per-arc accounting, keyed the same way the monitoring routine keys
/// arcs: by the caller's return address and the callee's entry address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcTruth {
    /// Return address in the caller (identifies the call site).
    pub from_pc: Addr,
    /// Callee entry address.
    pub callee: Addr,
    /// Traversal count.
    pub count: u64,
    /// Cycles spent beneath this arc: from each call through its matching
    /// return, including all descendants. For recursive arcs an outer call
    /// includes its nested calls, by definition of "time under this call".
    pub cycles_under: u64,
}

/// A snapshot of exact execution accounting.
///
/// Produced by [`Machine::ground_truth`](crate::Machine::ground_truth); open
/// call frames are closed at the snapshot clock, so a snapshot taken mid-run
/// is internally consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    routines: Vec<RoutineTruth>,
    arcs: Vec<ArcTruth>,
    clock: u64,
}

impl GroundTruth {
    pub(crate) fn new(routines: Vec<RoutineTruth>, mut arcs: Vec<ArcTruth>, clock: u64) -> Self {
        arcs.sort_by_key(|a| (a.from_pc, a.callee));
        GroundTruth { routines, arcs, clock }
    }

    /// Per-routine truths, in symbol-table (address) order.
    pub fn routines(&self) -> &[RoutineTruth] {
        &self.routines
    }

    /// Per-arc truths, sorted by `(from_pc, callee)`.
    pub fn arcs(&self) -> &[ArcTruth] {
        &self.arcs
    }

    /// The machine clock at the time of the snapshot.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Looks up a routine's truth by name.
    pub fn routine(&self, name: &str) -> Option<&RoutineTruth> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// Sums arc counts and cycles for all call sites targeting `callee`.
    pub fn arcs_into(&self, callee: Addr) -> (u64, u64) {
        self.arcs
            .iter()
            .filter(|a| a.callee == callee)
            .fold((0, 0), |(c, cy), a| (c + a.count, cy + a.cycles_under))
    }

    /// Total self cycles across all routines; equals the snapshot clock when
    /// every executed cycle fell inside a known symbol.
    pub fn total_self_cycles(&self) -> u64 {
        self.routines.iter().map(|r| r.self_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundTruth {
        GroundTruth::new(
            vec![
                RoutineTruth {
                    name: "main".into(),
                    entry: Addr::new(0x1000),
                    calls: 1,
                    self_cycles: 10,
                    total_cycles: 100,
                },
                RoutineTruth {
                    name: "leaf".into(),
                    entry: Addr::new(0x1100),
                    calls: 3,
                    self_cycles: 90,
                    total_cycles: 90,
                },
            ],
            vec![
                ArcTruth {
                    from_pc: Addr::new(0x1010),
                    callee: Addr::new(0x1100),
                    count: 2,
                    cycles_under: 60,
                },
                ArcTruth {
                    from_pc: Addr::new(0x1005),
                    callee: Addr::new(0x1100),
                    count: 1,
                    cycles_under: 30,
                },
            ],
            100,
        )
    }

    #[test]
    fn arcs_are_sorted_by_site_then_callee() {
        let t = sample();
        assert_eq!(t.arcs()[0].from_pc, Addr::new(0x1005));
        assert_eq!(t.arcs()[1].from_pc, Addr::new(0x1010));
    }

    #[test]
    fn arcs_into_aggregates_sites() {
        let t = sample();
        assert_eq!(t.arcs_into(Addr::new(0x1100)), (3, 90));
        assert_eq!(t.arcs_into(Addr::new(0x9999)), (0, 0));
    }

    #[test]
    fn routine_lookup_by_name() {
        let t = sample();
        assert_eq!(t.routine("leaf").unwrap().calls, 3);
        assert!(t.routine("ghost").is_none());
    }

    #[test]
    fn total_self_cycles_matches_clock() {
        let t = sample();
        assert_eq!(t.total_self_cycles(), t.clock());
    }
}
