//! Property-based tests for the machine substrate: encoding, parsing,
//! compilation, execution accounting, and the object file format.

use proptest::prelude::*;

use graphprof_machine::{
    asm, decode_at, disassemble, encode_into, encoded_len, objfile, Addr, CompileOptions,
    Instruction, Machine, NoHooks, Program, Routine, Stmt, NUM_COUNTERS, NUM_REGS, NUM_SLOTS,
};

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        any::<u32>().prop_map(Instruction::Work),
        any::<u32>().prop_map(|a| Instruction::Call(Addr::new(a))),
        (0..NUM_SLOTS as u8).prop_map(Instruction::CallIndirect),
        ((0..NUM_SLOTS as u8), any::<u32>())
            .prop_map(|(s, a)| Instruction::SetSlot(s, Addr::new(a))),
        Just(Instruction::Ret),
        ((0..NUM_REGS as u8), any::<u32>()).prop_map(|(r, v)| Instruction::SetReg(r, v)),
        ((0..NUM_REGS as u8), any::<u32>()).prop_map(|(r, a)| Instruction::DecJnz(r, Addr::new(a))),
        ((0..NUM_COUNTERS as u8), any::<u32>()).prop_map(|(c, v)| Instruction::SetCtr(c, v)),
        ((0..NUM_COUNTERS as u8), any::<u32>())
            .prop_map(|(c, a)| Instruction::DecCtrJnz(c, Addr::new(a))),
        any::<u32>().prop_map(|a| Instruction::Jmp(Addr::new(a))),
        Just(Instruction::Mcount),
        Just(Instruction::CountCall),
        Just(Instruction::Nop),
        Just(Instruction::Halt),
    ]
}

/// A random structured statement tree of bounded depth, calling only
/// later-indexed routines so programs terminate.
fn arb_body(max_callee: usize) -> impl Strategy<Value = Vec<Stmt>> {
    let leaf = prop_oneof![
        (1u32..200).prop_map(Stmt::Work),
        (0..max_callee.max(1)).prop_map(move |i| Stmt::Call(format!("g{i}"))),
    ];
    proptest::collection::vec(
        prop_oneof![
            leaf.clone(),
            ((1u32..4), proptest::collection::vec(leaf, 1..3))
                .prop_map(|(count, body)| Stmt::Loop { count, body }),
        ],
        1..5,
    )
}

fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..6)
        .prop_flat_map(|n| {
            let bodies: Vec<_> = (0..n)
                .map(|i| {
                    if i + 1 < n {
                        arb_body(n - i - 1)
                            .prop_map(move |body| {
                                // Shift callee indices to absolute names.
                                fn shift(stmts: Vec<Stmt>, base: usize) -> Vec<Stmt> {
                                    stmts
                                        .into_iter()
                                        .map(|s| match s {
                                            Stmt::Call(name) => {
                                                let rel: usize =
                                                    name[1..].parse().expect("generated name");
                                                Stmt::Call(format!("f{}", base + rel + 1))
                                            }
                                            Stmt::Loop { count, body } => {
                                                Stmt::Loop { count, body: shift(body, base) }
                                            }
                                            other => other,
                                        })
                                        .collect()
                                }
                                shift(body, i)
                            })
                            .boxed()
                    } else {
                        proptest::collection::vec((1u32..200).prop_map(Stmt::Work), 1..3).boxed()
                    }
                })
                .collect::<Vec<_>>();
            (Just(n), bodies)
        })
        .prop_map(|(n, bodies)| {
            let routines: Vec<Routine> = bodies
                .into_iter()
                .enumerate()
                .map(|(i, body)| Routine::new(format!("f{i}"), body, true))
                .collect();
            let _ = n;
            Program::new(routines, "f0").expect("generated program is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn instruction_encoding_round_trips(inst in arb_instruction()) {
        let mut buf = Vec::new();
        let len = encode_into(inst, &mut buf);
        prop_assert_eq!(len, encoded_len(inst));
        let (decoded, dlen) = decode_at(&buf, 0).expect("round trip");
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(dlen, len);
    }

    #[test]
    fn decode_of_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        offset in 0usize..64,
    ) {
        let _ = decode_at(&bytes, offset);
    }

    #[test]
    fn asm_parse_of_arbitrary_text_never_panics(text in "\\PC*") {
        let _ = asm::parse(&text);
    }

    #[test]
    fn asm_parse_of_token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("routine".to_string()),
                Just("loop".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(",".to_string()),
                Just("call".to_string()),
                Just("work".to_string()),
                Just("entry".to_string()),
                Just("5".to_string()),
                Just("main".to_string()),
            ],
            0..24,
        ),
    ) {
        let _ = asm::parse(&tokens.join(" "));
    }

    #[test]
    fn compiled_programs_execute_and_conserve_cycles(program in arb_program()) {
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        // Symbols tile the text exactly.
        let mut cursor = exe.base();
        for (_, sym) in exe.symbols().iter() {
            prop_assert_eq!(sym.addr(), cursor);
            cursor = sym.end();
        }
        prop_assert_eq!(cursor, exe.end());
        // The whole text disassembles.
        disassemble(&exe).expect("valid text");
        // The program halts and every cycle lands in some routine.
        let mut machine = Machine::new(exe);
        let summary = machine.run(&mut NoHooks).expect("halts");
        let truth = machine.ground_truth().expect("truth enabled");
        prop_assert_eq!(truth.total_self_cycles(), summary.clock);
        // Inclusive time of the entry covers the run; nothing exceeds it.
        let root = truth.routine("f0").expect("entry routine");
        prop_assert_eq!(root.total_cycles, summary.clock);
        for r in truth.routines() {
            prop_assert!(r.total_cycles <= summary.clock);
            prop_assert!(r.self_cycles <= r.total_cycles);
        }
    }

    #[test]
    fn object_files_round_trip(program in arb_program()) {
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let bytes = objfile::write_executable(&exe);
        let back = objfile::read_executable(&bytes).expect("round trips");
        prop_assert_eq!(back, exe);
    }

    #[test]
    fn object_reader_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = objfile::read_executable(&bytes);
    }

    #[test]
    fn object_reader_never_panics_on_corrupted_valid_files(
        program in arb_program(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let exe = program.compile(&CompileOptions::default()).expect("compiles");
        let mut bytes = objfile::write_executable(&exe);
        for (index, xor) in flips {
            let i = index.index(bytes.len());
            bytes[i] ^= xor;
        }
        let _ = objfile::read_executable(&bytes);
    }

    #[test]
    fn uninstrumented_and_instrumented_runs_agree_on_call_counts(
        program in arb_program(),
    ) {
        use graphprof_machine::ProfilingHooks;
        struct CostlyHooks;
        impl ProfilingHooks for CostlyHooks {
            fn on_mcount(&mut self, _: Addr, _: Addr) -> u64 {
                13
            }
        }
        let plain = program.compile(&CompileOptions::default()).expect("compiles");
        let inst = program.compile(&CompileOptions::profiled()).expect("compiles");
        let mut m1 = Machine::new(plain);
        m1.run(&mut NoHooks).expect("halts");
        let mut m2 = Machine::new(inst);
        m2.run(&mut CostlyHooks).expect("halts");
        let t1 = m1.ground_truth().expect("truth");
        let t2 = m2.ground_truth().expect("truth");
        // Instrumentation perturbs time, never control flow.
        for (a, b) in t1.routines().iter().zip(t2.routines()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.calls, b.calls, "{}", a.name);
        }
        prop_assert!(m2.clock() >= m1.clock());
    }
}
