//! Seeded synthetic program generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use graphprof_machine::{BodyBuilder, Program, ProgramBuilder};

fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
    let mut b = Program::builder();
    f(&mut b);
    b.build().expect("generated programs are well-formed")
}

/// Parameters for [`layered_dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagParams {
    /// Number of layers below the root.
    pub layers: u32,
    /// Routines per layer.
    pub width: u32,
    /// Maximum distinct callees per routine (drawn from the next layer).
    pub max_fanout: u32,
    /// Maximum calls per chosen callee (loop count).
    pub max_calls: u32,
    /// Maximum `work` cycles per routine body.
    pub max_work: u32,
}

impl Default for DagParams {
    fn default() -> Self {
        DagParams { layers: 4, width: 6, max_fanout: 3, max_calls: 5, max_work: 200 }
    }
}

/// Generates a layered, acyclic program: a root calling into `layers`
/// layers of `width` routines, each calling a random subset of the next
/// layer. Deterministic in `seed`.
pub fn layered_dag(seed: u64, params: DagParams) -> Program {
    assert!(params.layers > 0 && params.width > 0, "need at least one layer and routine");
    let mut rng = SmallRng::seed_from_u64(seed);
    let name = |layer: u32, i: u32| format!("l{layer}_f{i}");
    /// One planned routine: its work plus `(callee, calls)` pairs.
    type RoutinePlan = (u32, Vec<(String, u32)>);
    let mut plan: Vec<Vec<RoutinePlan>> = Vec::new();
    for layer in 0..params.layers {
        let mut row = Vec::new();
        for _ in 0..params.width {
            let work = rng.gen_range(1..=params.max_work);
            let mut callees = Vec::new();
            if layer + 1 < params.layers {
                let fanout = rng.gen_range(0..=params.max_fanout);
                for _ in 0..fanout {
                    let target = rng.gen_range(0..params.width);
                    let calls = rng.gen_range(1..=params.max_calls);
                    callees.push((name(layer + 1, target), calls));
                }
            }
            row.push((work, callees));
        }
        plan.push(row);
    }
    build(move |b| {
        b.routine("main", |mut r| {
            for i in 0..params.width {
                r = r.call(name(0, i));
            }
            r
        });
        for (layer, row) in plan.iter().enumerate() {
            for (i, (work, callees)) in row.iter().enumerate() {
                let routine_name = name(layer as u32, i as u32);
                let work = *work;
                let callees = callees.clone();
                b.routine(routine_name, move |mut r: BodyBuilder| {
                    r = r.work(work);
                    for (callee, calls) in callees {
                        r = r.call_n(callee, calls);
                    }
                    r
                });
            }
        }
    })
}

/// Fan-in extreme: `sites` distinct routines each calling one popular
/// routine once per round, interleaved round-robin for `rounds` rounds.
/// This is the worst case for the callee-primary arc table (§3.1): with
/// the sites interleaving, most records for `popular` walk a long chain of
/// the other sites' arcs.
pub fn fan_in_program(sites: u32, rounds: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| {
            r.loop_n(rounds, |mut l| {
                for i in 0..sites {
                    l = l.call(format!("site{i}"));
                }
                l
            })
        });
        for i in 0..sites {
            b.routine(format!("site{i}"), move |r| r.work(5).call("popular"));
        }
        b.routine("popular", |r| r.work(10));
    })
}

/// Fan-out extreme: one *indirect* call site reaching `dests` different
/// routines — the paper's "functional parameters and functional
/// variables", the only source of collisions in the call-site-primary
/// table.
pub fn fan_out_indirect_program(dests: u32, rounds: u32) -> Program {
    assert!(dests >= 1, "need at least one destination");
    build(|b| {
        b.routine("main", |mut r| {
            for _ in 0..rounds {
                for i in 0..dests {
                    r = r.set_slot(0, format!("dest{i}")).call("dispatch");
                }
            }
            r
        });
        // The single indirect call site lives in dispatch.
        b.routine("dispatch", |r| r.call_indirect(0));
        for i in 0..dests {
            b.routine(format!("dest{i}"), |r| r.work(10));
        }
    })
}

/// A program whose call density is tunable: `calls` calls to a leaf whose
/// body costs `work_per_call` cycles. Low `work_per_call` means
/// call-dense (instrumentation-heavy); high means compute-dense. Used to
/// sweep the §7 overhead claim.
pub fn call_density_program(calls: u32, work_per_call: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| r.call_n("leaf", calls));
        b.routine("leaf", move |r| r.work(work_per_call));
    })
}

/// A recursive-descent-parser shape (§6: "programs that exhibit a large
/// degree of recursion, such as recursive descent compilers [...] most of
/// the major routines are grouped into a single monolithic cycle").
///
/// `expr → term → factor → expr` with a shared recursion budget.
pub fn recursive_descent_program(budget: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| r.set_counter(7, budget + 1).loop_n(3, |l| l.call("parse")));
        b.routine("parse", |r| r.work(10).call("expr"));
        b.routine("expr", |r| r.work(25).call("term"));
        b.routine("term", |r| r.work(35).call_while(7, "factor"));
        b.routine("factor", |r| r.work(45).call_while(7, "expr"));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::{CompileOptions, Machine, NoHooks};

    fn run_truth(program: &Program) -> graphprof_machine::GroundTruth {
        let exe = program.compile(&CompileOptions::default()).unwrap();
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        m.ground_truth().unwrap()
    }

    #[test]
    fn layered_dag_is_deterministic_in_seed() {
        let a = layered_dag(42, DagParams::default());
        let b = layered_dag(42, DagParams::default());
        assert_eq!(a, b);
        let c = layered_dag(43, DagParams::default());
        assert_ne!(a, c);
    }

    #[test]
    fn layered_dag_runs_to_completion() {
        for seed in 0..5 {
            let truth = run_truth(&layered_dag(seed, DagParams::default()));
            assert!(truth.clock() > 0, "seed {seed}");
        }
    }

    #[test]
    fn layered_dag_respects_shape() {
        let params = DagParams { layers: 3, width: 4, ..DagParams::default() };
        let p = layered_dag(7, params);
        // main + 3 layers of 4.
        assert_eq!(p.routines().len(), 13);
    }

    #[test]
    fn fan_in_counts() {
        let truth = run_truth(&fan_in_program(20, 3));
        assert_eq!(truth.routine("popular").unwrap().calls, 60);
    }

    #[test]
    fn fan_out_indirect_reaches_every_destination() {
        let truth = run_truth(&fan_out_indirect_program(8, 2));
        for i in 0..8 {
            assert_eq!(truth.routine(&format!("dest{i}")).unwrap().calls, 2, "dest{i}");
        }
        assert_eq!(truth.routine("dispatch").unwrap().calls, 16);
    }

    #[test]
    fn call_density_extremes_run() {
        let dense = run_truth(&call_density_program(1000, 1));
        let sparse = run_truth(&call_density_program(10, 10_000));
        assert!(dense.routine("leaf").unwrap().calls == 1000);
        assert!(sparse.routine("leaf").unwrap().self_cycles >= 100_000);
    }

    #[test]
    fn recursive_descent_forms_a_cycle_and_terminates() {
        let truth = run_truth(&recursive_descent_program(20));
        assert!(truth.routine("factor").unwrap().calls >= 5);
        // The cycle arcs exist dynamically: factor -> expr traversed.
        let expr_entry = truth.routine("expr").unwrap().entry;
        let (calls_into_expr, _) = truth.arcs_into(expr_entry);
        assert!(calls_into_expr > 3, "expr called from parse and factor");
    }
}
