//! Workload programs for the graphprof experiments.
//!
//! * [`paper`] — the shapes the paper itself discusses: the Figure 1/2
//!   graphs, the §6 output-formatting program, the symbol-table
//!   abstraction, kernel-like cyclic subsystems, and the pitfalls
//!   (skewed per-call costs, short-running routines);
//! * [`synthetic`] — seeded random program generators for scaling and
//!   stress: layered DAGs, fan-in/fan-out extremes, call-dense vs
//!   compute-dense mixes, and recursive-descent-parser shapes;
//! * [`apps`] — application-scale shapes (a compiler pipeline, a document
//!   formatter, a network service) for realistic end-to-end runs.
//!
//! All generators are deterministic: the same inputs produce the same
//! program, so experiment outputs are reproducible.

pub mod apps;
pub mod paper;
pub mod synthetic;
