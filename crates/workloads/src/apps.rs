//! Application-scale workloads: program shapes like the ones the paper's
//! authors actually profiled — a compiler, a document formatter, and a
//! network service. Larger than the worked examples, with the structural
//! features that make call graph profiles earn their keep: shared
//! abstractions with heavy fan-in, a recursion cycle, phases with
//! different mixes of the same helpers, and rarely-taken paths.

use graphprof_machine::{Program, ProgramBuilder};

fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
    let mut b = Program::builder();
    f(&mut b);
    b.build().expect("app workloads are well-formed")
}

/// A compiler front-to-back: lex → parse (a recursive-descent expression
/// cycle) → typecheck → codegen, all sharing a symbol table (backed by a
/// hash routine) and a string interner.
///
/// `units` scales the number of "compilation units" processed.
pub fn compiler_pipeline(units: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| {
            r.set_counter(7, 40 * units + 1).loop_n(units, |u| u.call("compile_unit"))
        });
        b.routine("compile_unit", |r| {
            r.call("lex").call("parse").call("typecheck").call("codegen")
        });
        // Lexing: many cheap token reads, interning identifiers.
        b.routine("lex", |r| r.work(40).loop_n(30, |l| l.call("next_token")));
        b.routine("next_token", |r| r.work(8).call("intern"));
        b.routine("intern", |r| r.work(6).call("hash"));
        // Parsing: a recursive-descent cycle over expressions, consuming
        // a shared recursion budget so the run terminates.
        b.routine("parse", |r| r.work(25).loop_n(6, |l| l.call("parse_stmt")));
        b.routine("parse_stmt", |r| r.work(12).call("parse_expr"));
        b.routine("parse_expr", |r| r.work(10).call("parse_term"));
        b.routine("parse_term", |r| r.work(9).call_while(7, "parse_expr"));
        // Typechecking: symbol table lookups dominate.
        b.routine("typecheck", |r| {
            r.work(30).loop_n(25, |l| l.call("st_lookup")).loop_n(8, |l| l.call("st_insert"))
        });
        // Codegen: emits through a buffered writer.
        b.routine("codegen", |r| {
            r.work(35).loop_n(12, |l| l.call("st_lookup")).loop_n(20, |l| l.call("emit"))
        });
        b.routine("emit", |r| r.work(7).call("buf_write"));
        b.routine("st_lookup", |r| r.work(11).call("hash"));
        b.routine("st_insert", |r| r.work(16).call("hash"));
        b.routine("hash", |r| r.work(9));
        b.routine("buf_write", |r| r.work(5));
    })
}

/// A document formatter: per paragraph, tokenize words, fill lines,
/// occasionally hyphenate (a rarely-taken path), and flush through a
/// shared output abstraction.
///
/// `paragraphs` scales the document; hyphenation triggers on a small
/// budget, so its arc has a low traversal count relative to the fill loop.
pub fn text_formatter(paragraphs: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| {
            r.set_counter(6, paragraphs / 4 + 1).loop_n(paragraphs, |p| p.call("format_paragraph"))
        });
        b.routine("format_paragraph", |r| {
            r.work(20).call("tokenize").loop_n(8, |l| l.call("fill_line"))
        });
        b.routine("tokenize", |r| r.work(15).loop_n(40, |l| l.call("next_word")));
        b.routine("next_word", |r| r.work(6));
        b.routine("fill_line", |r| r.work(18).call_while(6, "hyphenate").call("flush_line"));
        b.routine("hyphenate", |r| r.work(120));
        b.routine("flush_line", |r| r.work(8).call("out_write"));
        b.routine("out_write", |r| r.work(12));
    })
}

/// A network service: an accept loop dispatching requests through
/// protocol layers onto a shared buffer cache, with a slow path (cache
/// miss → disk) taken on a budget.
///
/// `requests` scales the run; cache misses are rare by construction.
pub fn network_server(requests: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| {
            r.set_counter(5, requests / 8 + 1).loop_n(requests, |l| l.call("handle_request"))
        });
        b.routine("handle_request", |r| {
            r.work(10).call("read_request").call("process").call("send_reply")
        });
        b.routine("read_request", |r| r.work(25).call("buf_get"));
        b.routine("process", |r| r.work(40).loop_n(3, |l| l.call("buf_get")).call("encode"));
        b.routine("send_reply", |r| r.work(20).call("encode").call("buf_get"));
        b.routine("encode", |r| r.work(15));
        // The shared buffer cache: hot path cheap, miss path expensive and
        // rare (budgeted).
        b.routine("buf_get", |r| r.work(12).call_while(5, "disk_read"));
        b.routine("disk_read", |r| r.work(400));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::{CompileOptions, Machine, NoHooks};

    fn run_truth(program: &Program) -> graphprof_machine::GroundTruth {
        let exe = program.compile(&CompileOptions::default()).unwrap();
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        m.ground_truth().unwrap()
    }

    #[test]
    fn compiler_pipeline_shapes() {
        let truth = run_truth(&compiler_pipeline(3));
        assert_eq!(truth.routine("compile_unit").unwrap().calls, 3);
        assert_eq!(truth.routine("next_token").unwrap().calls, 90);
        // hash fans in from intern, st_lookup, st_insert.
        let hash_calls = truth.routine("hash").unwrap().calls;
        let intern = truth.routine("intern").unwrap().calls;
        let lookups = truth.routine("st_lookup").unwrap().calls;
        let inserts = truth.routine("st_insert").unwrap().calls;
        assert_eq!(hash_calls, intern + lookups + inserts);
        // The parser cycle actually recursed.
        assert!(
            truth.routine("parse_expr").unwrap().calls > truth.routine("parse_stmt").unwrap().calls
        );
    }

    #[test]
    fn compiler_pipeline_scales_with_units() {
        let small = run_truth(&compiler_pipeline(1));
        let large = run_truth(&compiler_pipeline(4));
        assert!(large.clock() > 3 * small.clock());
    }

    #[test]
    fn text_formatter_hyphenation_is_rare() {
        let truth = run_truth(&text_formatter(16));
        let fills = truth.routine("fill_line").unwrap().calls;
        let hyphens = truth.routine("hyphenate").unwrap().calls;
        assert_eq!(fills, 128);
        assert!(hyphens > 0);
        assert!(hyphens * 10 < fills, "{hyphens} of {fills}");
    }

    #[test]
    fn network_server_misses_are_rare_but_expensive() {
        let truth = run_truth(&network_server(40));
        let gets = truth.routine("buf_get").unwrap().calls;
        let misses = truth.routine("disk_read").unwrap().calls;
        assert_eq!(gets, 40 * 5);
        assert!(misses * 20 < gets, "{misses} of {gets}");
        // Despite rarity, the miss path is a visible share of time.
        let miss_time = truth.routine("disk_read").unwrap().self_cycles;
        assert!(miss_time as f64 > 0.05 * truth.clock() as f64);
    }
}
