//! The worked examples and motivating shapes from the paper.

use graphprof_callgraph::{CallGraph, NodeId};
use graphprof_machine::{Program, ProgramBuilder};

fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
    let mut b = Program::builder();
    f(&mut b);
    b.build().expect("workload programs are well-formed")
}

/// The ten-node DAG of Figure 1, as a bare call graph (node names `r0`
/// through `r9`; `r0` is the root). Arc counts are all one — the figure
/// illustrates topological numbering, not time.
pub fn fig1_graph() -> CallGraph {
    let mut g = CallGraph::with_nodes((0..10).map(|i| format!("r{i}")));
    let n: Vec<NodeId> = g.nodes().collect();
    for &(a, b) in
        &[(0usize, 1usize), (0, 2), (1, 3), (1, 4), (2, 4), (2, 9), (3, 5), (3, 6), (4, 7), (4, 8)]
    {
        g.add_arc(n[a], n[b], 1);
    }
    g
}

/// Figure 2: the Figure 1 graph with the nodes labelled 3 and 7 made
/// mutually recursive.
pub fn fig2_graph() -> CallGraph {
    let mut g = fig1_graph();
    let r3 = g.node_by_name("r3").expect("node exists");
    let r7 = g.node_by_name("r7").expect("node exists");
    g.add_arc(r3, r7, 1);
    g.add_arc(r7, r3, 1);
    g
}

/// The §6 case study: "the call graph of the output portion of the
/// program" — three calculation routines feeding two format routines
/// feeding the `write` system call.
///
/// `calc1` uses `format1`; `calc2` and `calc3` share `format2`; both
/// format routines call `write`. Call counts are distinct so the profile
/// entries are unambiguous.
pub fn output_program() -> Program {
    build(|b| {
        b.routine("main", |r| r.call_n("calc1", 3).call_n("calc2", 4).call_n("calc3", 5));
        b.routine("calc1", |r| r.work(50).call_n("format1", 2));
        b.routine("calc2", |r| r.work(60).call_n("format2", 3));
        b.routine("calc3", |r| r.work(70).call_n("format2", 1));
        b.routine("format1", |r| r.work(30).call("write"));
        b.routine("format2", |r| r.work(40).call("write"));
        b.routine("write", |r| r.work(100));
    })
}

/// The motivating "diffuse abstraction": a buffer abstraction used from a
/// producer (`producer_calls` times) and a consumer (`consumer_calls`
/// times), each buffer operation costing `work` cycles.
///
/// In a flat profile the buffer's time is one large anonymous lump with
/// two invisible beneficiaries; the call graph profile splits it between
/// producer and consumer by call counts.
pub fn abstraction_program(producer_calls: u32, consumer_calls: u32, work: u32) -> Program {
    build(|b| {
        b.routine("main", |r| r.call("producer").call("consumer"));
        b.routine("producer", |r| r.work(10).loop_n(producer_calls, |l| l.call("buffer")));
        b.routine("consumer", |r| r.work(10).loop_n(consumer_calls, |l| l.call("buffer")));
        b.routine("buffer", move |r| r.work(work));
    })
}

/// The §6 symbol-table abstraction: `lookup`, `insert`, and `delete` all
/// hash; three compiler phases use them in different mixes. The
/// abstraction's total cost is spread over four routines and three
/// callers — invisible to prof, reassembled by gprof.
pub fn symbol_table_program() -> Program {
    symbol_table_program_tuned(50, 45)
}

/// [`symbol_table_program`] with tunable costs for the two routines §6
/// suggests optimizing: the lookup algorithm ("an inefficient linear
/// search algorithm, that might be replaced with a binary search") and
/// the hash function ("a different hash function or a larger hash
/// table"). Lets the iterative-optimization experiment play out the
/// paper's workflow: profile, fix the bottleneck, re-profile, diff.
pub fn symbol_table_program_tuned(lookup_work: u32, hash_work: u32) -> Program {
    build(move |b| {
        b.routine("main", |r| r.call("parse").call("optimize").call("codegen"));
        b.routine("parse", |r| {
            r.work(200).loop_n(40, |l| l.call("insert")).loop_n(60, |l| l.call("lookup"))
        });
        b.routine("optimize", |r| r.work(200).loop_n(80, |l| l.call("lookup")));
        b.routine("codegen", |r| {
            r.work(200).loop_n(30, |l| l.call("lookup")).loop_n(20, |l| l.call("delete"))
        });
        b.routine("lookup", move |r| r.work(lookup_work).call("hash"));
        b.routine("insert", |r| r.work(70).call("hash"));
        b.routine("delete", |r| r.work(60).call("hash"));
        b.routine("hash", move |r| r.work(hash_work));
    })
}

/// A runnable program with every structural feature of the paper's
/// Figure 4 entry for `EXAMPLE`:
///
/// * called by two callers (4 and 6 times — the `4/10` and `6/10`);
/// * self-recursive (the `10+4`);
/// * calls into a two-member cycle (`SUB1 <cycle1>`) that has other
///   external callers, so the fraction's denominator exceeds EXAMPLE's
///   own count;
/// * rarely calls `SUB2` (the `1/5`);
/// * holds a *statically apparent but never traversed* call to `SUB3`
///   (the `0/5`), behind a never-armed conditional.
///
/// The exact times of Figure 4 are reproduced synthetically by the `fig4`
/// experiment; this program demonstrates that the same *structure* falls
/// out of a real execution.
pub fn example_program() -> Program {
    build(|b| {
        b.routine("main", |r| {
            r.set_counter(7, 5) // 4 self-recursive EXAMPLE calls
                .set_counter(6, 2) // 1 EXAMPLE -> SUB2 call
                .set_counter(4, 8) // 7 traversals inside the cycle
                // counter 5 stays 0: EXAMPLE -> SUB3 never fires.
                .call("CALLER1")
                .call("CALLER2")
                .call("OTHER")
        });
        b.routine("CALLER1", |r| r.work(20).loop_n(4, |l| l.call("EXAMPLE")));
        b.routine("CALLER2", |r| r.work(20).loop_n(6, |l| l.call("EXAMPLE")));
        b.routine("EXAMPLE", |r| {
            r.work(50)
                .call_while(7, "EXAMPLE")
                .call("SUB1")
                .call_while(6, "SUB2")
                .call_while(5, "SUB3")
        });
        b.routine("SUB1", |r| r.work(30).call_while(4, "SUB1B"));
        b.routine("SUB1B", |r| r.work(20).call_while(4, "SUB1"));
        b.routine("SUB2", |r| r.work(40).call("LEAF2"));
        b.routine("SUB3", |r| r.work(25));
        b.routine("LEAF2", |r| r.work(60));
        b.routine("OTHER", |r| {
            r.work(15)
                .loop_n(6, |l| l.call("SUB1B"))
                .loop_n(4, |l| l.call("SUB2"))
                .loop_n(5, |l| l.call("SUB3"))
        });
    })
}

/// Terminating mutual recursion: `ping` and `pong` call each other until
/// a shared budget of `budget` conditional calls is exhausted (register 7
/// holds the counter). Produces a genuine two-member cycle in the dynamic
/// call graph.
pub fn mutual_recursion_program(budget: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| r.set_counter(7, budget + 1).call("ping"));
        b.routine("ping", |r| r.work(40).call_while(7, "pong"));
        b.routine("pong", |r| r.work(60).call_while(7, "ping"));
    })
}

/// A program shaped like the Figure 1/2 example: routines `r0`..`r9` with
/// the DAG arcs of [`fig1_graph`], plus the Figure 2 mutual recursion
/// between `r3` and `r7` driven by a bounded counter. `r0` is the entry.
pub fn figure2_program(recursion_budget: u32) -> Program {
    build(|b| {
        b.routine("r0", move |r| {
            r.set_counter(7, recursion_budget + 1).work(10).call("r1").call("r2")
        });
        b.routine("r1", |r| r.work(20).call("r3").call("r4"));
        b.routine("r2", |r| r.work(20).call("r4").call("r9"));
        b.routine("r3", |r| r.work(30).call("r5").call("r6").call_while(7, "r7"));
        b.routine("r4", |r| r.work(30).call("r7").call("r8"));
        b.routine("r5", |r| r.work(40));
        b.routine("r6", |r| r.work(40));
        b.routine("r7", |r| r.work(40).call_while(7, "r3"));
        b.routine("r8", |r| r.work(40));
        b.routine("r9", |r| r.work(40));
    })
}

/// A kernel-like system (retrospective): a scheduler loop driving three
/// subsystems, with two *low-count* arcs closing a large cycle through
/// the buffer cache — the shape whose profiles were unusable until the
/// closing arcs were removed.
///
/// `rounds` bounds the scheduler loop so the program terminates; pass a
/// large value and drive the machine with `run_for` to emulate a
/// never-ending kernel.
pub fn kernel_program(rounds: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| {
            // Arm the cycle-closing arcs with a small budget: they are
            // traversed rarely relative to the main service arcs.
            r.set_counter(7, 4).set_counter(6, 3).loop_n(rounds, |l| l.call("sched"))
        });
        b.routine("sched", |r| r.work(5).call("net").call("disk").call("vm"));
        b.routine("net", |r| r.work(30).call("buf"));
        b.routine("disk", |r| r.work(80).call("buf"));
        b.routine("vm", |r| r.work(20).call_while(6, "disk"));
        // buf occasionally re-enters the scheduler (a deferred wakeup):
        // the low-count arc that closes the big cycle.
        b.routine("buf", |r| r.work(40).call_while(7, "sched"));
    })
}

/// The §4 pitfall: "we have only single arcs in the call graph, and so
/// distribute the 'average time' to callers in proportion to how many
/// times they called the function", which "need not reflect reality,
/// e.g., if some calls take longer than others".
///
/// `api` costs little by itself but conditionally performs expensive
/// work. `costly_user` arms the condition before each of its
/// `costly_calls`; `cheap_user` never does. gprof will average, charging
/// `cheap_user` for work it never caused.
pub fn skewed_sites_program(cheap_calls: u32, costly_calls: u32) -> Program {
    build(|b| {
        b.routine("main", |r| r.call("cheap_user").call("costly_user"));
        b.routine("cheap_user", move |r| r.work(10).loop_n(cheap_calls, |l| l.call("api")));
        b.routine("costly_user", move |r| {
            r.work(10).loop_n(costly_calls, |l| l.set_counter(7, 2).call("api"))
        });
        b.routine("api", |r| r.work(10).call_while(7, "expensive"));
        b.routine("expensive", |r| r.work(990));
    })
}

/// The §4 static-arcs scenario: `b` holds a conditional call back to `a`
/// that only some executions traverse. With `budget == 0` the closing arc
/// never fires, so the *dynamic* call graph is acyclic for that run; with
/// `budget > 0` the same text produces a cycle. The static call graph sees
/// the `call a` instruction either way, "so that cycles will have the same
/// members regardless of how the program runs".
pub fn sometimes_recursive_program(budget: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| r.set_counter(7, budget).call("a"));
        b.routine("a", |r| r.work(50).call("b"));
        b.routine("b", |r| r.work(50).call_while(7, "a"));
    })
}

/// A short-running routine exercised `calls` times per run with `work`
/// cycles per call — the multi-run summation target: one run yields too
/// few samples for a stable estimate; summing many runs accumulates them.
///
/// `lead_work` models run-to-run input variation: it shifts the phase of
/// the clock-tick sampling relative to the code, the way different inputs
/// would on a real machine, without changing the text layout (so profiles
/// from different `lead_work` values still merge).
pub fn short_routine_program(calls: u32, work: u32, lead_work: u32) -> Program {
    build(|b| {
        b.routine("main", move |r| {
            r.work(2000 + lead_work).loop_n(calls, |l| l.call("blip")).work(2000)
        });
        b.routine("blip", move |r| r.work(work));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::{CompileOptions, Machine, NoHooks};

    fn run_truth(program: &Program) -> graphprof_machine::GroundTruth {
        let exe = program.compile(&CompileOptions::default()).unwrap();
        let mut m = Machine::new(exe);
        m.run(&mut NoHooks).unwrap();
        m.ground_truth().unwrap()
    }

    #[test]
    fn fig1_graph_is_an_acyclic_ten_node_dag() {
        let g = fig1_graph();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.arc_count(), 10);
        assert!(graphprof_callgraph::arc_removal::is_propagation_acyclic(&g));
    }

    #[test]
    fn fig2_graph_has_the_three_seven_cycle() {
        let g = fig2_graph();
        let scc = graphprof_callgraph::SccResult::analyze(&g);
        let r3 = g.node_by_name("r3").unwrap();
        let r7 = g.node_by_name("r7").unwrap();
        assert_eq!(scc.comp(r3), scc.comp(r7));
        assert_eq!(scc.cycles().len(), 1);
    }

    #[test]
    fn output_program_runs_and_write_dominates_fanin() {
        let truth = run_truth(&output_program());
        // write is called by both formats: 3*2 + 4*3 + 5*1 = 23 times.
        assert_eq!(truth.routine("write").unwrap().calls, 23);
        assert_eq!(truth.routine("format2").unwrap().calls, 17);
    }

    #[test]
    fn abstraction_program_call_counts() {
        let truth = run_truth(&abstraction_program(10, 30, 100));
        assert_eq!(truth.routine("buffer").unwrap().calls, 40);
        // The buffer dominates total time.
        let buffer = truth.routine("buffer").unwrap();
        assert!(buffer.self_cycles as f64 > 0.8 * truth.clock() as f64);
    }

    #[test]
    fn symbol_table_program_spreads_abstraction() {
        let truth = run_truth(&symbol_table_program());
        assert_eq!(truth.routine("lookup").unwrap().calls, 170);
        assert_eq!(truth.routine("insert").unwrap().calls, 40);
        assert_eq!(truth.routine("delete").unwrap().calls, 20);
        assert_eq!(truth.routine("hash").unwrap().calls, 230);
    }

    #[test]
    fn mutual_recursion_terminates_with_budget() {
        let truth = run_truth(&mutual_recursion_program(9));
        let ping = truth.routine("ping").unwrap().calls;
        let pong = truth.routine("pong").unwrap().calls;
        assert_eq!(ping + pong, 10, "1 entry + 9 budgeted calls");
    }

    #[test]
    fn figure2_program_produces_the_cycle_dynamically() {
        let truth = run_truth(&figure2_program(6));
        assert!(truth.routine("r3").unwrap().calls > 1);
        assert!(truth.routine("r7").unwrap().calls > 1);
        // All leaves got called.
        for leaf in ["r5", "r6", "r8", "r9"] {
            assert!(truth.routine(leaf).unwrap().calls >= 1, "{leaf}");
        }
    }

    #[test]
    fn kernel_program_closing_arcs_are_rare() {
        let truth = run_truth(&kernel_program(50));
        let (sched_calls, _) = truth.arcs_into(truth.routine("sched").unwrap().entry);
        // sched runs ~50 times from main but only ~3 times from buf.
        assert!(sched_calls > 50);
        assert!(sched_calls < 56);
    }

    #[test]
    fn skewed_sites_ground_truth_is_skewed() {
        let program = skewed_sites_program(9, 1);
        let truth = run_truth(&program);
        assert_eq!(truth.routine("api").unwrap().calls, 10);
        assert_eq!(truth.routine("expensive").unwrap().calls, 1);
        // The one costly call is ~100x the cheap ones.
        assert!(truth.routine("expensive").unwrap().self_cycles >= 990);
    }

    #[test]
    fn sometimes_recursive_traverses_only_when_armed() {
        let cold = run_truth(&sometimes_recursive_program(0));
        assert_eq!(cold.routine("a").unwrap().calls, 1);
        let hot = run_truth(&sometimes_recursive_program(6));
        assert!(hot.routine("a").unwrap().calls > 1, "closing arc fired");
        assert!(hot.clock() > cold.clock());
    }

    #[test]
    fn example_program_counts_match_figure4_structure() {
        let truth = run_truth(&example_program());
        let example = truth.routine("EXAMPLE").unwrap();
        assert_eq!(example.calls, 14, "10 external + 4 self-recursive");
        assert_eq!(truth.routine("SUB3").unwrap().calls, 5, "never from EXAMPLE");
        assert_eq!(truth.routine("SUB2").unwrap().calls, 5, "1 + 4");
        // External calls into the cycle: EXAMPLE's 14 + OTHER's 6.
        let sub1 = truth.routine("SUB1").unwrap().calls;
        let sub1b = truth.routine("SUB1B").unwrap().calls;
        assert_eq!(sub1 + sub1b, 20 + 7, "20 external + 7 intra-cycle");
    }

    #[test]
    fn short_routine_is_a_small_fraction_of_a_run() {
        let truth = run_truth(&short_routine_program(5, 7, 0));
        let blip = truth.routine("blip").unwrap();
        assert_eq!(blip.calls, 5);
        assert!((blip.self_cycles as f64) < 0.05 * truth.clock() as f64);
    }
}
