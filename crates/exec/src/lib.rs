//! A dependency-free concurrency layer for the graphprof post-processing
//! pipeline.
//!
//! The paper's motivation for condensing the arc table is that "the
//! profile data [can] be processed quickly" (§3.1); the retrospective's
//! summation-over-runs and kernel workflows multiply the number of
//! profile files a single post-processing invocation must digest. The
//! reduction work is embarrassingly parallel across inputs and
//! per-routine units, so this crate provides the minimal scheduling
//! primitives the pipeline needs — nothing more:
//!
//! * [`resolve_jobs`] — the `--jobs N` / `GRAPHPROF_JOBS` knob, falling
//!   back to the machine's available parallelism;
//! * [`parallel_map`] / [`try_parallel_map`] — a scoped worker pool over
//!   `std::thread` and channels that maps a function over a slice and
//!   returns results *in input order*, so parallel output is positionally
//!   indistinguishable from serial output;
//! * [`tree_reduce`] / [`try_tree_reduce`] — pairwise reduction with a
//!   fixed combining shape, for merge operators that are associative but
//!   whose cost grows with the accumulator.
//!
//! # Determinism contract
//!
//! Every function here returns results whose order and grouping depend
//! only on the input, never on thread scheduling. `parallel_map` reorders
//! *work*, not *results*; `tree_reduce` always combines element `2i` with
//! element `2i + 1`. Callers that need byte-identical output between
//! `jobs = 1` and `jobs = N` get it for free as long as their own
//! per-item functions are pure.
//!
//! The crate is intentionally free of external dependencies (the
//! workspace builds offline) and of unsafe code: scoped threads borrow
//! the input slice, a shared atomic cursor hands out work, and an mpsc
//! channel carries `(index, result)` pairs back for in-order assembly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// job count is given.
pub const JOBS_ENV: &str = "GRAPHPROF_JOBS";

/// Resolves the worker count for a pipeline stage.
///
/// Precedence: an explicit request (a `--jobs N` flag) wins; otherwise
/// the `GRAPHPROF_JOBS` environment variable; otherwise the machine's
/// [`std::thread::available_parallelism`]. The result is always at least
/// one; `1` selects the serial paths everywhere downstream.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = std::env::var(JOBS_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        return n.max(1);
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Maps `f` over `items` on up to `jobs` workers, returning the results
/// in input order.
///
/// With `jobs <= 1` (or one item or fewer) the map runs on the calling
/// thread — the serial path is the same code the caller would have
/// written by hand, not a degenerate pool. Workers claim items through a
/// shared atomic cursor, so an expensive item never blocks the queue
/// behind it, and results travel back over a channel tagged with their
/// index.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_parallel_map(jobs, items, |i, item| Ok::<R, Never>(f(i, item))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Fallible [`parallel_map`]: maps `f` over `items`, short-circuiting on
/// the first error *in input order*.
///
/// When several items fail, the error reported is the one the serial
/// path would have hit first, so error behavior is deterministic too.
/// Work already claimed by other workers when an error surfaces still
/// finishes (workers are not cancelled mid-item), but its results are
/// discarded.
///
/// # Errors
///
/// Returns the lowest-indexed error produced by `f`.
pub fn try_parallel_map<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, E>)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_err: Option<(usize, E)> = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A send only fails if the receiver is gone, which
                // cannot happen while the scope holds it open.
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            match result {
                Ok(value) => slots[i] = Some(value),
                Err(e) => {
                    if first_err.as_ref().map(|(j, _)| i < *j).unwrap_or(true) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    });
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(slots.into_iter().map(|slot| slot.expect("every index produced a result")).collect())
}

/// Reduces `items` pairwise with `merge` on up to `jobs` workers.
///
/// The combining shape is fixed: round k merges element `2i` with
/// element `2i + 1` of round k−1's output, halving the list until one
/// value remains. A fixed shape keeps the reduction deterministic even
/// for merge operators that are associative but not exactly so in
/// floating point, and it bounds each worker's accumulator to the size
/// of its subtree instead of the whole input — the reason a tree beats
/// the serial left fold even before any parallelism.
///
/// Returns `None` for an empty input.
pub fn tree_reduce<T, F>(jobs: usize, items: Vec<T>, merge: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    match try_tree_reduce(jobs, items, |a, b| Ok::<T, Never>(merge(a, b))) {
        Ok(result) => result,
        Err(never) => match never {},
    }
}

/// Fallible [`tree_reduce`]: merge failures short-circuit the reduction.
///
/// The error reported is from the leftmost failing pair of the earliest
/// failing round, matching what a serial execution of the same tree
/// would produce.
///
/// # Errors
///
/// Returns the first error produced by `merge` in tree order.
pub fn try_tree_reduce<T, E, F>(jobs: usize, items: Vec<T>, merge: F) -> Result<Option<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(T, T) -> Result<T, E> + Sync,
{
    let mut round = items;
    while round.len() > 1 {
        let mut pairs: Vec<(T, Option<T>)> = Vec::with_capacity(round.len().div_ceil(2));
        let mut iter = round.into_iter();
        while let Some(left) = iter.next() {
            pairs.push((left, iter.next()));
        }
        let merged = try_parallel_map_owned(jobs, pairs, |(left, right)| match right {
            Some(right) => merge(left, right),
            None => Ok(left),
        })?;
        round = merged;
    }
    Ok(round.into_iter().next())
}

/// Like [`try_parallel_map`] but consuming the items, for merge
/// operators that need ownership of both operands.
///
/// Each element sits behind its own `Mutex`; the work distributor hands
/// every index to exactly one worker, so the locks are never contended —
/// they exist only to move owned values across the scope boundary
/// without unsafe code.
fn try_parallel_map_owned<T, R, E, F>(jobs: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let cells: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|item| std::sync::Mutex::new(Some(item))).collect();
    try_parallel_map(jobs, &cells, |_, cell| {
        let item =
            cell.lock().expect("cell lock never poisoned").take().expect("each cell claimed once");
        f(item)
    })
}

/// The uninhabited error type used to reuse the fallible implementations
/// for the infallible entry points.
enum Never {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_regardless_of_jobs() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        for jobs in [1, 2, 4, 8, 200] {
            let out = parallel_map(jobs, &items, |i, &x| x * 2 + i as u64);
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
        assert_eq!(tree_reduce(8, Vec::<u32>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(8, vec![3u32], |a, b| a + b), Some(3));
    }

    #[test]
    fn error_reported_is_the_first_in_input_order() {
        let items: Vec<u32> = (0..64).collect();
        for jobs in [1, 4] {
            let err =
                try_parallel_map(jobs, &items, |_, &x| if x % 10 == 7 { Err(x) } else { Ok(x) })
                    .unwrap_err();
            assert_eq!(err, 7, "jobs={jobs}");
        }
    }

    #[test]
    fn tree_reduce_shape_is_fixed() {
        // A non-commutative merge (string concatenation) exposes any
        // scheduling-dependent pairing; both job counts must agree.
        let items: Vec<String> = (0..13).map(|i| format!("{i},")).collect();
        let serial = tree_reduce(1, items.clone(), |a, b| a + &b).unwrap();
        let parallel = tree_reduce(8, items, |a, b| a + &b).unwrap();
        assert_eq!(serial, parallel);
        // Every element appears exactly once.
        for i in 0..13 {
            assert!(serial.contains(&format!("{i},")), "{serial}");
        }
    }

    #[test]
    fn tree_reduce_sums_like_a_fold() {
        let items: Vec<u64> = (1..=100).collect();
        for jobs in [1, 3, 8] {
            assert_eq!(tree_reduce(jobs, items.clone(), |a, b| a + b), Some(5050));
        }
    }

    #[test]
    fn try_tree_reduce_propagates_merge_errors() {
        let items: Vec<u32> = vec![1, 2, 3, 4];
        let result =
            try_tree_reduce(4, items, |a, b| if a + b > 6 { Err("overflow") } else { Ok(a + b) });
        assert_eq!(result, Err("overflow"));
    }

    #[test]
    fn explicit_jobs_beats_environment() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1, "zero clamps to one");
        // No explicit request: the result is at least one whatever the
        // environment says.
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn work_is_actually_distributed() {
        // With more items than workers, every worker should claim at
        // least one item. Track distinct thread ids.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..256).collect();
        parallel_map(4, &items, |_, &x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // A little work so the first worker cannot drain the queue
            // before the others start.
            (0..200).fold(x, |acc, _| acc.wrapping_mul(31).wrapping_add(1))
        });
        // At minimum the pool ran (1 on a single-core box is legal, but
        // the pool spawns dedicated workers, so the main thread is not
        // among them for multi-element inputs).
        assert!(!seen.lock().unwrap().is_empty());
    }
}
