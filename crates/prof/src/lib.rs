//! The baseline profiler: UNIX `prof(1)`, reproduced for comparison.
//!
//! "The UNIX system comes with a profiling tool, prof, which we had found
//! adequate up until then. The profiler consists of three parts: a kernel
//! module that maintains a histogram of the program counter [...]; a
//! runtime routine [...] inserted by the compilers at the head of every
//! function [...]; and a postprocessing program that aggregates and
//! presents the data. [...] These two sources of information are combined
//! by post-processing to produce a table of each function listing the
//! number of times it was called, the time spent in it, and the average
//! time per call." (retrospective)
//!
//! prof has no call graph: a routine's time never flows to its callers.
//! That is precisely the limitation that motivated gprof — "as we
//! partitioned operations across several functions [...] the time for an
//! operation spread across the several functions" — and the comparison
//! experiment measures it.
//!
//! # Example
//!
//! ```
//! use graphprof_machine::{CompileOptions, Program};
//! use graphprof_prof::run_prof;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Program::builder();
//! b.routine("main", |r| r.call_n("leaf", 10));
//! b.routine("leaf", |r| r.work(100));
//! // prof uses counter instrumentation, not arc recording.
//! let exe = b.build()?.compile(&CompileOptions::counted())?;
//! let report = run_prof(exe, 10, 1e6)?;
//! assert_eq!(report.row("leaf").unwrap().calls, Some(10));
//! # Ok(())
//! # }
//! ```

use graphprof_machine::{Addr, Executable, InterpError, Machine, MachineConfig, SymbolTable};
use graphprof_monitor::{Histogram, RuntimeProfiler};

/// One row of the prof table: a passive data record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfRow {
    /// Routine name.
    pub name: String,
    /// Percentage of total time spent in the routine itself.
    pub percent: f64,
    /// Seconds spent in the routine itself.
    pub self_seconds: f64,
    /// Number of calls counted by the runtime routine; `None` when the
    /// routine was compiled without the counting prologue.
    pub calls: Option<u64>,
    /// Average self milliseconds per call.
    pub ms_per_call: Option<f64>,
}

/// The prof report: a flat table, nothing more.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfReport {
    rows: Vec<ProfRow>,
    total_seconds: f64,
}

impl ProfReport {
    /// Builds the report from a histogram and per-routine call counts
    /// (`counts` pairs routine entry addresses with counts, as produced by
    /// [`RuntimeProfiler::call_counts`]).
    pub fn build(
        symbols: &SymbolTable,
        histogram: &Histogram,
        counts: &[(Addr, u64)],
        cycles_per_tick: u64,
        cycles_per_second: f64,
    ) -> ProfReport {
        let (self_cycles, _unattributed) =
            graphprof::profile::assign_self_cycles(histogram, symbols, cycles_per_tick);
        let total_cycles: f64 = self_cycles.iter().sum();
        let total_seconds = total_cycles / cycles_per_second;
        let mut rows = Vec::new();
        for (id, sym) in symbols.iter() {
            let self_seconds = self_cycles[id.index()] / cycles_per_second;
            let calls = counts.iter().find(|&&(addr, _)| addr == sym.addr()).map(|&(_, c)| c);
            if self_seconds == 0.0 && calls.unwrap_or(0) == 0 {
                continue;
            }
            rows.push(ProfRow {
                name: sym.name().to_string(),
                percent: if total_cycles > 0.0 {
                    100.0 * self_cycles[id.index()] / total_cycles
                } else {
                    0.0
                },
                self_seconds,
                calls,
                ms_per_call: calls.filter(|&c| c > 0).map(|c| self_seconds * 1e3 / c as f64),
            });
        }
        rows.sort_by(|a, b| {
            b.self_seconds
                .partial_cmp(&a.self_seconds)
                .expect("self times are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
        ProfReport { rows, total_seconds }
    }

    /// The rows, sorted by decreasing self time.
    pub fn rows(&self) -> &[ProfRow] {
        &self.rows
    }

    /// Total execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// Finds a row by routine name.
    pub fn row(&self, name: &str) -> Option<&ProfRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the classic three-column-ish prof table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(" %time   seconds     calls  ms/call  name\n");
        for row in &self.rows {
            let calls = row.calls.map(|c| c.to_string()).unwrap_or_default();
            let ms = row.ms_per_call.map(|v| format!("{v:.2}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{:>6.1} {:>9.2} {:>9} {:>8}  {}",
                row.percent, row.self_seconds, calls, ms, row.name,
            );
        }
        let _ = writeln!(out, "\ntotal: {:.2} seconds", self.total_seconds);
        out
    }
}

/// Runs an executable (compiled with
/// [`CompileOptions::counted`](graphprof_machine::CompileOptions::counted))
/// under prof-style monitoring and builds the report.
///
/// # Errors
///
/// Propagates any [`InterpError`] from the run.
pub fn run_prof(
    exe: Executable,
    cycles_per_tick: u64,
    cycles_per_second: f64,
) -> Result<ProfReport, InterpError> {
    let mut profiler = RuntimeProfiler::new(&exe, cycles_per_tick);
    let config = MachineConfig { cycles_per_tick, ..MachineConfig::default() };
    let symbols = exe.symbols().clone();
    let mut machine = Machine::with_config(exe, config);
    machine.run(&mut profiler)?;
    Ok(ProfReport::build(
        &symbols,
        profiler.histogram(),
        &profiler.call_counts(),
        cycles_per_tick,
        cycles_per_second,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_machine::CompileOptions;

    fn counted_exe(source: &str) -> Executable {
        graphprof_machine::asm::parse(source).unwrap().compile(&CompileOptions::counted()).unwrap()
    }

    #[test]
    fn counts_and_times_per_routine() {
        let exe = counted_exe(
            "routine main { loop 5 { call leaf } }
             routine leaf { work 1000 }",
        );
        let report = run_prof(exe, 10, 1e6).unwrap();
        let leaf = report.row("leaf").unwrap();
        assert_eq!(leaf.calls, Some(5));
        assert!(leaf.self_seconds > 0.0);
        assert!(leaf.ms_per_call.unwrap() > 0.0);
        assert_eq!(report.rows()[0].name, "leaf", "sorted by self time");
    }

    #[test]
    fn prof_shows_diffuse_abstraction_costs() {
        // The motivating failure: an abstraction split across three
        // routines shows as three small times, not one big one.
        let exe = counted_exe(
            "routine main { loop 10 { call lookup call insert call delete } }
             routine lookup { work 300 }
             routine insert { work 300 }
             routine delete { work 300 }",
        );
        let report = run_prof(exe, 10, 1e6).unwrap();
        for name in ["lookup", "insert", "delete"] {
            let row = report.row(name).unwrap();
            assert!(row.percent < 40.0, "{name} shows only its slice");
            assert!(row.percent > 25.0);
        }
        // prof has no way to show the combined 99%.
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let exe = counted_exe(
            "routine main { call a call b }
             routine a { work 600 }
             routine b { work 400 }",
        );
        let report = run_prof(exe, 5, 1e6).unwrap();
        let sum: f64 = report.rows().iter().map(|r| r.percent).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn never_run_routines_are_omitted() {
        let exe = counted_exe(
            "routine main { work 100 }
             routine unused { work 100 }",
        );
        let report = run_prof(exe, 5, 1e6).unwrap();
        assert!(report.row("unused").is_none());
        assert!(report.row("main").is_some());
    }

    #[test]
    fn render_contains_table() {
        let exe = counted_exe("routine main { work 500 }");
        let report = run_prof(exe, 5, 1e6).unwrap();
        let text = report.render();
        assert!(text.contains("%time"));
        assert!(text.contains("main"));
        assert!(text.contains("total:"));
    }
}
