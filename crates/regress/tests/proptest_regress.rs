//! Property-based no-false-positive guarantees for the regression gate.
//!
//! The engine's whole claim is that at `min_sigma >= 3` sampling noise
//! does not trip the gate. Two properties pin that down:
//!
//! 1. any profile compared against itself is clean — the degenerate
//!    zero-noise case must never flag, whatever the sample counts or
//!    arc counts look like;
//! 2. a multinomial resample of the same underlying distribution (same
//!    total sample count, redistributed at random with per-routine
//!    probabilities equal to the observed frequencies; arcs identical)
//!    is clean at `min_sigma >= 3`. The engine's noise model treats the
//!    two sides as independent, so its sigma *over*-estimates the noise
//!    of a conservation-constrained resample — a 3-sigma engine score
//!    needs a >4-sigma real fluctuation, which these case counts make
//!    vanishingly unlikely.
//!
//! The resample is driven by a proptest-chosen seed through the vendored
//! `rand`, so a failing case is reproducible from the persisted seed.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use graphprof_machine::{CompileOptions, Executable, Program};
use graphprof_monitor::{GmonData, Histogram, RawArc};
use graphprof_regress::{compare, CompareOptions, Thresholds};

/// Number of leaf routines under `main`.
const NLEAVES: usize = 4;

fn exe() -> &'static Executable {
    static EXE: OnceLock<Executable> = OnceLock::new();
    EXE.get_or_init(|| {
        let mut b = Program::builder();
        b.routine("main", |r| {
            let mut r = r.work(4);
            for i in 0..NLEAVES {
                r = r.call(format!("f{i}"));
            }
            r
        });
        for i in 0..NLEAVES {
            b.routine(format!("f{i}"), |r| r.work(8));
        }
        b.build().unwrap().compile(&CompileOptions::profiled()).unwrap()
    })
}

fn leaf_addrs(exe: &Executable) -> Vec<graphprof_machine::Addr> {
    (0..NLEAVES).map(|i| exe.symbols().by_name(&format!("f{i}")).unwrap().1.addr()).collect()
}

/// Builds a gmon whose histogram puts `counts[i]` samples in routine
/// `f<i>` and whose arcs record `calls[i]` calls `main -> f<i>`.
fn gmon(exe: &Executable, counts: &[u64], calls: &[u64]) -> GmonData {
    let symbols = exe.symbols();
    let main = symbols.by_name("main").unwrap().1.addr();
    let text_len = exe.end().checked_sub(exe.base()).unwrap();
    let mut h = Histogram::new(exe.base(), text_len, 0);
    let addrs = leaf_addrs(exe);
    for (addr, &n) in addrs.iter().zip(counts) {
        if n > 0 {
            h.record(*addr, n);
        }
    }
    let arcs = addrs
        .iter()
        .zip(calls)
        .filter(|(_, &c)| c > 0)
        .map(|(addr, &c)| RawArc { from_pc: main, self_pc: *addr, count: c })
        .collect();
    GmonData::new(10, h, arcs)
}

/// Redistributes `counts` multinomially: same total, per-routine
/// probability proportional to the observed count. Routines with zero
/// observed samples keep zero — the support of the distribution is
/// preserved exactly.
fn resample(counts: &[u64], seed: u64) -> Vec<u64> {
    let total: u64 = counts.iter().sum();
    let mut out = vec![0u64; counts.len()];
    if total == 0 {
        return out;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..total {
        let mut pick = rng.gen_range(0..total);
        for (i, &c) in counts.iter().enumerate() {
            if pick < c {
                out[i] += 1;
                break;
            }
            pick -= c;
        }
    }
    out
}

fn arb_counts() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..300, NLEAVES)
}

fn arb_calls() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1000, NLEAVES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A profile is never a regression of itself, at any thresholds with
    /// `min_sigma >= 3`.
    #[test]
    fn a_profile_never_regresses_against_itself(
        counts in arb_counts(),
        calls in arb_calls(),
        sigma_milli in 3000u64..10_000,
    ) {
        let min_sigma = sigma_milli as f64 / 1000.0;
        let exe = exe();
        let profile = gmon(exe, &counts, &calls);
        let opts = CompareOptions {
            thresholds: Thresholds { min_sigma, ..Thresholds::default() },
            ..CompareOptions::default()
        };
        let report = compare(exe, &profile, &profile, &opts).unwrap();
        prop_assert!(report.is_clean(), "{}", report.render_text("self", "self"));
    }

    /// Same-distribution sampling noise never flags at `min_sigma >= 3`:
    /// the after side is a multinomial redraw of the before side's
    /// histogram (identical total, identical arcs).
    #[test]
    fn resampled_noise_never_flags_at_three_sigma(
        counts in arb_counts(),
        calls in arb_calls(),
        seed in any::<u64>(),
        sigma_milli in 3000u64..10_000,
    ) {
        let min_sigma = sigma_milli as f64 / 1000.0;
        let exe = exe();
        let before = gmon(exe, &counts, &calls);
        let after = gmon(exe, &resample(&counts, seed), &calls);
        let opts = CompareOptions {
            thresholds: Thresholds { min_sigma, ..Thresholds::default() },
            ..CompareOptions::default()
        };
        let report = compare(exe, &before, &after, &opts).unwrap();
        prop_assert!(report.is_clean(), "{}", report.render_text("before", "resampled"));
    }
}
