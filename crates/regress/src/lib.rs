//! `graphprof-regress` — a statistical regression gate over profiles.
//!
//! The paper's §3.2 caveat — "the profiling data is statistical in
//! nature [...] we expect the error in the sampling to be proportional
//! to the square root of the number of samples" — is exactly why a
//! textual `diff` of two profiles cannot gate a CI pipeline: every run
//! moves a little, and an eyeball cannot tell sampling noise from a real
//! slowdown. This crate scores each routine's movement in *sigmas* of
//! expected noise (per-routine sample moments from
//! [`graphprof::profile::assign_sample_moments`]) and flags only
//! movements that clear three configurable gates at once: `min_sigma`
//! (significance), `min_ticks` (absolute), `min_pct` (relative). Call
//! counts (exact) and propagated descendant time (conservatively
//! bounded) are compared alongside self time.
//!
//! One engine serves both verbs: `graphprof regress <before> <after>`
//! over offline gmon files, and `graphprof remote regress` against a
//! collection server's retained windows (newest-vs-newest, `--window N`,
//! or `--baseline K` against a trailing mean). The report renders as
//! ranked text or versioned `graphprof-regress-report/1` JSON and maps
//! to exit codes 1 (regressed) / 0 (clean) / 2 (usage).
//!
//! See `docs/REGRESSION.md` for the math and the CI recipe.

pub mod engine;
pub mod report;

pub use engine::{compare, CompareError, CompareOptions, Thresholds};
pub use report::{diff_to_json, milli, RegressReport, RoutineScore};

#[cfg(test)]
mod tests {
    use super::*;
    use graphprof_analysis::json::Value;
    use graphprof_machine::{CompileOptions, Executable, Program};
    use graphprof_monitor::{GmonData, Histogram};

    fn exe_two_routines() -> Executable {
        let mut b = Program::builder();
        b.routine("main", |r| r.work(10).call("leaf"));
        b.routine("leaf", |r| r.work(10));
        b.build().unwrap().compile(&CompileOptions::profiled()).unwrap()
    }

    fn gmon_with(exe: &Executable, routine: &str, samples: u64) -> GmonData {
        let symbols = exe.symbols();
        let (_, sym) = symbols.by_name(routine).unwrap();
        let text_len = exe.end().checked_sub(exe.base()).unwrap();
        let mut h = Histogram::new(exe.base(), text_len, 0);
        h.record(sym.addr(), samples);
        GmonData::new(10, h, vec![])
    }

    /// The acceptance-criteria fixture: 16 samples before vs 48 after,
    /// wholly inside one routine. The documented formula gives
    /// sigma = |48 - 16| / sqrt(16 + 48) = 32 / 8 = 4 exactly.
    #[test]
    fn hand_checked_sigma_matches_the_root_samples_formula() {
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 16);
        let after = gmon_with(&exe, "main", 48);
        let report = compare(&exe, &before, &after, &CompareOptions::default()).unwrap();
        let row = report.rows.iter().find(|r| r.name == "main").unwrap();
        assert_eq!(row.sigma, 4.0);
        assert!(row.causes.contains(&"self-time"), "{row:?}");
        assert!(!report.is_clean());
        assert_eq!(report.exit_code(), 1);
        let json = report.to_json("b.gmon", "a.gmon");
        assert_eq!(json.get("schema").and_then(Value::as_str), Some("graphprof-regress-report/1"));
        assert_eq!(json.get("exit").and_then(Value::as_int), Some(1));
        let routines = json.get("routines").and_then(Value::as_array).unwrap();
        let main = routines
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("main"))
            .unwrap();
        assert_eq!(main.get("sigma_milli").and_then(Value::as_int), Some(4000));
        assert_eq!(main.get("delta_milli").and_then(Value::as_int), Some(32_000));
    }

    #[test]
    fn a_profile_is_never_a_regression_of_itself() {
        let exe = exe_two_routines();
        let gmon = gmon_with(&exe, "main", 100);
        let report = compare(&exe, &gmon, &gmon, &CompareOptions::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render_text("a", "a"));
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn improvements_never_flag() {
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 48);
        let after = gmon_with(&exe, "main", 16);
        let report = compare(&exe, &before, &after, &CompareOptions::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render_text("b", "a"));
    }

    #[test]
    fn thresholds_gate_together_not_separately() {
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 16);
        let after = gmon_with(&exe, "main", 48);
        // Same 4-sigma movement, but the absolute gate is above it.
        let strict = CompareOptions {
            thresholds: Thresholds { min_ticks: 100.0, ..Thresholds::default() },
            ..CompareOptions::default()
        };
        assert!(compare(&exe, &before, &after, &strict).unwrap().is_clean());
        // And a sigma gate above 4 also silences it.
        let stricter = CompareOptions {
            thresholds: Thresholds { min_sigma: 4.5, ..Thresholds::default() },
            ..CompareOptions::default()
        };
        assert!(compare(&exe, &before, &after, &stricter).unwrap().is_clean());
    }

    #[test]
    fn a_baseline_of_k_windows_compares_against_the_mean() {
        let exe = exe_two_routines();
        // Four windows of 16 samples each, summed: mean 16, variance 4.
        let mut baseline = gmon_with(&exe, "main", 16);
        for _ in 0..3 {
            baseline.merge(&gmon_with(&exe, "main", 16)).unwrap();
        }
        let after = gmon_with(&exe, "main", 48);
        let opts = CompareOptions { before_windows: 4, ..CompareOptions::default() };
        let report = compare(&exe, &baseline, &after, &opts).unwrap();
        let row = report.rows.iter().find(|r| r.name == "main").unwrap();
        assert_eq!(row.before_self, 16.0);
        // sigma = 32 / sqrt(64/16 + 48) = 32 / sqrt(52)
        assert!((row.sigma - 32.0 / 52.0_f64.sqrt()).abs() < 1e-12, "{}", row.sigma);
        assert!(!report.is_clean());
    }

    #[test]
    fn call_count_growth_flags_on_the_relative_gate() {
        use graphprof_machine::Addr;
        use graphprof_monitor::RawArc;
        let exe = exe_two_routines();
        let symbols = exe.symbols();
        let leaf = symbols.by_name("leaf").unwrap().1;
        let text_len = exe.end().checked_sub(exe.base()).unwrap();
        let with_calls = |count: u64| {
            let h = Histogram::new(exe.base(), text_len, 0);
            GmonData::new(10, h, vec![RawArc { from_pc: Addr::NULL, self_pc: leaf.addr(), count }])
        };
        let report =
            compare(&exe, &with_calls(100), &with_calls(150), &CompareOptions::default()).unwrap();
        let row = report.rows.iter().find(|r| r.name == "leaf").unwrap();
        assert_eq!(row.causes, vec!["call-count"]);
        // Equal counts stay clean.
        let same =
            compare(&exe, &with_calls(100), &with_calls(100), &CompareOptions::default()).unwrap();
        assert!(same.is_clean());
    }

    #[test]
    fn mismatched_sampling_periods_are_incomparable() {
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 16);
        let text_len = exe.end().checked_sub(exe.base()).unwrap();
        let after = GmonData::new(20, Histogram::new(exe.base(), text_len, 0), vec![]);
        let err = compare(&exe, &before, &after, &CompareOptions::default()).unwrap_err();
        assert!(matches!(err, CompareError::TickMismatch { before: 10, after: 20 }));
    }

    #[test]
    fn text_report_names_the_verdict() {
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 16);
        let after = gmon_with(&exe, "main", 48);
        let report = compare(&exe, &before, &after, &CompareOptions::default()).unwrap();
        let text = report.render_text("b.gmon", "a.gmon");
        assert!(text.contains("regression report: b.gmon -> a.gmon"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("self-time"), "{text}");
        let clean = compare(&exe, &before, &before, &CompareOptions::default()).unwrap();
        assert!(clean.render_text("b", "b").contains("CLEAN"));
    }

    #[test]
    fn json_round_trips_through_the_dialect_parser() {
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 16);
        let after = gmon_with(&exe, "leaf", 48);
        let report = compare(&exe, &before, &after, &CompareOptions::default()).unwrap();
        let json = report.to_json("b", "a");
        let text = json.to_pretty();
        assert_eq!(graphprof_analysis::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn diff_json_carries_nulls_for_one_sided_routines() {
        use graphprof::{diff_profiles, Gprof, Options};
        let exe = exe_two_routines();
        let before = gmon_with(&exe, "main", 16);
        let after = gmon_with(&exe, "leaf", 48);
        let gp = Gprof::new(Options::default());
        let diff =
            diff_profiles(&gp.analyze(&exe, &before).unwrap(), &gp.analyze(&exe, &after).unwrap());
        let json = diff_to_json(&diff);
        assert_eq!(json.get("schema").and_then(Value::as_str), Some("graphprof-diff/1"));
        let rows = json.get("rows").and_then(Value::as_array).unwrap();
        assert!(!rows.is_empty());
        let text = json.to_pretty();
        assert_eq!(graphprof_analysis::json::parse(&text).unwrap(), json);
    }
}
