//! The comparison engine: noise-model scoring of two profiles.
//!
//! The paper is explicit that histogram data is statistical: "the
//! profiling data is statistical in nature [...] we expect the error in
//! the sampling to be proportional to the square root of the number of
//! samples". This module turns that sentence into a gate. Each routine's
//! self time carries first and second sample moments
//! ([`graphprof::profile::assign_sample_moments`]); a delta between two
//! profiles is scored as
//!
//! ```text
//! sigma = |after - before| / sqrt(var_before + var_after)
//! ```
//!
//! and only movements that exceed *every* configured threshold —
//! `min_sigma` (statistical significance), `min_ticks` (absolute
//! movement), `min_pct` (relative movement) — are declared regressions.
//! Two more comparators ride along: call counts (exact, so gated on the
//! relative threshold alone) and descendant time (propagated totals,
//! whose variance is bounded conservatively by the whole run's sample
//! count — a child's samples can flow into any ancestor's total, so no
//! tighter per-routine bound exists without tracking covariance).
//!
//! A baseline of `K` earlier windows enters as their *sum* with
//! `before_windows = K`: the engine compares against the per-window mean
//! `sum/K`, whose variance shrinks as `var/K²` — the usual
//! standard-error-of-the-mean scaling.

use graphprof::profile::assign_sample_moments;
use graphprof::{Analysis, AnalyzeError, Gprof, Options};
use graphprof_machine::Executable;
use graphprof_monitor::GmonData;

use crate::report::{RegressReport, RoutineScore};

/// The three gates a movement must clear to count as a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Minimum significance in sigmas of sampling noise (`--min-sigma`).
    pub min_sigma: f64,
    /// Minimum absolute self-time movement in ticks (`--min-ticks`).
    pub min_ticks: f64,
    /// Minimum relative movement in percent (`--min-pct`).
    pub min_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { min_sigma: 3.0, min_ticks: 1.0, min_pct: 5.0 }
    }
}

/// How to interpret the `before` side of a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// The thresholds every comparator gates on.
    pub thresholds: Thresholds,
    /// Number of windows summed into the `before` profile. The engine
    /// compares against their mean (`sum / K`) with variance `var / K²`.
    pub before_windows: u64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions { thresholds: Thresholds::default(), before_windows: 1 }
    }
}

/// Why a comparison could not run at all (as opposed to running clean).
#[derive(Debug)]
pub enum CompareError {
    /// The two profiles sample at different periods; their tick counts
    /// are not commensurable.
    TickMismatch {
        /// Cycles per tick of the `before` profile.
        before: u64,
        /// Cycles per tick of the `after` profile.
        after: u64,
    },
    /// One side failed post-processing (totals need the propagated call
    /// graph).
    Analyze(AnalyzeError),
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::TickMismatch { before, after } => {
                write!(f, "profiles sample at different periods ({before} vs {after} cycles/tick)")
            }
            CompareError::Analyze(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for CompareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompareError::Analyze(e) => Some(e),
            CompareError::TickMismatch { .. } => None,
        }
    }
}

impl From<AnalyzeError> for CompareError {
    fn from(e: AnalyzeError) -> Self {
        CompareError::Analyze(e)
    }
}

/// Compares two profiles of one executable and scores every routine.
///
/// `before` may be a sum of `opts.before_windows` windows (a trailing
/// baseline); `after` is always a single profile. Rows come ranked:
/// regressed routines first by descending sigma, then everything else by
/// descending absolute self delta.
///
/// # Errors
///
/// Fails only when the profiles are incomparable ([`CompareError`]);
/// a clean comparison is a successful report with no regressions.
pub fn compare(
    exe: &Executable,
    before: &GmonData,
    after: &GmonData,
    opts: &CompareOptions,
) -> Result<RegressReport, CompareError> {
    if before.cycles_per_tick() != after.cycles_per_tick() {
        return Err(CompareError::TickMismatch {
            before: before.cycles_per_tick(),
            after: after.cycles_per_tick(),
        });
    }
    let t = &opts.thresholds;
    let k = (opts.before_windows.max(1)) as f64;
    let symbols = exe.symbols();

    let (moments_b, _) = assign_sample_moments(before.histogram(), symbols);
    let (moments_a, _) = assign_sample_moments(after.histogram(), symbols);
    let calls_b = calls_per_symbol(exe, before);
    let calls_a = calls_per_symbol(exe, after);
    let analysis_b = Gprof::new(Options::default()).analyze(exe, before)?;
    let analysis_a = Gprof::new(Options::default()).analyze(exe, after)?;
    let totals_b = totals_in_ticks(&analysis_b, before, symbols.len());
    let totals_a = totals_in_ticks(&analysis_a, after, symbols.len());

    // The conservative variance bound for propagated totals: every
    // sample of the run can end up in a routine's total.
    let run_var_b = before.histogram().total() as f64;
    let run_var_a = after.histogram().total() as f64;

    let mut rows = Vec::with_capacity(symbols.len());
    for (id, sym) in symbols.iter() {
        let i = id.index();
        let (sum_b, varsum_b) = moments_b[i];
        let (self_a, var_a) = moments_a[i];
        let self_b = sum_b / k;
        let var_b = varsum_b / (k * k);
        let delta = self_a - self_b;
        let sigma = sigma_of(delta, var_b + var_a);
        let pct = pct_of(delta, self_b);

        let call_b = calls_b[i] as f64 / k;
        let call_a = calls_a[i] as f64;
        let call_delta = call_a - call_b;
        let call_pct = pct_of(call_delta, call_b);

        let total_b = totals_b[i] / k;
        let total_a = totals_a[i];
        let total_delta = total_a - total_b;
        let total_sigma = sigma_of(total_delta, run_var_b / (k * k) + run_var_a);
        let total_pct = pct_of(total_delta, total_b);

        let mut causes = Vec::new();
        if delta > 0.0 && sigma >= t.min_sigma && delta >= t.min_ticks && pct >= t.min_pct {
            causes.push("self-time");
        }
        if call_delta >= 1.0 && call_pct >= t.min_pct {
            causes.push("call-count");
        }
        if total_delta > 0.0
            && total_sigma >= t.min_sigma
            && total_delta >= t.min_ticks
            && total_pct >= t.min_pct
        {
            causes.push("descendant-time");
        }

        if self_b == 0.0
            && self_a == 0.0
            && call_b == 0.0
            && call_a == 0.0
            && total_b == 0.0
            && total_a == 0.0
        {
            continue; // inert routine: nothing to report on either side
        }
        rows.push(RoutineScore {
            name: sym.name().to_string(),
            before_self: self_b,
            after_self: self_a,
            sigma,
            pct,
            before_calls: call_b,
            after_calls: call_a,
            before_total: total_b,
            after_total: total_a,
            total_sigma,
            causes,
        });
    }
    rows.sort_by(|a, b| {
        b.regressed()
            .cmp(&a.regressed())
            .then_with(|| b.score().partial_cmp(&a.score()).expect("scores are not NaN"))
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(RegressReport {
        before_windows: opts.before_windows.max(1),
        thresholds: *t,
        before_total: before.histogram().total() as f64 / k,
        after_total: after.histogram().total() as f64,
        rows,
    })
}

fn sigma_of(delta: f64, variance: f64) -> f64 {
    if variance > 0.0 {
        delta.abs() / variance.sqrt()
    } else {
        0.0
    }
}

fn pct_of(delta: f64, base: f64) -> f64 {
    if base > 0.0 {
        100.0 * delta / base
    } else if delta > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

fn calls_per_symbol(exe: &Executable, gmon: &GmonData) -> Vec<u64> {
    let symbols = exe.symbols();
    let mut out = vec![0u64; symbols.len()];
    for arc in gmon.arcs() {
        if let Some((id, _)) = symbols.lookup_pc(arc.self_pc) {
            out[id.index()] += arc.count;
        }
    }
    out
}

/// Propagated self+descendants time per symbol, converted back to ticks
/// so all three comparators speak one unit.
fn totals_in_ticks(analysis: &Analysis, gmon: &GmonData, nsyms: usize) -> Vec<f64> {
    let ticks_per_second = analysis.cycles_per_second() / gmon.cycles_per_tick() as f64;
    let mut out = vec![0.0; nsyms];
    for row in analysis.flat().rows() {
        let total = analysis
            .call_graph()
            .entry(&row.name)
            .map(|e| e.total_seconds())
            .unwrap_or(row.self_seconds);
        // Flat rows are call-graph nodes; symbol nodes share the symbol's
        // index (the `<spontaneous>` node comes after them and is skipped).
        let idx = row.node.index();
        if idx < out.len() {
            out[idx] = total * ticks_per_second;
        }
    }
    out
}
