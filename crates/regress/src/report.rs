//! Rendering a comparison: ranked text and versioned JSON.
//!
//! The JSON schema is `graphprof-regress-report/1`, in the workspace's
//! integer-only JSON dialect ([`graphprof_analysis::json`]): every
//! fractional quantity is emitted ×1000 and rounded (`*_milli` keys),
//! which keeps parsers trivial and diffs stable. `exit` mirrors the
//! process exit code the report implies: 1 when any routine regressed,
//! 0 when clean — usage errors (exit 2) never produce a report.

use std::fmt::Write as _;

use graphprof::ProfileDiff;
use graphprof_analysis::json::Value;

use crate::engine::Thresholds;

/// One routine's scored comparison. Times are in ticks (sampling
/// periods); `before_*` values are per-window means when the before side
/// is a baseline of several windows.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineScore {
    /// Routine name.
    pub name: String,
    /// Mean self ticks on the before side.
    pub before_self: f64,
    /// Self ticks on the after side.
    pub after_self: f64,
    /// Self-time delta in sigmas of expected sampling noise.
    pub sigma: f64,
    /// Relative self-time movement in percent (infinite for a routine
    /// with no before-side time).
    pub pct: f64,
    /// Mean calls on the before side.
    pub before_calls: f64,
    /// Calls on the after side.
    pub after_calls: f64,
    /// Mean self+descendants ticks on the before side.
    pub before_total: f64,
    /// Self+descendants ticks on the after side.
    pub after_total: f64,
    /// Descendant-time delta in sigmas (conservative whole-run bound).
    pub total_sigma: f64,
    /// Which comparators flagged this routine (empty = none).
    pub causes: Vec<&'static str>,
}

impl RoutineScore {
    /// Change in self ticks (positive = slower).
    pub fn self_delta(&self) -> f64 {
        self.after_self - self.before_self
    }

    /// True when any comparator flagged this routine.
    pub fn regressed(&self) -> bool {
        !self.causes.is_empty()
    }

    /// Ranking key: the strongest signal this routine shows.
    pub(crate) fn score(&self) -> f64 {
        self.sigma.max(self.total_sigma).max(self.self_delta().abs())
    }
}

/// The full comparison of two profiles, ranked regressions first.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    /// Number of windows folded into the before side (1 = plain pair).
    pub before_windows: u64,
    /// The thresholds the comparison gated on.
    pub thresholds: Thresholds,
    /// Mean total samples on the before side.
    pub before_total: f64,
    /// Total samples on the after side.
    pub after_total: f64,
    /// Scored routines: regressed first by sigma, then by |delta|.
    pub rows: Vec<RoutineScore>,
}

impl RegressReport {
    /// True when no routine exceeded every threshold.
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed())
    }

    /// The routines that did regress, in rank order.
    pub fn regressions(&self) -> impl Iterator<Item = &RoutineScore> {
        self.rows.iter().filter(|r| r.regressed())
    }

    /// The process exit code this report implies.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }

    /// Renders the ranked text report.
    pub fn render_text(&self, before_label: &str, after_label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "regression report: {before_label} -> {after_label}");
        let baseline = if self.before_windows > 1 {
            format!(" (baseline of {} windows)", self.before_windows)
        } else {
            String::new()
        };
        let t = &self.thresholds;
        let _ = writeln!(
            out,
            "samples: {:.1} -> {:.1}{baseline}; gates: sigma >= {:.2}, ticks >= {:.1}, pct >= {:.1}",
            self.before_total, self.after_total, t.min_sigma, t.min_ticks, t.min_pct,
        );
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>9} {:>8}  verdict  name",
            "self before", "self after", "delta", "sigma"
        );
        for row in &self.rows {
            let verdict = if row.regressed() { row.causes.join(",") } else { "ok".to_string() };
            let _ = writeln!(
                out,
                "{:>12.1} {:>12.1} {:>+9.1} {:>8.2}  {}  {}",
                row.before_self,
                row.after_self,
                row.self_delta(),
                row.sigma,
                verdict,
                row.name,
            );
        }
        let flagged = self.regressions().count();
        if flagged == 0 {
            let _ = writeln!(out, "\nverdict: CLEAN (no movement beyond sampling noise)");
        } else {
            let _ = writeln!(out, "\nverdict: REGRESSED ({flagged} routine(s))");
        }
        out
    }

    /// Emits the versioned `graphprof-regress-report/1` JSON document.
    pub fn to_json(&self, before_label: &str, after_label: &str) -> Value {
        let t = &self.thresholds;
        let routines = self
            .rows
            .iter()
            .map(|row| {
                Value::Object(vec![
                    ("name".into(), Value::Str(row.name.clone())),
                    ("before_self_milli".into(), Value::Int(milli(row.before_self))),
                    ("after_self_milli".into(), Value::Int(milli(row.after_self))),
                    ("delta_milli".into(), Value::Int(milli(row.self_delta()))),
                    ("sigma_milli".into(), Value::Int(milli(row.sigma))),
                    ("pct_milli".into(), Value::Int(milli(row.pct))),
                    ("before_calls_milli".into(), Value::Int(milli(row.before_calls))),
                    ("after_calls_milli".into(), Value::Int(milli(row.after_calls))),
                    ("before_total_milli".into(), Value::Int(milli(row.before_total))),
                    ("after_total_milli".into(), Value::Int(milli(row.after_total))),
                    ("total_sigma_milli".into(), Value::Int(milli(row.total_sigma))),
                    ("regressed".into(), Value::Bool(row.regressed())),
                    (
                        "causes".into(),
                        Value::Array(row.causes.iter().map(|c| Value::Str((*c).into())).collect()),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::Str("graphprof-regress-report/1".into())),
            ("before".into(), Value::Str(before_label.into())),
            ("after".into(), Value::Str(after_label.into())),
            ("before_windows".into(), Value::Int(self.before_windows as i64)),
            ("min_sigma_milli".into(), Value::Int(milli(t.min_sigma))),
            ("min_ticks_milli".into(), Value::Int(milli(t.min_ticks))),
            ("min_pct_milli".into(), Value::Int(milli(t.min_pct))),
            ("before_samples_milli".into(), Value::Int(milli(self.before_total))),
            ("after_samples_milli".into(), Value::Int(milli(self.after_total))),
            ("regressed".into(), Value::Bool(!self.is_clean())),
            ("exit".into(), Value::Int(i64::from(self.exit_code()))),
            ("routines".into(), Value::Array(routines)),
        ])
    }
}

/// A fraction as a rounded ×1000 integer (the dialect carries no
/// floats); non-finite values saturate.
pub fn milli(x: f64) -> i64 {
    (x * 1000.0).round() as i64
}

/// Renders a [`ProfileDiff`] as machine-readable JSON
/// (`graphprof-diff/1`) — the `remote diff --json` payload. Seconds are
/// emitted as milliseconds; routines absent from one side carry `null`.
pub fn diff_to_json(diff: &ProfileDiff) -> Value {
    let opt_milli = |v: Option<f64>| match v {
        Some(v) => Value::Int(milli(v)),
        None => Value::Null,
    };
    let opt_rank = |v: Option<usize>| match v {
        Some(v) => Value::Int(v as i64),
        None => Value::Null,
    };
    let rows = diff
        .rows()
        .iter()
        .map(|row| {
            Value::Object(vec![
                ("name".into(), Value::Str(row.name.clone())),
                ("before_self_ms".into(), opt_milli(row.before_self)),
                ("after_self_ms".into(), opt_milli(row.after_self)),
                ("self_delta_ms".into(), Value::Int(milli(row.self_delta()))),
                ("before_total_ms".into(), opt_milli(row.before_total)),
                ("after_total_ms".into(), opt_milli(row.after_total)),
                ("total_delta_ms".into(), Value::Int(milli(row.total_delta()))),
                ("before_rank".into(), opt_rank(row.before_rank)),
                ("after_rank".into(), opt_rank(row.after_rank)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema".into(), Value::Str("graphprof-diff/1".into())),
        ("before_total_ms".into(), Value::Int(milli(diff.before_total()))),
        ("after_total_ms".into(), Value::Int(milli(diff.after_total()))),
        ("total_delta_ms".into(), Value::Int(milli(diff.total_delta()))),
        (
            "new_bottleneck".into(),
            match diff.new_bottleneck() {
                Some(row) => Value::Str(row.name.clone()),
                None => Value::Null,
            },
        ),
        ("rows".into(), Value::Array(rows)),
    ])
}
