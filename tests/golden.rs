//! Golden-format tests: the character layouts of §5 are part of the
//! deliverable, so they are pinned byte-for-byte on a deterministic
//! fixture (the synthetic profile that reproduces the paper's Figure 4).
//!
//! If a rendering change is intentional, update the expected strings —
//! the diff in the test failure shows exactly what the listing now looks
//! like.

use graphprof_bench::experiments::figures::fig4_profile;

const EXPECTED_ENTRY: &str = "\
call graph profile:

                                         called/total      parents
index  %time     self  descendants   called+self     name      index
                                         called/total      children

                0.20         1.20          4/10         CALLER1 [10]
                0.30         1.80          6/10         CALLER2 [7]
[3]     41.5     0.50         3.00          10+4     EXAMPLE [3]
                1.50         1.00         20/40         SUB1 <cycle1> [9]
                0.00         0.50           1/5         SUB2 [6]
                0.00         0.00           0/5         SUB3 [11]
-----------------------------------------------------------------
";

const EXPECTED_FLAT: &str = "\
flat profile:

 %time  cumulative      self                 self     total
           seconds   seconds      calls  ms/call   ms/call  name
  29.6        2.50      2.50          3    833.33    833.33  LEAF2
  23.7        4.50      2.00          7    285.71    285.71  CYCLEAF
  21.3        6.30      1.80         35     51.43     51.43  SUB1
  14.2        7.50      1.20         13     92.31    246.15  SUB1B
   5.9        8.00      0.50         14     35.71    250.00  EXAMPLE
   1.6        8.13      0.13          1    133.73   4733.73  OTHER
   1.2        8.23      0.10          1    100.00   1500.00  CALLER1
   1.2        8.33      0.10          1    100.00   2200.00  CALLER2
   1.2        8.43      0.10          5     20.00     20.00  SUB3
   0.0        8.43      0.00          5      0.00    500.00  SUB2

total: 8.43 seconds
";

#[test]
fn figure4_entry_renders_exactly() {
    let (cg, _) = fig4_profile();
    let entry = cg.entry("EXAMPLE").expect("EXAMPLE entry");
    let rendered = graphprof::render::render_call_graph_entries(&[entry]);
    assert_eq!(rendered, EXPECTED_ENTRY);
}

#[test]
fn figure4_flat_profile_renders_exactly() {
    let (_, flat) = fig4_profile();
    let rendered = graphprof::render::render_flat(&flat);
    assert_eq!(rendered, EXPECTED_FLAT);
}

#[test]
fn flat_profile_self_times_sum_to_total_line() {
    // The §5.1 invariant, read back out of the *rendered* text: the self
    // column sums to the printed total.
    let (_, flat) = fig4_profile();
    let rendered = graphprof::render::render_flat(&flat);
    let mut sum = 0.0f64;
    for line in rendered.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() >= 7 && fields[0].parse::<f64>().is_ok() {
            sum += fields[2].parse::<f64>().expect("self column");
        }
    }
    assert!((sum - 8.43).abs() < 0.02, "sum of self column: {sum}");
}
