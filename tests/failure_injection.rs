//! Failure injection: corrupt profile files, mismatched executables, and
//! bad options, exercised through the whole pipeline.

use graphprof::{analyze, sum_profiles, AnalyzeError, Gprof, Options};
use graphprof_machine::CompileOptions;
use graphprof_monitor::profiler::profile_to_completion;
use graphprof_monitor::{GmonData, GmonError};
use graphprof_workloads::paper;

fn sample() -> (graphprof_machine::Executable, GmonData) {
    let exe = paper::output_program().compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), 10).expect("runs");
    (exe, gmon)
}

#[test]
fn every_truncation_of_a_profile_file_is_rejected() {
    let (_, gmon) = sample();
    let bytes = gmon.to_bytes();
    for len in 0..bytes.len() {
        let err = GmonData::from_bytes(&bytes[..len]).expect_err("prefix must not parse");
        assert!(
            matches!(err, GmonError::Truncated | GmonError::Corrupt { .. }),
            "prefix {len}: {err:?}"
        );
    }
}

#[test]
fn single_byte_magic_and_version_corruption_detected() {
    let (_, gmon) = sample();
    let good = gmon.to_bytes();
    for i in 0..6 {
        let mut bad = good.clone();
        bad[i] ^= 0xff;
        assert!(GmonData::from_bytes(&bad).is_err(), "flipping header byte {i} must fail");
    }
}

#[test]
fn profile_against_wrong_executable_is_rejected() {
    let (_, gmon) = sample();
    for source in ["routine main { work 5 }", "routine main { work 5 } routine extra { work 5 }"] {
        let other = graphprof_machine::asm::parse(source)
            .expect("parses")
            .compile(&CompileOptions::profiled())
            .expect("compiles");
        let err = analyze(&other, &gmon).expect_err("must mismatch");
        assert!(matches!(err, AnalyzeError::ExecutableMismatch { .. }), "{err}");
    }
}

#[test]
fn arcs_outside_the_symbol_table_are_counted_not_crashed() {
    use graphprof_machine::Addr;
    use graphprof_monitor::{Histogram, RawArc};
    let (exe, _) = sample();
    let text_len = exe.end().checked_sub(exe.base()).expect("end >= base");
    // Handcraft profile data whose arcs point nowhere sensible.
    let h = Histogram::new(exe.base(), text_len, 0);
    let gmon = GmonData::new(
        10,
        h,
        vec![
            RawArc { from_pc: Addr::new(0x10), self_pc: Addr::new(0x20), count: 3 },
            RawArc { from_pc: Addr::NULL, self_pc: exe.entry(), count: 1 },
        ],
    );
    let analysis = analyze(&exe, &gmon).expect("analyzes anyway");
    assert_eq!(analysis.dropped_arcs(), 1, "the unresolvable callee is dropped");
    let main = analysis.call_graph().entry("main").expect("main entry");
    assert_eq!(main.calls.external, 1, "the spontaneous arc survives");
}

#[test]
fn merging_incompatible_profiles_fails_cleanly() {
    let (_, gmon_a) = sample();
    // Different sampling period.
    let exe = paper::output_program().compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon_b, _) = profile_to_completion(exe, 20).expect("runs");
    let err = sum_profiles([&gmon_a, &gmon_b]).expect_err("periods differ");
    assert!(matches!(err, AnalyzeError::Gmon(GmonError::MergeMismatch { .. })));

    // Different program entirely.
    let other_exe = graphprof_machine::asm::parse("routine main { work 9999 }")
        .expect("parses")
        .compile(&CompileOptions::profiled())
        .expect("compiles");
    let (gmon_c, _) = profile_to_completion(other_exe, 10).expect("runs");
    assert!(sum_profiles([&gmon_a, &gmon_c]).is_err());
}

#[test]
fn excluding_unknown_arcs_is_an_error_not_a_silent_noop() {
    let (exe, gmon) = sample();
    for (from, to) in [("ghost", "write"), ("write", "ghost")] {
        let err = Gprof::new(Options::default().exclude_arc(from, to))
            .analyze(&exe, &gmon)
            .expect_err("unknown routine");
        assert!(matches!(err, AnalyzeError::UnknownRoutine { .. }), "{err}");
    }
}

#[test]
fn empty_profile_of_a_real_program_analyzes_to_zeros() {
    use graphprof_monitor::Histogram;
    let (exe, _) = sample();
    let text_len = exe.end().checked_sub(exe.base()).expect("end >= base");
    let gmon = GmonData::new(10, Histogram::new(exe.base(), text_len, 0), vec![]);
    let analysis = analyze(&exe, &gmon).expect("analyzes");
    assert_eq!(analysis.total_seconds(), 0.0);
    assert!(analysis.flat().rows().is_empty());
    // Every routine lands in the never-called listing.
    assert_eq!(analysis.flat().never_called().len(), exe.symbols().len());
}

#[test]
fn malformed_text_fails_static_discovery_but_not_dynamic_analysis() {
    use graphprof_machine::{Addr, Executable, Symbol, SymbolTable};
    use graphprof_monitor::Histogram;
    // An executable whose text is garbage: static crawling must error,
    // and analysis must surface it (rather than panic).
    let text = vec![0xee; 16];
    let symbols = SymbolTable::new(vec![Symbol::new("junk", Addr::new(0x1000), 16, true)]);
    let exe = Executable::new(Addr::new(0x1000), text, symbols, Addr::new(0x1000));
    let gmon = GmonData::new(10, Histogram::new(Addr::new(0x1000), 16, 0), vec![]);
    let err = analyze(&exe, &gmon).expect_err("static crawl fails");
    assert!(matches!(err, AnalyzeError::Decode(_)));
    // Disabling the static graph sidesteps the bad text.
    let analysis = Gprof::new(Options::default().static_graph(false))
        .analyze(&exe, &gmon)
        .expect("dynamic-only analysis succeeds");
    assert_eq!(analysis.total_seconds(), 0.0);
}

#[test]
fn corrupted_bucket_count_is_detected() {
    let (_, gmon) = sample();
    let mut bytes = gmon.to_bytes();
    // The nbuckets field lives at offset 8+8+4+4+4+8 = 36.
    let nbuckets_offset = 36;
    let old = u32::from_le_bytes(bytes[nbuckets_offset..nbuckets_offset + 4].try_into().unwrap());
    bytes[nbuckets_offset..nbuckets_offset + 4].copy_from_slice(&(old - 1).to_le_bytes());
    assert!(GmonData::from_bytes(&bytes).is_err());
}
