//! The stack-sampling profiler on application workloads, scored against
//! the machine's ground truth: the retrospective's "modern profiler"
//! must stay accurate on realistic shapes without any instrumentation.

use graphprof_machine::{CompileOptions, Machine, MachineConfig};
use graphprof_monitor::{StackProfiler, StackReport};
use graphprof_workloads::apps;

fn sample(
    program: &graphprof_machine::Program,
    tick: u64,
) -> (StackReport, graphprof_machine::GroundTruth) {
    let exe = program.compile(&CompileOptions::default()).expect("compiles");
    let mut profiler = StackProfiler::new(&exe, tick);
    let config = MachineConfig { cycles_per_tick: tick, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe, config);
    machine.run(&mut profiler).expect("runs");
    (profiler.finish(), machine.ground_truth().expect("truth enabled"))
}

#[test]
fn compiler_pipeline_inclusive_times_are_exact_at_tick_one() {
    let (report, truth) = sample(&apps::compiler_pipeline(2), 1);
    for routine in truth.routines() {
        if routine.calls == 0 {
            continue;
        }
        let sampled = report.routine(&routine.name).map(|r| r.inclusive_cycles).unwrap_or(0);
        assert_eq!(
            sampled, routine.total_cycles,
            "{}: tick-1 stack sampling is exact",
            routine.name
        );
    }
}

#[test]
fn exclusive_times_match_self_cycles_at_tick_one() {
    let (report, truth) = sample(&apps::network_server(25), 1);
    for routine in truth.routines() {
        let sampled = report.routine(&routine.name).map(|r| r.exclusive_cycles).unwrap_or(0);
        assert_eq!(sampled, routine.self_cycles, "{}", routine.name);
    }
}

#[test]
fn coarse_ticks_degrade_gracefully() {
    let (fine, truth) = sample(&apps::text_formatter(12), 1);
    let (coarse, _) = sample(&apps::text_formatter(12), 200);
    let total = truth.clock() as f64;
    for routine in truth.routines() {
        let f = fine.routine(&routine.name).map(|r| r.inclusive_cycles).unwrap_or(0);
        let c = coarse.routine(&routine.name).map(|r| r.inclusive_cycles).unwrap_or(0);
        // Coarse sampling errs, but big routines stay within a reasonable
        // band of the fine measurement.
        if (f as f64) > 0.2 * total {
            let err = (c as f64 - f as f64).abs() / f as f64;
            assert!(err < 0.25, "{}: {c} vs {f}", routine.name);
        }
    }
}

#[test]
fn edge_attribution_covers_every_hot_call_path() {
    let (report, truth) = sample(&apps::compiler_pipeline(2), 1);
    // The hash routine's three callers are each attributed their own
    // cycles, summing to hash's inclusive total.
    let callers = ["intern", "st_lookup", "st_insert"];
    let sum: u64 =
        callers.iter().filter_map(|c| report.edge(c, "hash")).map(|e| e.inclusive_cycles).sum();
    let hash_incl = truth.routine("hash").expect("truth").total_cycles;
    assert_eq!(sum, hash_incl, "caller shares partition hash's time");
}
