//! End-to-end tests of `graphprof-serve`: concurrent clients uploading
//! windows of a profiled system over TCP, remote kgmon control of a VM
//! hosted inside the server, and the determinism contract — the live
//! aggregate is byte-identical to offline `graphprof -s` over the same
//! blobs in canonical sequence order, at any worker count.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use graphprof::{Gprof, Options};
use graphprof_machine::{CompileOptions, Executable, Machine, MachineConfig};
use graphprof_monitor::{GmonData, RuntimeProfiler};
use graphprof_server::frame::{HEADER_LEN, MAGIC, VERSION};
use graphprof_server::{
    Client, KgmonVerb, MonRange, QueryKind, Request, Response, Server, ServerConfig,
};
use graphprof_workloads::paper::kernel_program;

const TICK: u64 = 10;
const TIMEOUT: Duration = Duration::from_secs(10);

fn kernel_exe() -> Executable {
    kernel_program(10_000_000).compile(&CompileOptions::profiled()).expect("compiles")
}

/// Distinct profile windows of the same system: one long run, a snapshot
/// after each unequal slice. Same executable and tick (so they merge),
/// different contents (so ordering bugs would show).
fn windows(exe: &Executable, n: usize) -> Vec<Vec<u8>> {
    let config = MachineConfig { cycles_per_tick: TICK, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe.clone(), config);
    let mut profiler = RuntimeProfiler::new(exe, TICK);
    let mut blobs = Vec::with_capacity(n);
    for i in 0..n {
        machine.run_for(&mut profiler, 20_000 + 7_000 * i as u64).expect("runs");
        blobs.push(profiler.snapshot().to_bytes());
        profiler.reset();
    }
    blobs
}

fn start(config: ServerConfig, vms: &[&str]) -> graphprof_server::ServerHandle {
    let vms: Vec<String> = vms.iter().map(|s| s.to_string()).collect();
    Server::start(config, kernel_exe(), &vms).expect("binds an ephemeral port")
}

fn ephemeral(jobs: usize) -> ServerConfig {
    ServerConfig { jobs, ..ServerConfig::default() }
}

/// The acceptance scenario: at several worker counts, 4 client threads
/// interleave 8 uploads into one series; the aggregate — and the
/// rendered listing — must be byte-identical to the offline pipeline
/// over the same blobs in sequence order.
#[test]
fn concurrent_uploads_aggregate_deterministically() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 8);
    let offline = graphprof::sum_profiles(
        blobs
            .iter()
            .map(|b| GmonData::from_bytes(b).expect("window parses"))
            .collect::<Vec<_>>()
            .iter(),
    )
    .expect("offline sum")
    .to_bytes();

    for jobs in [1usize, 2, 8] {
        let handle = start(ephemeral(jobs), &[]);
        let addr = handle.addr().to_string();

        std::thread::scope(|s| {
            for t in 0..4usize {
                let (addr, blobs) = (addr.clone(), &blobs);
                s.spawn(move || {
                    let mut client = Client::connect(&addr, TIMEOUT).expect("connects");
                    // Thread t uploads sequences t, t+4: all four threads
                    // interleave within one series.
                    for seq in [t, t + 4] {
                        client.upload("web", seq as u64, &blobs[seq]).expect("accepted");
                    }
                });
            }
        });

        let mut client = Client::connect(&addr, TIMEOUT).expect("connects");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline,
            "aggregate diverged from offline graphprof -s at jobs={jobs}"
        );

        // The rendered listings match the offline post-processor too.
        let offline_analysis = Gprof::new(Options::default().jobs(jobs))
            .analyze(&exe, &GmonData::from_bytes(&offline).unwrap())
            .expect("offline analysis");
        assert_eq!(
            client.query_text("web", QueryKind::Flat).expect("flat"),
            offline_analysis.render_flat()
        );
        assert_eq!(
            client.query_text("web", QueryKind::Graph).expect("graph"),
            offline_analysis.render_call_graph()
        );

        let stats = client.stats().expect("stats");
        assert!(stats.contains("8 uploads"), "{stats}");
        let summary = handle.shutdown();
        assert!(summary.connections >= 5);
        assert_eq!(summary.frame_errors, 0);
    }
}

/// Series diffs reuse `core::diff` server-side.
#[test]
fn diff_of_two_series_matches_offline_diff() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 4);
    let handle = start(ephemeral(1), &[]);
    let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
    for (seq, blob) in blobs[..2].iter().enumerate() {
        client.upload("before", seq as u64, blob).expect("accepted");
    }
    for (seq, blob) in blobs[2..].iter().enumerate() {
        client.upload("after", seq as u64, blob).expect("accepted");
    }

    let parse = |range: std::ops::Range<usize>| {
        graphprof::sum_profiles(
            blobs[range]
                .iter()
                .map(|b| GmonData::from_bytes(b).unwrap())
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap()
    };
    let gprof = Gprof::new(Options::default().jobs(1));
    let offline = graphprof::diff_profiles(
        &gprof.analyze(&exe, &parse(0..2)).unwrap(),
        &gprof.analyze(&exe, &parse(2..4)).unwrap(),
    )
    .render();
    assert_eq!(
        client.diff("before", "after", graphprof_server::ReportFormat::Text).expect("diff"),
        offline
    );
    // And the JSON rendering is the parseable versioned document.
    let json =
        client.diff("before", "after", graphprof_server::ReportFormat::Json).expect("json diff");
    let doc = graphprof_analysis::json::parse(&json).expect("parses");
    assert_eq!(
        doc.get("schema").and_then(graphprof_analysis::json::Value::as_str),
        Some("graphprof-diff/1")
    );
}

/// The control plane: remote kgmon verbs against a VM hosted in the
/// server — on/off, moncontrol, extract (including extract-into-series),
/// reset — while the VM keeps executing.
#[test]
fn remote_kgmon_controls_a_hosted_vm() {
    let exe = kernel_exe();
    let handle = start(ephemeral(1), &["kernel"]);
    let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");

    // Quiesce: off + reset gives an empty window while the VM runs on.
    client.kgmon("kernel", KgmonVerb::Off).expect("off");
    client.kgmon("kernel", KgmonVerb::Reset).expect("reset");
    let Response::Blob(empty) =
        client.kgmon("kernel", KgmonVerb::Extract { into: None }).expect("extract")
    else {
        panic!("extract answers with a blob")
    };
    assert_eq!(GmonData::from_bytes(&empty).expect("parses").histogram().total(), 0);
    let Response::Text(status) = client.kgmon("kernel", KgmonVerb::Status).expect("status") else {
        panic!("status answers with text")
    };
    assert!(status.contains("off"), "{status}");

    // Narrow to one routine, turn on, and wait for samples to land.
    client
        .kgmon("", KgmonVerb::Moncontrol(MonRange::Routine("disk".to_string())))
        .expect("moncontrol (empty vm name resolves to the only VM)");
    client.kgmon("kernel", KgmonVerb::On).expect("on");
    let narrowed = wait_for_window(&mut client, |g| g.histogram().total() > 0);
    let disk = exe.symbols().by_name("disk").expect("disk").1;
    assert!(narrowed.arcs().iter().all(|a| a.self_pc == disk.addr()), "moncontrol leaked arcs");

    // Widen, reset, extract into a series: the snapshot becomes an
    // upload and is queryable like any other series.
    client.kgmon("kernel", KgmonVerb::Moncontrol(MonRange::Off)).expect("widen");
    client.kgmon("kernel", KgmonVerb::Reset).expect("reset");
    let full = wait_for_window(&mut client, |g| {
        g.arcs().iter().any(|a| a.self_pc != disk.addr()) && g.histogram().total() > 0
    });
    assert!(full.histogram().total() > 0);
    client
        .kgmon("kernel", KgmonVerb::Extract { into: Some("snaps".to_string()) })
        .expect("extract into series");
    let flat = client.query_text("snaps", QueryKind::Flat).expect("snapshot series renders");
    assert!(flat.contains("disk"), "{flat}");

    // Failure shapes are rejects, not panics or disconnects.
    let err = client.kgmon("nope", KgmonVerb::On).expect_err("unknown VM");
    assert!(err.to_string().contains("no hosted VM"), "{err}");
    let err = client
        .kgmon("kernel", KgmonVerb::Moncontrol(MonRange::Addrs(0x50, 0x50)))
        .expect_err("empty range");
    assert!(err.to_string().contains("empty moncontrol range"), "{err}");
    let err = client
        .kgmon("kernel", KgmonVerb::Moncontrol(MonRange::Routine("nope".to_string())))
        .expect_err("unknown routine");
    assert!(err.to_string().contains("no routine"), "{err}");
    // The connection survived every reject.
    client.kgmon("kernel", KgmonVerb::Status).expect("still usable");
}

fn wait_for_window(client: &mut Client, ready: impl Fn(&GmonData) -> bool) -> GmonData {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let Response::Blob(bytes) =
            client.kgmon("kernel", KgmonVerb::Extract { into: None }).expect("extract")
        else {
            panic!("extract answers with a blob")
        };
        let gmon = GmonData::from_bytes(&bytes).expect("live snapshot parses");
        if ready(&gmon) {
            return gmon;
        }
        assert!(Instant::now() < deadline, "hosted VM produced no matching window");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Hostile and unlucky connections are isolated: garbage frames,
/// oversized headers, and mid-upload disconnects end (at most) their own
/// connection while a concurrent healthy session keeps working.
#[test]
fn malformed_frames_and_disconnects_do_not_disturb_other_connections() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 2);
    let handle = start(ephemeral(1), &[]);
    let addr = handle.addr();
    let mut healthy = Client::connect(&addr.to_string(), TIMEOUT).expect("connects");
    healthy.upload("web", 0, &blobs[0]).expect("accepted");

    // 1. Pure garbage: the server answers with a rendered error frame
    //    (bad magic) and closes only this connection.
    // Exactly one header's worth of garbage: the server rejects it after
    // those 12 bytes, replies, and closes cleanly (leftover unread input
    // would turn the close into a reset).
    let mut garbage = TcpStream::connect(addr).expect("connects");
    garbage.write_all(b"GARBAGEFRAME").expect("writes");
    let mut reply = Vec::new();
    garbage.read_to_end(&mut reply).expect("server closes after replying");
    let reply_text = String::from_utf8_lossy(&reply);
    assert!(reply_text.contains("bad frame"), "{reply_text}");
    assert!(reply_text.contains("bad magic"), "{reply_text}");

    // 2. An oversized header: rejected from the 12 header bytes alone.
    let mut oversized = TcpStream::connect(addr).expect("connects");
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = 0x01;
    header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    oversized.write_all(&header).expect("writes");
    let mut reply = Vec::new();
    oversized.read_to_end(&mut reply).expect("server closes after replying");
    assert!(String::from_utf8_lossy(&reply).contains("exceeds"), "{reply:?}");

    // 3. Disconnect mid-upload: a valid header promising more payload
    //    than is ever sent, then a hard close.
    let mut quitter = TcpStream::connect(addr).expect("connects");
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = 0x01;
    header[8..12].copy_from_slice(&1024u32.to_le_bytes());
    quitter.write_all(&header).expect("writes");
    quitter.write_all(&[0u8; 100]).expect("writes a partial payload");
    drop(quitter);
    // The disconnect is observed asynchronously by the quitter's handler
    // thread; wait for the server to count all three frame errors.
    let deadline = Instant::now() + TIMEOUT;
    while !healthy.stats().expect("stats").contains("frame errors: 3") {
        assert!(Instant::now() < deadline, "server never counted the mid-upload disconnect");
        std::thread::sleep(Duration::from_millis(10));
    }

    // 4. A structurally valid frame whose blob is not a profile: the
    //    upload is rejected but the *same* connection stays usable.
    let err = healthy.upload("web", 1, b"garbage bytes").expect_err("rejected");
    assert!(err.to_string().contains("rejected"), "{err}");

    // The healthy session never noticed any of it.
    healthy.upload("web", 1, &blobs[1]).expect("accepted");
    let offline = graphprof::sum_profiles(
        blobs.iter().map(|b| GmonData::from_bytes(b).unwrap()).collect::<Vec<_>>().iter(),
    )
    .unwrap()
    .to_bytes();
    assert_eq!(healthy.fetch_sum("web").expect("aggregate"), offline);
    let stats = healthy.stats().expect("stats");
    assert!(stats.contains("2 uploads"), "{stats}");
    assert!(stats.contains("1 rejects"), "{stats}");

    let summary = handle.shutdown();
    assert!(summary.frame_errors >= 3, "garbage, oversized, truncated: {summary:?}");
}

/// The cross-connection duplicate race: several connections upload the
/// *same* `(series, seq)` at the same instant. Exactly one may be
/// answered `Accepted` (0x82); every other racer must get `Duplicate`
/// (0x83) carrying the committed total — never an error, never a second
/// accept, and never a Duplicate answered before the winning upload is
/// actually committed. Exercised at both stripe counts and at the wire
/// level (raw `Request::Upload` round trips), since the race window is
/// between connection handler threads.
#[test]
fn concurrent_same_seq_uploads_race_to_exactly_one_accept() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 1);
    let offline = GmonData::from_bytes(&blobs[0]).unwrap().to_bytes();
    for stripes in [1usize, 4] {
        // Durable with the default (zero-window) group commit: the race
        // window is between staging and the batch fsync, which only the
        // batched lane has.
        let dir = std::env::temp_dir()
            .join(format!("graphprof-duprace-s{stripes}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let handle = start(
            ServerConfig { stripes, data_dir: Some(dir.clone()), ..ServerConfig::default() },
            &[],
        );
        let addr = handle.addr().to_string();
        const RACERS: usize = 8;
        let barrier = std::sync::Barrier::new(RACERS);
        let responses: Vec<Response> = std::thread::scope(|s| {
            let threads: Vec<_> = (0..RACERS)
                .map(|_| {
                    let (addr, blob, barrier) = (addr.clone(), blobs[0].clone(), &barrier);
                    s.spawn(move || {
                        let mut client = Client::connect(&addr, TIMEOUT).expect("connects");
                        let request = Request::Upload { series: "race".to_string(), seq: 0, blob };
                        barrier.wait();
                        client.roundtrip(&request).expect("server answers every racer")
                    })
                })
                .collect();
            threads.into_iter().map(|t| t.join().unwrap()).collect()
        });

        let accepted = responses
            .iter()
            .filter(|r| matches!(r, Response::Accepted { seq: 0, total: 1, .. }))
            .count();
        let duplicates = responses
            .iter()
            .filter(|r| matches!(r, Response::Duplicate { seq: 0, total: 1, .. }))
            .count();
        assert_eq!((accepted, duplicates), (1, RACERS - 1), "stripes={stripes}: {responses:?}");

        // Exactly one copy was folded in.
        let mut client = Client::connect(&addr, TIMEOUT).expect("connects");
        assert_eq!(client.fetch_sum("race").expect("aggregate"), offline);
        let stats = client.stats().expect("stats");
        assert!(stats.contains("1 uploads"), "{stats}");
        assert!(stats.contains(&format!("{} rejects", RACERS - 1)), "{stats}");
        drop(client);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The server-side regression gate end to end: identical series come
/// back clean and byte-identical to the offline engine, a series with
/// more folded work regresses (in text and in the versioned JSON), and
/// retained windows serve the `--window` and `--baseline` scopes.
#[test]
fn remote_regress_gates_series_against_retained_windows() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 4);
    let handle = start(ServerConfig { jobs: 1, retain: 3, ..ServerConfig::default() }, &[]);
    let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");

    // `base` and `same` hold identical windows; `slow` folds two more.
    for (seq, blob) in blobs[..2].iter().enumerate() {
        client.upload("base", seq as u64, blob).expect("accepted");
        client.upload("same", seq as u64, blob).expect("accepted");
    }
    for (seq, blob) in blobs.iter().enumerate() {
        client.upload("slow", seq as u64, blob).expect("accepted");
    }

    let parse = |range: std::ops::Range<usize>| {
        graphprof::sum_profiles(
            blobs[range]
                .iter()
                .map(|b| GmonData::from_bytes(b).unwrap())
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap()
    };

    // Identical aggregates: clean, and byte-identical to the offline
    // engine over the same summed windows.
    let (regressed, report) = client
        .regress(
            "base",
            "same",
            graphprof_server::RegressScope::Aggregate,
            &graphprof_regress::Thresholds::default(),
            graphprof_server::ReportFormat::Text,
        )
        .expect("regress");
    assert!(!regressed, "{report}");
    let offline = graphprof_regress::compare(
        &exe,
        &parse(0..2),
        &parse(0..2),
        &graphprof_regress::CompareOptions::default(),
    )
    .unwrap()
    .render_text("base", "same");
    assert_eq!(report, offline);

    // Twice the folded work is a regression, and the JSON rendering is
    // the versioned document with the matching verdict.
    let (regressed, report) = client
        .regress(
            "base",
            "slow",
            graphprof_server::RegressScope::Aggregate,
            &graphprof_regress::Thresholds::default(),
            graphprof_server::ReportFormat::Json,
        )
        .expect("regress");
    assert!(regressed, "{report}");
    let doc = graphprof_analysis::json::parse(&report).expect("parses");
    use graphprof_analysis::json::Value;
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("graphprof-regress-report/1"));
    assert_eq!(doc.get("exit").and_then(Value::as_int), Some(1));

    // Window scope: the newest retained window of a series against
    // itself is clean; a depth past the ring is a typed reject that
    // points at --retain.
    let (regressed, report) = client
        .regress(
            "base",
            "base",
            graphprof_server::RegressScope::Window(1),
            &graphprof_regress::Thresholds::default(),
            graphprof_server::ReportFormat::Text,
        )
        .expect("newest window vs itself");
    assert!(!regressed, "{report}");
    let err = client
        .regress(
            "base",
            "base",
            graphprof_server::RegressScope::Window(5),
            &graphprof_regress::Thresholds::default(),
            graphprof_server::ReportFormat::Text,
        )
        .expect_err("past the ring");
    assert!(err.to_string().contains("--retain"), "{err}");

    // Baseline scope: three identical windows — the newest against the
    // mean of the two before it is clean.
    for seq in 0..3u64 {
        client.upload("steady", seq, &blobs[0]).expect("accepted");
    }
    let (regressed, report) = client
        .regress(
            "steady",
            "steady",
            graphprof_server::RegressScope::Baseline(2),
            &graphprof_regress::Thresholds::default(),
            graphprof_server::ReportFormat::Text,
        )
        .expect("baseline");
    assert!(!regressed, "{report}");

    // Unknown series are typed rejects for diff and regress alike, and
    // the connection survives every one of them.
    for (before, after) in [("nope", "base"), ("base", "nope")] {
        let err = client
            .diff(before, after, graphprof_server::ReportFormat::Text)
            .expect_err("unknown series");
        assert!(err.to_string().contains("no such series"), "{err}");
        let err = client
            .regress(
                before,
                after,
                graphprof_server::RegressScope::Aggregate,
                &graphprof_regress::Thresholds::default(),
                graphprof_server::ReportFormat::Text,
            )
            .expect_err("unknown series");
        assert!(err.to_string().contains("no such series"), "{err}");
    }
    client.stats().expect("still usable");
}

/// Without `--retain` the window and baseline scopes are typed rejects
/// (the aggregate is all a default server keeps), never panics.
#[test]
fn window_scopes_without_retention_are_typed_rejects() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 1);
    let handle = start(ephemeral(1), &[]);
    let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
    client.upload("web", 0, &blobs[0]).expect("accepted");
    for scope in
        [graphprof_server::RegressScope::Window(1), graphprof_server::RegressScope::Baseline(1)]
    {
        let err = client
            .regress(
                "web",
                "web",
                scope,
                &graphprof_regress::Thresholds::default(),
                graphprof_server::ReportFormat::Text,
            )
            .expect_err("no retention configured");
        assert!(err.to_string().contains("--retain"), "{err}");
    }
}

/// A duplicate sequence number answers as an idempotent success — the
/// retry contract — while unknown series stay rejects; either way the
/// connection is left usable and the aggregate never double-counts.
#[test]
fn duplicate_and_unknown_series_are_clean_rejects() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 1);
    let handle = start(ephemeral(1), &[]);
    let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");

    client.upload("web", 0, &blobs[0]).expect("accepted");
    // A replayed (series, seq) is how a client retries after a lost
    // ack: the server reports the existing total instead of erroring,
    // and folds nothing in.
    let total = client.upload("web", 0, &blobs[0]).expect("idempotent retry");
    assert_eq!(total, 1, "the retry must not double-count");
    let err = client.query_text("nope", QueryKind::Flat).expect_err("unknown series");
    assert!(err.to_string().contains("no such series"), "{err}");

    let offline = GmonData::from_bytes(&blobs[0]).unwrap().to_bytes();
    assert_eq!(client.fetch_sum("web").expect("aggregate"), offline);
    let stats = client.stats().expect("stats");
    assert!(stats.contains("1 uploads"), "{stats}");
}
