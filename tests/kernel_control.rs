//! End-to-end tests of the kernel-profiling control interface: profiling
//! windows of a long-running system, extracted and analyzed while it
//! keeps running.

use graphprof::{Gprof, Options};
use graphprof_machine::{CompileOptions, Machine, MachineConfig, RunStatus};
use graphprof_monitor::{KgmonTool, SharedProfiler};
use graphprof_workloads::paper::kernel_program;

const TICK: u64 = 10;

fn kernel() -> (graphprof_machine::Executable, Machine, SharedProfiler, KgmonTool) {
    let exe = kernel_program(10_000_000).compile(&CompileOptions::profiled()).expect("compiles");
    let hooks = SharedProfiler::new(&exe, TICK);
    let tool = KgmonTool::attach(hooks.clone());
    let config = MachineConfig { cycles_per_tick: TICK, ..MachineConfig::default() };
    let machine = Machine::with_config(exe.clone(), config);
    (exe, machine, hooks, tool)
}

#[test]
fn windows_are_analyzable_and_independent() {
    let (exe, mut machine, mut hooks, tool) = kernel();

    // Window 1.
    tool.reset();
    assert_eq!(machine.run_for(&mut hooks, 100_000).unwrap(), RunStatus::Paused);
    let window1 = tool.extract();

    // Window 2, after a reset, twice as long.
    tool.reset();
    assert_eq!(machine.run_for(&mut hooks, 200_000).unwrap(), RunStatus::Paused);
    let window2 = tool.extract();

    assert!(window2.histogram().total() > window1.histogram().total());

    for window in [&window1, &window2] {
        let analysis = Gprof::new(Options::default().break_cycles(8))
            .analyze(&exe, window)
            .expect("window analyzes");
        assert_eq!(analysis.call_graph().cycle_count(), 0);
        // In the steady state disk dominates net (80 vs 30 cycles/round).
        let disk = analysis.call_graph().entry("disk").expect("disk");
        let net = analysis.call_graph().entry("net").expect("net");
        assert!(disk.total_seconds() > net.total_seconds());
    }
}

#[test]
fn off_windows_record_nothing_but_system_advances() {
    let (_, mut machine, mut hooks, tool) = kernel();
    tool.turn_off();
    let before = machine.clock();
    machine.run_for(&mut hooks, 100_000).unwrap();
    assert!(machine.clock() >= before + 100_000);
    let window = tool.extract();
    assert_eq!(window.histogram().total(), 0);
    assert!(window.arcs().is_empty());
}

#[test]
fn windows_from_the_same_system_can_be_summed() {
    let (exe, mut machine, mut hooks, tool) = kernel();
    let mut windows = Vec::new();
    for _ in 0..4 {
        tool.reset();
        machine.run_for(&mut hooks, 50_000).unwrap();
        windows.push(tool.extract());
    }
    let summed = graphprof::sum_profiles(windows.iter()).expect("windows merge");
    assert_eq!(
        summed.histogram().total(),
        windows.iter().map(|w| w.histogram().total()).sum::<u64>()
    );
    let analysis = graphprof::analyze(&exe, &summed).expect("summed window analyzes");
    assert!(analysis.total_seconds() > 0.0);
}

#[test]
fn moncontrol_narrows_then_widens_without_stopping() {
    let (exe, mut machine, mut hooks, tool) = kernel();
    let disk = exe.symbols().by_name("disk").expect("disk").1;

    tool.moncontrol(Some((disk.addr(), disk.end())));
    assert_eq!(tool.monitor_range(), Some((disk.addr(), disk.end())));
    machine.run_for(&mut hooks, 100_000).unwrap();
    let narrowed = tool.extract();
    assert!(narrowed.histogram().total() > 0);
    assert!(narrowed.arcs().iter().all(|a| a.self_pc == disk.addr()));

    tool.moncontrol(None);
    tool.reset();
    machine.run_for(&mut hooks, 100_000).unwrap();
    let widened = tool.extract();
    assert!(widened.arcs().iter().any(|a| a.self_pc != disk.addr()));
}

/// The collection server's usage: one tool per hosted VM, cloned across
/// connection-handler threads, every verb through `&self` while the
/// system keeps running. Snapshots taken mid-run must always condense to
/// parseable `gmon.out` bytes.
#[test]
fn concurrent_operators_drive_one_live_system() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (exe, mut machine, mut hooks, tool) = kernel();
    let disk = exe.symbols().by_name("disk").expect("disk").1;
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done = &done;
        s.spawn(move || {
            for _ in 0..50 {
                machine.run_for(&mut hooks, 10_000).unwrap();
            }
            done.store(true, Ordering::SeqCst);
        });
        for role in 0..3 {
            let tool = tool.clone();
            s.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    match role {
                        0 => {
                            let bytes = tool.extract_bytes();
                            graphprof_monitor::GmonData::from_bytes(&bytes)
                                .expect("live snapshot parses");
                        }
                        1 => {
                            tool.moncontrol(Some((disk.addr(), disk.end())));
                            tool.moncontrol(None);
                        }
                        _ => {
                            let _ = tool.is_on();
                            let _ = tool.monitor_range();
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    let final_window = tool.extract();
    assert!(final_window.histogram().total() > 0);
}

#[test]
fn toggling_mid_window_keeps_arcs_and_samples_consistent() {
    let (exe, mut machine, mut hooks, tool) = kernel();
    tool.reset();
    machine.run_for(&mut hooks, 40_000).unwrap();
    tool.turn_off();
    machine.run_for(&mut hooks, 40_000).unwrap();
    tool.turn_on();
    machine.run_for(&mut hooks, 40_000).unwrap();
    let window = tool.extract();
    // The analysis pipeline accepts the stitched window.
    let analysis = graphprof::analyze(&exe, &window).expect("analyzes");
    // Sampled cycles reflect only the on-phases: about 2/3 of elapsed.
    let sampled = window.histogram().total() * TICK;
    assert!(sampled < machine.clock() * 3 / 4);
    assert!(sampled > machine.clock() / 3);
    assert!(analysis.total_seconds() > 0.0);
}
