//! Cycle and recursion handling through the whole pipeline: mutual
//! recursion, self-recursion, recursive-descent shapes, and the Figure 2
//! program.

use graphprof::{analyze, EntryKind, Gprof, Options};
use graphprof_machine::CompileOptions;
use graphprof_monitor::profiler::profile_to_completion;
use graphprof_workloads::{paper, synthetic};

fn analyzed(
    program: &graphprof_machine::Program,
    tick: u64,
) -> (graphprof::Analysis, graphprof_machine::GroundTruth) {
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, machine) = profile_to_completion(exe.clone(), tick).expect("runs");
    let truth = machine.ground_truth().expect("truth enabled");
    let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
        .analyze(&exe, &gmon)
        .expect("analyzes");
    (analysis, truth)
}

#[test]
fn mutual_recursion_becomes_one_cycle_entry() {
    let (analysis, truth) = analyzed(&paper::mutual_recursion_program(11), 1);
    let cg = analysis.call_graph();
    assert_eq!(cg.cycle_count(), 1);
    let whole = cg
        .entries()
        .iter()
        .find(|e| matches!(e.kind, EntryKind::CycleWhole(_)))
        .expect("cycle entry exists");
    // The cycle's pooled self time equals ping+pong's exact self cycles.
    let exact: u64 =
        ["ping", "pong"].iter().map(|n| truth.routine(n).expect("truth").self_cycles).sum();
    assert!(
        (whole.self_seconds - exact as f64).abs() < 1.0,
        "pooled {} vs exact {exact}",
        whole.self_seconds
    );
    // Main is the only external caller: it inherits the cycle's total.
    let main = cg.entry("main").expect("main entry");
    assert!((main.total_seconds() - analysis.total_seconds()).abs() < 1e-6);
    // Members are annotated.
    assert!(cg.entry("ping").expect("ping").name.contains("<cycle1>"));
    assert!(cg.entry("pong").expect("pong").name.contains("<cycle1>"));
}

#[test]
fn self_recursion_is_split_not_cycled() {
    let source = "
        routine main { setcounter 7, 6 call rec }
        routine rec { work 100 callwhile 7, rec }
    ";
    let program = graphprof_machine::asm::parse(source).expect("parses");
    let (analysis, truth) = analyzed(&program, 1);
    let cg = analysis.call_graph();
    assert_eq!(cg.cycle_count(), 0, "a self-loop is not a paper cycle");
    let rec = cg.entry("rec").expect("rec entry");
    assert_eq!(rec.calls.external, 1, "one call from main");
    assert_eq!(rec.calls.recursive, 5, "five self-recursive calls");
    assert_eq!(truth.routine("rec").expect("truth").calls, 6);
    // All of rec's time flows to main despite the recursion.
    let main = cg.entry("main").expect("main entry");
    assert!((main.total_seconds() - analysis.total_seconds()).abs() < 1e-6);
}

#[test]
fn recursive_descent_collapses_to_a_monolithic_cycle() {
    // §6: "most of the major routines are grouped into a single
    // monolithic cycle [...] it is impossible to distinguish which members
    // of the cycle are responsible for the execution time."
    let (analysis, _) = analyzed(&synthetic::recursive_descent_program(30), 1);
    let cg = analysis.call_graph();
    assert_eq!(cg.cycle_count(), 1);
    let whole = cg
        .entries()
        .iter()
        .find(|e| matches!(e.kind, EntryKind::CycleWhole(_)))
        .expect("cycle entry");
    // expr, term, and factor all pooled together.
    let member_names: Vec<&str> = whole.children.iter().map(|c| c.name.as_str()).collect();
    for name in ["expr", "term", "factor"] {
        assert!(member_names.iter().any(|m| m.starts_with(name)), "{name} in {member_names:?}");
    }
    // parse calls into the cycle and inherits its pooled time.
    let parse = cg.entry("parse").expect("parse entry");
    assert!(parse.total_seconds() > whole.self_seconds * 0.9);
}

#[test]
fn figure2_program_collapses_r3_r7() {
    let (analysis, truth) = analyzed(&paper::figure2_program(8), 1);
    let scc = analysis.scc();
    let graph = analysis.graph();
    let r3 = graph.node_by_name("r3").expect("r3");
    let r7 = graph.node_by_name("r7").expect("r7");
    assert_eq!(scc.comp(r3), scc.comp(r7));
    assert_eq!(analysis.call_graph().cycle_count(), 1);
    // The root inherits everything.
    let r0 = analysis.call_graph().entry("r0").expect("r0 entry");
    assert!((r0.total_seconds() - truth.clock() as f64).abs() < 1.0);
}

#[test]
fn intra_cycle_arcs_propagate_no_time() {
    let (analysis, _) = analyzed(&paper::mutual_recursion_program(11), 1);
    let graph = analysis.graph();
    let prop = analysis.propagation();
    let ping = graph.node_by_name("ping").expect("ping");
    let pong = graph.node_by_name("pong").expect("pong");
    for (from, to) in [(ping, pong), (pong, ping)] {
        if let Some(arc) = graph.arc_between(from, to) {
            assert_eq!(prop.arc_flow(arc), 0.0);
        }
    }
}

#[test]
fn excluding_cycle_arc_by_name_splits_the_cycle() {
    let program = paper::mutual_recursion_program(11);
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), 1).expect("runs");
    let plain = analyze(&exe, &gmon).expect("analyzes");
    assert_eq!(plain.call_graph().cycle_count(), 1);
    let split = Gprof::new(Options::default().exclude_arc("pong", "ping"))
        .analyze(&exe, &gmon)
        .expect("analyzes");
    assert_eq!(split.call_graph().cycle_count(), 0);
    // ping and pong now have separate, ordered times.
    let ping = split.call_graph().entry("ping").expect("ping entry");
    let pong = split.call_graph().entry("pong").expect("pong entry");
    assert!(ping.total_seconds() > pong.total_seconds());
}

#[test]
fn deep_recursion_profiles_without_stack_issues() {
    let source = "
        routine main { setcounter 7, 5000 call down }
        routine down { work 3 callwhile 7, down }
    ";
    let program = graphprof_machine::asm::parse(source).expect("parses");
    let (analysis, truth) = analyzed(&program, 10);
    assert_eq!(truth.routine("down").expect("truth").calls, 5000);
    let down = analysis.call_graph().entry("down").expect("down entry");
    assert_eq!(down.calls.external, 1);
    assert_eq!(down.calls.recursive, 4999);
}
