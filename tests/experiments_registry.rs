//! Smoke test over the experiment registry: every figure-class experiment
//! produces a non-empty, well-formed report. (The heavier sweeps are
//! exercised by their own unit tests in `graphprof-bench`.)

use graphprof_bench::{all_experiments, run_experiment};

#[test]
fn registry_lists_every_documented_experiment() {
    let names: Vec<&str> = all_experiments().iter().map(|e| e.name).collect();
    for expected in [
        "fig1",
        "fig2_3",
        "fig4",
        "sec6",
        "overhead",
        "sampling",
        "avgtime",
        "multirun",
        "hashorg",
        "arcremoval",
        "abstraction",
        "staticarcs",
        "perturb",
        "iterate",
        "modern",
        "granularity",
    ] {
        assert!(names.contains(&expected), "{expected} missing from {names:?}");
    }
}

#[test]
fn fast_experiments_produce_reports() {
    for name in ["fig1", "fig2_3", "fig4", "sec6", "staticarcs", "hashorg"] {
        let report = run_experiment(name).unwrap_or_else(|| panic!("{name} exists"));
        assert!(report.len() > 100, "{name} report too short:\n{report}");
        assert!(!report.contains("VIOLATION"), "{name}:\n{report}");
    }
}

#[test]
fn every_experiment_has_a_reproduces_label() {
    for e in all_experiments() {
        assert!(!e.reproduces.is_empty(), "{}", e.name);
        assert!(
            e.reproduces.contains("Section")
                || e.reproduces.contains("Figure")
                || e.reproduces.contains("Retrospective"),
            "{}: {}",
            e.name,
            e.reproduces
        );
    }
}
