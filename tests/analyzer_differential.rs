//! Differential properties pinning the static analyzer to the
//! propagation pipeline.
//!
//! Two independent implementations compute cycle structure: the
//! analyzer's Tarjan pass over its own whole-program static graph
//! ([`ProgramGraph::static_cycle_sets`]) and the `SccResult` the
//! post-processor's `propagate` pass collapses (exposed as
//! [`Analysis::cycle_sets`]). On programs whose calls are all direct,
//! every dynamic arc is also a static arc, so the two graphs have the
//! same edges and the two cycle answers must agree exactly — for any
//! generated program, cyclic or not.
//!
//! The second property is the analyzer's false-positive guarantee: an
//! end-to-end profile of a fully reachable program raises no findings
//! at all.

use proptest::prelude::*;

use graphprof_analysis::{analyze_profile, ProgramGraph};
use graphprof_machine::{CompileOptions, Program, Routine, Stmt};
use graphprof_monitor::profiler::profile_to_completion;

/// One generated routine: busy work, looped calls forward, and an
/// optional conditional call backward (the cycle maker).
#[derive(Debug, Clone)]
struct Plan {
    work: u32,
    /// (offset ahead >= 1, loop count) — forward calls keep the base
    /// structure a DAG.
    calls: Vec<(usize, u32)>,
    /// Raw back-edge choice, reduced mod the routine index at build
    /// time; `callwhile` through the shared budget counter makes the
    /// recursion terminating.
    back: Option<u32>,
}

fn arb_plans() -> impl Strategy<Value = Vec<Plan>> {
    let plan = (
        1u32..200,
        proptest::collection::vec((1usize..4, 1u32..4), 0..3),
        // The vendored proptest has no `option` strategy: values past
        // 15 mean "no back edge", so most routines carry one and most
        // generated programs are cyclic somewhere.
        0u32..20,
    )
        .prop_map(|(work, calls, raw)| Plan { work, calls, back: (raw < 16).then_some(raw) });
    proptest::collection::vec(plan, 2..8)
}

/// Builds a fully reachable program: `f0` is the entry, every `f{i}`
/// calls `f{i+1}` directly (so there are no unreachable islands), extra
/// forward calls add DAG density, and back edges close genuine cycles.
fn build_program(plans: &[Plan], budget: u32) -> Program {
    let n = plans.len();
    let name = |i: usize| format!("f{i}");
    let routines: Vec<Routine> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let mut body = Vec::new();
            if i == 0 {
                body.push(Stmt::SetCounter(7, budget));
            }
            body.push(Stmt::Work(plan.work));
            if i + 1 < n {
                body.push(Stmt::Call(name(i + 1)));
            }
            for &(offset, count) in &plan.calls {
                let callee = (i + offset).min(n - 1);
                if callee != i {
                    body.push(Stmt::Loop { count, body: vec![Stmt::Call(name(callee))] });
                }
            }
            // Back edges target 1..i, never f0: re-entering the entry
            // would reload the budget counter and unbound the recursion.
            if let Some(raw) = plan.back {
                if i > 1 {
                    body.push(Stmt::CallWhile(7, name(1 + raw as usize % (i - 1))));
                }
            }
            Routine::new(name(i), body, true)
        })
        .collect();
    Program::new(routines, "f0").expect("generated programs are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tarjan over the analyzer's static graph collapses exactly the
    /// cycles the propagation pass collapses.
    #[test]
    fn static_sccs_agree_with_propagation(
        plans in arb_plans(),
        budget in 1u32..10,
        tick in 1u64..100,
    ) {
        let program = build_program(&plans, budget);
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let (gmon, _) = profile_to_completion(exe.clone(), tick).expect("runs");

        let graph = ProgramGraph::build(&exe).expect("decodes");
        let analysis = graphprof::analyze(&exe, &gmon).expect("analyzes");
        prop_assert_eq!(graph.static_cycle_sets(), analysis.cycle_sets());
    }

    /// A clean end-to-end profile of a fully reachable, all-direct
    /// program raises no analyzer findings — not even warnings.
    #[test]
    fn clean_profiles_analyze_clean(
        plans in arb_plans(),
        budget in 1u32..10,
        tick in 1u64..100,
    ) {
        let program = build_program(&plans, budget);
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let (gmon, _) = profile_to_completion(exe.clone(), tick).expect("runs");

        let findings = analyze_profile(&exe, &gmon);
        prop_assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}
