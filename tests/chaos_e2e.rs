//! Chaos end-to-end tests of the crash-safe pipeline: deterministic
//! fault injection (torn WAL records, failed fsyncs, dropped and torn
//! frames) against a durable `graphprof-serve`, with a crash and
//! restart after every fault.
//!
//! The invariant under test is the robustness contract: after any
//! injected crash point, a restarted server's aggregate is
//! byte-identical to offline `sum_profiles` over exactly the
//! acknowledged uploads — no acknowledged upload is lost, no retried
//! upload is double-counted — and once clients re-drive their unacked
//! uploads, every upload is counted exactly once.
//!
//! Every scenario runs at stripes ∈ {1, 4}: sharding the ingest path
//! (and group-committing the WAL) must not move any crash point. A
//! single-series workload lands on one stripe either way, so the fault
//! plan's operation indices are identical across stripe counts.

use std::path::{Path, PathBuf};
use std::time::Duration;

use graphprof_machine::{CompileOptions, Executable, Machine, MachineConfig};
use graphprof_monitor::{encode_delta, GmonData, RuntimeProfiler};
use graphprof_server::{
    Client, ClientError, DeltaOutcome, DeltaUploader, FaultPlan, FaultSpec, ResilientClient,
    RetryPolicy, Server, ServerConfig, ServerHandle, UploadMode,
};
use graphprof_workloads::paper::kernel_program;

const TICK: u64 = 10;
const TIMEOUT: Duration = Duration::from_secs(10);
const STRIPE_COUNTS: [usize; 2] = [1, 4];

fn kernel_exe() -> Executable {
    kernel_program(10_000_000).compile(&CompileOptions::profiled()).expect("compiles")
}

/// Distinct profile windows of one system run (same shape, different
/// contents), so any loss, reorder, or double count shows in the bytes.
fn windows(exe: &Executable, n: usize) -> Vec<Vec<u8>> {
    let config = MachineConfig { cycles_per_tick: TICK, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe.clone(), config);
    let mut profiler = RuntimeProfiler::new(exe, TICK);
    let mut blobs = Vec::with_capacity(n);
    for i in 0..n {
        machine.run_for(&mut profiler, 20_000 + 7_000 * i as u64).expect("runs");
        blobs.push(profiler.snapshot().to_bytes());
        profiler.reset();
    }
    blobs
}

fn offline_sum(blobs: &[Vec<u8>]) -> Vec<u8> {
    graphprof::sum_profiles(
        blobs
            .iter()
            .map(|b| GmonData::from_bytes(b).expect("window parses"))
            .collect::<Vec<_>>()
            .iter(),
    )
    .expect("offline sum")
    .to_bytes()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "graphprof-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable(dir: &Path, fault: FaultPlan, stripes: usize) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        fault,
        stripes,
        drain_grace: Duration::from_secs(1),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config, kernel_exe(), &[]).expect("binds an ephemeral port")
}

fn fast_retries(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        jitter_seed: seed,
    }
}

/// Crash point 1 — torn WAL record. The third append tears mid-record
/// (as a power cut mid-write would); the server crashes; the restart
/// salvages the torn tail and rebuilds the acknowledged prefix, byte
/// for byte. The unacknowledged seq is still free, so the client's
/// retry completes the set.
#[test]
fn torn_record_crash_restart_keeps_the_acknowledged_prefix() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 3);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("torn-s{stripes}"));

        // The torn append fires an automatic heal checkpoint; fail it
        // too, so the torn tail survives for the restart to salvage.
        let fault = FaultPlan::new(FaultSpec {
            torn_append_at: Some((2, 9)),
            fail_snapshot_at: Some(0),
            ..FaultSpec::default()
        });
        {
            let handle = start(durable(&dir, fault.clone(), stripes));
            let mut client =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
            client.upload("web", 0, &blobs[0]).expect("accepted");
            client.upload("web", 1, &blobs[1]).expect("accepted");
            let err = client.upload("web", 2, &blobs[2]).expect_err("append tore");
            assert!(err.to_string().contains("not durable"), "{err}");
            drop(client);
            handle.shutdown(); // the "crash": the torn tail is on disk
        }
        assert_eq!(
            fault.trips().len(),
            2,
            "stripes={stripes}: the torn append and the blocked heal must fire: {:?}",
            fault.trips()
        );

        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        let recovery = handle.recovery().expect("durable server");
        assert_eq!(recovery.records(), 2, "only the acknowledged uploads replay");
        assert!(recovery.torn_bytes() > 0, "the torn tail was salvaged: {recovery:?}");

        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs[..2]),
            "restart must rebuild the acknowledged aggregate byte-identically"
        );
        // The torn upload was never acknowledged; its seq is free again.
        assert_eq!(client.upload("web", 2, &blobs[2]).expect("retry lands"), 3);
        assert_eq!(client.fetch_sum("web").expect("aggregate"), offline_sum(&blobs));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 2 — lost acknowledgment. The upload is made durable but
/// the server's response frame is dropped; the client retries over a
/// fresh connection and the server answers `Duplicate` with the
/// existing total. Counted exactly once, both before and after a
/// crash+restart.
#[test]
fn lost_ack_resolves_as_duplicate_never_double_counts() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 1);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("lost-ack-s{stripes}"));

        let fault = FaultPlan::new(FaultSpec { drop_frame_at: Some(0), ..FaultSpec::default() });
        {
            let handle = start(durable(&dir, fault.clone(), stripes));
            let mut client =
                ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(7));
            // First attempt: durable append, dropped ack, injected
            // disconnect. Retry: deduplicated by (series, seq), answered
            // with the existing total.
            let total = client.upload("web", 0, &blobs[0]).expect("retry resolves the lost ack");
            assert_eq!(total, 1, "the retried upload must not double-count");
            assert_eq!(fault.trips().len(), 1, "the drop must fire: {:?}", fault.trips());
            drop(client);
            handle.shutdown();
        }

        // The ambiguity was resolved before the crash; the restart agrees.
        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        assert_eq!(handle.recovery().expect("durable server").records(), 1);
        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        assert_eq!(client.fetch_sum("web").expect("aggregate"), offline_sum(&blobs[..1]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 3 — kill before the fsync'd upload is acknowledged. The
/// record is durable, the ack never arrives, and the server dies before
/// the client can retry. The restart replays the record *and* its
/// dedup state, so the retry against the new server resolves as
/// `Duplicate`: the upload becomes acknowledged without being counted
/// twice.
#[test]
fn kill_before_ack_then_restart_deduplicates_the_retry() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 2);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("kill-before-ack-s{stripes}"));

        {
            let fault =
                FaultPlan::new(FaultSpec { drop_frame_at: Some(1), ..FaultSpec::default() });
            let handle = start(durable(&dir, fault.clone(), stripes));
            let mut client =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
            client.upload("web", 0, &blobs[0]).expect("accepted");
            // Durable append, then the ack is dropped and the server dies.
            let err = client.upload("web", 1, &blobs[1]).expect_err("ack never arrives");
            assert!(matches!(err, ClientError::Disconnected), "{err:?}");
            assert_eq!(fault.trips().len(), 1, "{:?}", fault.trips());
            drop(client);
            handle.shutdown();
        }

        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        // Both records were durable; both replay.
        assert_eq!(handle.recovery().expect("durable server").records(), 2);
        let mut client =
            ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(11));
        // The client retries the upload it never saw acknowledged.
        let total = client.upload("web", 1, &blobs[1]).expect("retry deduplicates");
        assert_eq!(total, 2, "replayed dedup state must absorb the retry");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs),
            "exactly the acknowledged uploads, no loss, no double count"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 4 — client-side disconnect mid-upload. The request frame
/// is torn on the wire, so the server never accepts (and never logs)
/// anything; the retried upload is a fresh accept, not a duplicate.
#[test]
fn mid_upload_disconnect_leaves_nothing_behind() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 1);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("mid-upload-s{stripes}"));

        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        let addr = handle.addr().to_string();
        let fault =
            FaultPlan::new(FaultSpec { truncate_frame_at: Some((0, 11)), ..FaultSpec::default() });
        let mut client = Client::connect(&addr, TIMEOUT).expect("connects");
        client.set_fault(fault.clone());
        let err = client.upload("web", 0, &blobs[0]).expect_err("cut mid-frame");
        assert!(err.is_retryable(), "{err:?}");
        assert_eq!(fault.trips().len(), 1, "{:?}", fault.trips());

        // Nothing was accepted, so the retry is a fresh accept with seq 0.
        let mut retry = Client::connect(&addr, TIMEOUT).expect("reconnects");
        assert_eq!(retry.upload("web", 0, &blobs[0]).expect("accepted"), 1);
        drop((client, retry));
        handle.shutdown();

        // And the accept was durable.
        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        assert_eq!(handle.recovery().expect("durable server").records(), 1);
        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        assert_eq!(client.fetch_sum("web").expect("aggregate"), offline_sum(&blobs[..1]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 5 — kill before the ack of a *delta* upload. The
/// reconstituted full window was durable, the ack never arrived, and
/// the server died. The restart replays the full window (the WAL never
/// holds delta bodies) plus its dedup state, so the client's retried
/// delta resolves as a duplicate: counted exactly once, byte-identical
/// to the offline sum.
#[test]
fn kill_before_ack_mid_delta_deduplicates_the_retry() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 2);
    let parsed: Vec<GmonData> =
        blobs.iter().map(|b| GmonData::from_bytes(b).expect("window parses")).collect();
    let delta = encode_delta(&parsed[0], &parsed[1]).expect("same shape encodes");
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("delta-kill-s{stripes}"));

        {
            let fault =
                FaultPlan::new(FaultSpec { drop_frame_at: Some(1), ..FaultSpec::default() });
            let handle = start(durable(&dir, fault.clone(), stripes));
            let mut client =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
            client.upload("web", 0, &blobs[0]).expect("accepted");
            // Durable fold, then the delta's ack is dropped and the
            // server dies before any retry.
            let err = client.upload_delta("web", 0, 1, &delta).expect_err("ack never arrives");
            assert!(matches!(err, ClientError::Disconnected), "{err:?}");
            assert_eq!(fault.trips().len(), 1, "{:?}", fault.trips());
            drop(client);
            handle.shutdown();
        }

        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        assert_eq!(handle.recovery().expect("durable server").records(), 2);
        let mut client =
            ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(13));
        // The retried delta resolves against replayed dedup state.
        assert_eq!(
            client.upload_delta("web", 0, 1, &delta).expect("retry deduplicates"),
            DeltaOutcome::Accepted { total: 2 }
        );
        assert_eq!(client.fetch_sum("web").expect("aggregate"), offline_sum(&blobs));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 6 — dropped ack mid-stream forces a duplicate delta. The
/// uploader's retry re-sends the same delta body over a fresh
/// connection; the server absorbs it as a duplicate and the stream
/// continues in delta mode, converging to the offline sum.
#[test]
fn dropped_delta_ack_retries_as_duplicate_never_double_counts() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 3);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("delta-drop-s{stripes}"));

        // Response 0 is seq 0's full-upload ack; response 1 is the
        // first delta's ack — drop that one.
        let fault = FaultPlan::new(FaultSpec { drop_frame_at: Some(1), ..FaultSpec::default() });
        let handle = start(durable(&dir, fault.clone(), stripes));
        let mut client =
            ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(17));
        let mut uploader = DeltaUploader::new();

        let mut modes = Vec::new();
        for (seq, blob) in blobs.iter().enumerate() {
            let (_, mode) =
                uploader.upload(&mut client, "web", seq as u64, blob).expect("upload resolves");
            modes.push(mode);
        }
        assert_eq!(fault.trips().len(), 1, "the drop must fire: {:?}", fault.trips());
        assert_eq!(
            modes,
            vec![UploadMode::Full, UploadMode::Delta, UploadMode::Delta],
            "stripes={stripes}: the retried delta stays a delta"
        );
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs),
            "stripes={stripes}: duplicate delta must not double-count"
        );
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 7 — a server restart that loses state (an in-memory
/// server dies) leaves the uploader's base stale. The new server
/// answers `Resync`, the uploader re-seeds it with one full window, and
/// the stream converges: the new server's aggregate is byte-identical
/// to the offline sum over exactly the windows it acknowledged.
#[test]
fn stale_base_after_restart_converges_via_resync() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 4);
    for stripes in STRIPE_COUNTS {
        let in_memory = || ServerConfig {
            stripes,
            drain_grace: Duration::from_secs(1),
            ..ServerConfig::default()
        };
        let mut uploader = DeltaUploader::new();

        {
            let handle = start(in_memory());
            let mut client =
                ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(19));
            let (_, m0) = uploader.upload(&mut client, "web", 0, &blobs[0]).expect("seq 0");
            let (_, m1) = uploader.upload(&mut client, "web", 1, &blobs[1]).expect("seq 1");
            assert_eq!((m0, m1), (UploadMode::Full, UploadMode::Delta));
            handle.shutdown(); // the crash: nothing was durable
        }

        let handle = start(in_memory());
        let mut client =
            ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(23));
        // The uploader still shadows seq 1; the new server has nothing.
        let (_, m2) = uploader.upload(&mut client, "web", 2, &blobs[2]).expect("seq 2");
        assert_eq!(m2, UploadMode::FullResync, "stripes={stripes}: stale base must resync");
        let (_, m3) = uploader.upload(&mut client, "web", 3, &blobs[3]).expect("seq 3");
        assert_eq!(m3, UploadMode::Delta, "stripes={stripes}: deltas resume after the resync");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs[2..]),
            "stripes={stripes}: exactly the windows the new server acknowledged"
        );
        handle.shutdown();
    }
}

/// Crash point 8 — kill before the ack of an upload on a server that
/// retains windows. The record was durable, so the restart must rebuild
/// not just the aggregate but the whole retention ring, byte for byte —
/// and a `remote regress --baseline` answered from replayed windows
/// must be identical to the one the dying server answered.
#[test]
fn kill_before_ack_replays_the_retention_ring_byte_identically() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 3);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("retain-kill-s{stripes}"));
        let retained = |cfg: ServerConfig| ServerConfig { retain: 3, ..cfg };

        let (ring_before, verdict_before, report_before) = {
            let fault =
                FaultPlan::new(FaultSpec { drop_frame_at: Some(2), ..FaultSpec::default() });
            let handle = start(retained(durable(&dir, fault.clone(), stripes)));
            let mut client =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
            client.upload("web", 0, &blobs[0]).expect("accepted");
            client.upload("web", 1, &blobs[1]).expect("accepted");
            // Durable fold, dropped ack: the window is in the ring even
            // though the client never heard so.
            let err = client.upload("web", 2, &blobs[2]).expect_err("ack never arrives");
            assert!(matches!(err, ClientError::Disconnected), "{err:?}");
            assert_eq!(fault.trips().len(), 1, "{:?}", fault.trips());

            let ring = handle.store().retained_windows("web").expect("retention on");
            assert_eq!(ring.len(), 3, "all three durable folds are retained");
            let mut probe =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("reconnects");
            let (verdict, report) = probe
                .regress(
                    "web",
                    "web",
                    graphprof_server::RegressScope::Baseline(2),
                    &graphprof_regress::Thresholds::default(),
                    graphprof_server::ReportFormat::Text,
                )
                .expect("baseline regress before the crash");
            drop((client, probe));
            handle.shutdown(); // the crash
            (ring, verdict, report)
        };

        let handle = start(retained(durable(&dir, FaultPlan::none(), stripes)));
        assert_eq!(handle.recovery().expect("durable server").records(), 3);
        assert_eq!(
            handle.store().retained_windows("web").expect("retention on"),
            ring_before,
            "stripes={stripes}: replay must rebuild the window ring byte-identically"
        );
        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        let (verdict, report) = client
            .regress(
                "web",
                "web",
                graphprof_server::RegressScope::Baseline(2),
                &graphprof_regress::Thresholds::default(),
                graphprof_server::ReportFormat::Text,
            )
            .expect("baseline regress after the restart");
        assert_eq!(
            (verdict, report),
            (verdict_before, report_before),
            "stripes={stripes}: the gate's answer must survive the restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 9 — kill mid-snapshot. A checkpoint's snapshot body
/// write tears partway (as a kill -9 mid-write would), the server
/// crashes with the partial temp file on disk, and the restart ignores
/// it: full replay rebuilds the byte-identical aggregate. A clean
/// checkpoint then compacts the log, and the *next* restart recovers
/// from the snapshot plus an empty suffix — still byte-identical.
#[test]
fn kill_mid_snapshot_falls_back_to_full_replay_then_checkpoints_clean() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 3);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("snap-kill-s{stripes}"));
        let small_segments = |cfg: ServerConfig| ServerConfig { wal_segment_bytes: 512, ..cfg };

        // Snapshot write #n is stripe n (the sweep goes in stripe
        // order): tear the one belonging to the series under test.
        let web_stripe = graphprof_server::SeriesStore::with_options(
            exe.clone(),
            graphprof_server::StoreOptions { stripes, ..Default::default() },
        )
        .stripe_of("web") as u64;
        let fault = FaultPlan::new(FaultSpec {
            short_snapshot_write_at: Some((web_stripe, 24)),
            ..FaultSpec::default()
        });
        {
            let handle = start(small_segments(durable(&dir, fault.clone(), stripes)));
            let mut client =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
            for (seq, blob) in blobs.iter().enumerate() {
                client.upload("web", seq as u64, blob).expect("accepted");
            }
            let (swept, removed, _, failed) = client.checkpoint().expect("sweep runs");
            assert_eq!(swept, stripes as u64);
            assert_eq!(
                (removed, failed),
                (0, 1),
                "stripes={stripes}: the torn snapshot must compact nothing"
            );
            assert_eq!(fault.trips().len(), 1, "{:?}", fault.trips());
            drop(client);
            handle.shutdown(); // the crash: a partial snapshot temp is on disk
        }

        let handle = start(small_segments(durable(&dir, FaultPlan::none(), stripes)));
        let recovery = handle.recovery().expect("durable server");
        assert_eq!(recovery.records(), 3, "full replay: the series' snapshot never landed");
        assert_eq!(recovery.covered_records, 0, "{recovery:?}");
        assert_eq!(recovery.snapshots_loaded, stripes - 1, "{recovery:?}");
        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs),
            "stripes={stripes}: restart after a torn snapshot must lose nothing"
        );
        // A healthy checkpoint compacts the replayed log...
        let (_, removed, healed, failed) = client.checkpoint().expect("sweep runs");
        assert!(removed > 0, "stripes={stripes}: rotated segments must compact");
        assert_eq!((healed, failed), (0, 0));
        drop(client);
        handle.shutdown();

        // ...and the next restart recovers from the snapshot alone.
        let handle = start(small_segments(durable(&dir, FaultPlan::none(), stripes)));
        let recovery = handle.recovery().expect("durable server");
        assert!(recovery.snapshots_loaded >= 1, "{recovery:?}");
        assert_eq!(
            recovery.records(),
            recovery.covered_records,
            "nothing was uploaded past the checkpoint: {recovery:?}"
        );
        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs),
            "stripes={stripes}: snapshot recovery must be byte-identical to replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash point 10 — the snapshot fails (disk full) and the stripe keeps
/// serving on the WAL alone. The failure is surfaced in `stats`, later
/// uploads are acknowledged and durable, and a crash+restart loses
/// nothing: graceful degradation, not an outage.
#[test]
fn failed_snapshot_degrades_to_wal_only_without_losing_uploads() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 4);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("snap-enospc-s{stripes}"));

        // The sweep snapshots stripes in order, one write each, so
        // write #n is stripe n: aim the no-space fault at the stripe
        // that owns the series under test.
        let web_stripe = graphprof_server::SeriesStore::with_options(
            exe.clone(),
            graphprof_server::StoreOptions { stripes, ..Default::default() },
        )
        .stripe_of("web") as u64;
        let fault = FaultPlan::new(FaultSpec {
            fail_snapshot_at: Some(web_stripe),
            ..FaultSpec::default()
        });
        {
            let handle = start(durable(&dir, fault.clone(), stripes));
            let mut client =
                Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
            client.upload("web", 0, &blobs[0]).expect("accepted");
            client.upload("web", 1, &blobs[1]).expect("accepted");
            let (_, removed, _, failed) = client.checkpoint().expect("sweep runs");
            assert_eq!(fault.trips().len(), 1, "{:?}", fault.trips());
            assert!(failed >= 1, "stripes={stripes}: the no-space snapshot must be counted");
            assert_eq!(removed, 0, "a failed snapshot must never compact");
            // Degraded, not down: ingest continues on the WAL alone.
            client.upload("web", 2, &blobs[2]).expect("accepted in degraded mode");
            client.upload("web", 3, &blobs[3]).expect("accepted in degraded mode");
            let stats = client.stats().expect("stats");
            assert!(stats.contains("snapshot failures: 1"), "{stats}");
            drop(client);
            handle.shutdown(); // the crash, with no snapshot ever written
        }

        let handle = start(durable(&dir, FaultPlan::none(), stripes));
        let recovery = handle.recovery().expect("durable server");
        assert_eq!(recovery.records(), 4, "every acknowledged upload was WAL-durable");
        assert_eq!(
            recovery.covered_records, 0,
            "the series' stripe never snapshotted: {recovery:?}"
        );
        assert_eq!(recovery.snapshots_loaded, stripes - 1, "{recovery:?}");
        let mut client = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        assert_eq!(
            client.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs),
            "stripes={stripes}: WAL-only degradation must lose nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The seeded sweep: every seed derives one deterministic fault — torn
/// or failed appends, failed fsyncs, dropped/torn/corrupted response
/// frames — injected into a durable server while a retrying client
/// uploads four windows. Then the server crashes, restarts clean, and
/// the client re-drives whatever was never acknowledged. End state for
/// *every* seed, at every stripe count: the aggregate is byte-identical
/// to offline `sum_profiles` over all four uploads, each counted
/// exactly once.
#[test]
fn seeded_fault_sweep_converges_to_exactly_once() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 4);
    let offline = offline_sum(&blobs);

    for stripes in STRIPE_COUNTS {
        for seed in 0..12u64 {
            let dir = tmpdir(&format!("sweep-s{stripes}-{seed}"));
            let fault = FaultPlan::seeded(seed);
            let mut unacked: Vec<u64> = Vec::new();
            {
                let handle = start(durable(&dir, fault.clone(), stripes));
                let mut client =
                    ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(seed));
                for (seq, blob) in blobs.iter().enumerate() {
                    if client.upload("web", seq as u64, blob).is_err() {
                        unacked.push(seq as u64);
                    }
                }
                handle.shutdown(); // the crash
            }

            // Restart clean; the client retries its unacknowledged uploads.
            let handle = start(durable(&dir, FaultPlan::none(), stripes));
            let mut client =
                ResilientClient::new(&handle.addr().to_string(), TIMEOUT, fast_retries(seed));
            for &seq in &unacked {
                client.upload("web", seq, &blobs[seq as usize]).unwrap_or_else(|e| {
                    panic!("stripes {stripes} seed {seed}: retry of seq {seq} failed: {e}")
                });
            }
            assert_eq!(
                client.fetch_sum("web").expect("aggregate"),
                offline,
                "stripes {stripes} seed {seed} (fault {:?}, trips {:?}): \
                 aggregate diverged from offline sum",
                fault.spec(),
                fault.trips(),
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
