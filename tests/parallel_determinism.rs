//! Whole-pipeline determinism under parallelism: the `--jobs` knob and
//! the interpreter's predecode sweep are performance controls, never
//! semantic ones. A jobs value must not change an output byte (see
//! `graphprof::exec`), and predecoding must not change what executes.

use graphprof::{Gprof, Options};
use graphprof_machine::{CompileOptions, Executable, Machine, MachineConfig, Program};
use graphprof_monitor::profiler::{profile_to_completion, RuntimeProfiler};
use graphprof_monitor::GmonData;
use graphprof_workloads::synthetic::{layered_dag, DagParams};
use proptest::prelude::*;

fn profiled(program: &Program, tick: u64) -> (Executable, GmonData) {
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), tick).expect("runs");
    (exe, gmon)
}

/// Renders the full post-processed report (flat profile + call graph
/// listing) with the given worker count.
fn listings(exe: &Executable, gmon: &GmonData, jobs: usize) -> String {
    let analysis = Gprof::new(Options::default().jobs(jobs)).analyze(exe, gmon).expect("analyzes");
    format!("{}{}", analysis.render_flat(), analysis.render_call_graph())
}

#[test]
fn listings_are_byte_identical_across_jobs_values() {
    let params = DagParams { layers: 6, width: 10, ..DagParams::default() };
    let (exe, gmon) = profiled(&layered_dag(23, params), 13);
    let serial = listings(&exe, &gmon, 1);
    assert!(serial.contains("called/total"), "call graph listing rendered");
    for jobs in [2, 8] {
        assert_eq!(serial, listings(&exe, &gmon, jobs), "jobs={jobs}");
    }
}

#[test]
fn summed_profiles_are_byte_identical_across_jobs_values() {
    let params = DagParams { layers: 5, width: 8, ..DagParams::default() };
    let exe = layered_dag(41, params).compile(&CompileOptions::profiled()).expect("compiles");
    let blobs: Vec<Vec<u8>> = (0..20)
        .map(|_| {
            let (gmon, _) = profile_to_completion(exe.clone(), 17).expect("runs");
            gmon.to_bytes()
        })
        .collect();
    let serial = graphprof::sum_profile_bytes(&blobs, 1).expect("sums").to_bytes();
    for jobs in [2, 8] {
        let parallel = graphprof::sum_profile_bytes(&blobs, jobs).expect("sums").to_bytes();
        assert_eq!(serial, parallel, "jobs={jobs}");
    }
}

/// Profiles one run with an explicit predecode setting and returns the
/// profile file bytes.
fn gmon_bytes_with_predecode(exe: &Executable, predecode_jobs: usize) -> Vec<u8> {
    let tick = 19;
    let mut profiler = RuntimeProfiler::new(exe, tick);
    let config =
        MachineConfig { cycles_per_tick: tick, predecode_jobs, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe.clone(), config);
    machine.run(&mut profiler).expect("runs");
    profiler.finish().to_bytes()
}

#[test]
fn predecoded_dispatch_writes_identical_profiles() {
    let params = DagParams { layers: 4, width: 6, ..DagParams::default() };
    let exe = layered_dag(5, params).compile(&CompileOptions::profiled()).expect("compiles");
    // 0 disables the predecode table entirely (pure fetch-decode).
    let baseline = gmon_bytes_with_predecode(&exe, 0);
    for predecode_jobs in [1, 8] {
        assert_eq!(
            baseline,
            gmon_bytes_with_predecode(&exe, predecode_jobs),
            "predecode_jobs={predecode_jobs}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated workloads of varying shape: the full report never
    /// depends on the worker count.
    #[test]
    fn generated_listings_are_jobs_invariant(
        seed in 0u64..1_000,
        layers in 2u32..5,
        width in 2u32..7,
        tick in 1u64..32,
    ) {
        let params = DagParams { layers, width, ..DagParams::default() };
        let (exe, gmon) = profiled(&layered_dag(seed, params), tick);
        let serial = listings(&exe, &gmon, 1);
        prop_assert_eq!(&serial, &listings(&exe, &gmon, 8));
    }
}
