//! moncontrol-style selective profiling through the whole pipeline:
//! restrict monitoring to one routine's address range, run, and confirm
//! the analysis sees (only) what was monitored — at nearly full speed for
//! everything else.

use graphprof::{analyze, Gprof, Options};
use graphprof_machine::{CompileOptions, Machine, MachineConfig};
use graphprof_monitor::RuntimeProfiler;
use graphprof_workloads::paper::symbol_table_program;

fn run_restricted(routine: &str) -> (graphprof_machine::Executable, graphprof_monitor::GmonData) {
    let exe = symbol_table_program().compile(&CompileOptions::profiled()).expect("compiles");
    let sym = exe.symbols().by_name(routine).expect("routine exists").1;
    let range = (sym.addr(), sym.end());
    let mut profiler = RuntimeProfiler::new(&exe, 5);
    profiler.set_monitor_range(Some(range));
    let config = MachineConfig { cycles_per_tick: 5, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe.clone(), config);
    machine.run(&mut profiler).expect("runs");
    (exe, profiler.finish())
}

#[test]
fn restricted_profile_sees_only_the_target_routine() {
    let (exe, gmon) = run_restricted("lookup");
    let analysis = analyze(&exe, &gmon).expect("analyzes");
    // Exactly one routine has samples.
    let sampled: Vec<&str> = analysis
        .flat()
        .rows()
        .iter()
        .filter(|r| r.self_seconds > 0.0)
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(sampled, ["lookup"]);
    // And its call counts are still exact.
    let lookup = analysis.call_graph().entry("lookup").expect("entry");
    assert_eq!(lookup.calls.external, 170);
    // Its callers are identified with exact per-caller counts even though
    // the callers themselves were not monitored.
    let count_of = |name: &str| lookup.parents.iter().find(|p| p.name == name).map(|p| p.count);
    assert_eq!(count_of("parse"), Some(60));
    assert_eq!(count_of("optimize"), Some(80));
    assert_eq!(count_of("codegen"), Some(30));
}

#[test]
fn restricted_profile_still_analyzes_with_static_graph() {
    // The static crawl covers the whole text regardless of the monitor
    // range, so the graph shape stays complete even when the dynamic data
    // is partial.
    let (exe, gmon) = run_restricted("hash");
    let analysis = Gprof::new(Options::default()).analyze(&exe, &gmon).expect("analyzes");
    let graph = analysis.graph();
    // Static arcs exist between unmonitored routines.
    let parse = graph.node_by_name("parse").expect("node");
    let insert = graph.node_by_name("insert").expect("node");
    let arc = graph.arc_between(parse, insert).expect("static arc present");
    assert_eq!(graph.arc(arc).count, 0, "never dynamically recorded");
    // The monitored routine's arcs are dynamic.
    let hash = graph.node_by_name("hash").expect("node");
    assert_eq!(graph.calls_into(hash), 230);
}

#[test]
fn restriction_costs_less_than_full_monitoring() {
    let exe = symbol_table_program().compile(&CompileOptions::profiled()).expect("compiles");
    let clock_with = |range: Option<(graphprof_machine::Addr, graphprof_machine::Addr)>| {
        let mut profiler = RuntimeProfiler::new(&exe, 0);
        profiler.set_monitor_range(range);
        let mut machine = Machine::with_config(exe.clone(), MachineConfig::default());
        machine.run(&mut profiler).expect("runs");
        machine.clock()
    };
    let full = clock_with(None);
    let sym = exe.symbols().by_name("hash").expect("symbol").1;
    let restricted = clock_with(Some((sym.addr(), sym.end())));
    assert!(
        restricted < full,
        "unmonitored prologues pay only the short-circuit: {restricted} vs {full}"
    );
}
