//! Property-based tests over randomly generated programs and profile
//! data, spanning the whole pipeline.

use proptest::prelude::*;

use graphprof::{Gprof, Options};
use graphprof_machine::{Addr, CompileOptions, Program, Routine, Stmt};
use graphprof_monitor::profiler::profile_to_completion;
use graphprof_monitor::{GmonData, Histogram, RawArc};

/// A compact description of one routine: work cycles and calls to later
/// routines. The "later routines only" rule makes every generated program
/// acyclic and terminating by construction.
#[derive(Debug, Clone)]
struct RoutinePlan {
    work: u32,
    // (offset ahead >= 1, call count)
    calls: Vec<(usize, u32)>,
}

fn arb_plan() -> impl Strategy<Value = Vec<RoutinePlan>> {
    let routine = (1u32..300, proptest::collection::vec((1usize..4, 1u32..5), 0..4))
        .prop_map(|(work, calls)| RoutinePlan { work, calls });
    proptest::collection::vec(routine, 2..8)
}

fn build_program(plans: &[RoutinePlan]) -> Program {
    let n = plans.len();
    let name = |i: usize| format!("f{i}");
    let routines: Vec<Routine> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let mut body = vec![Stmt::Work(plan.work)];
            for &(offset, count) in &plan.calls {
                let callee = (i + offset).min(n - 1);
                if callee == i {
                    continue;
                }
                body.push(Stmt::Loop { count, body: vec![Stmt::Call(name(callee))] });
            }
            Routine::new(name(i), body, true)
        })
        .collect();
    Program::new(routines, "f0").expect("generated programs are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arc counts come from the monitoring routine and are exact,
    /// independent of the sampling rate.
    #[test]
    fn call_counts_match_ground_truth(plans in arb_plan(), tick in 1u64..200) {
        let program = build_program(&plans);
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let (gmon, machine) = profile_to_completion(exe.clone(), tick).expect("runs");
        let truth = machine.ground_truth().expect("truth enabled");
        let analysis = graphprof::analyze(&exe, &gmon).expect("analyzes");
        for routine in truth.routines() {
            let counted = analysis
                .call_graph()
                .entry(&routine.name)
                .map(|e| e.calls.external + e.calls.recursive)
                .unwrap_or(0);
            prop_assert_eq!(counted, routine.calls, "{}", routine.name);
        }
    }

    /// The flat profile conserves sampled time exactly at any granularity.
    #[test]
    fn flat_profile_conserves_samples(
        plans in arb_plan(),
        tick in 1u64..100,
        shift in 0u8..6,
    ) {
        use graphprof_machine::{Machine, MachineConfig};
        use graphprof_monitor::RuntimeProfiler;
        let program = build_program(&plans);
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let mut profiler = RuntimeProfiler::with_granularity(&exe, tick, shift);
        let config = MachineConfig { cycles_per_tick: tick, ..MachineConfig::default() };
        let mut machine = Machine::with_config(exe.clone(), config);
        machine.run(&mut profiler).expect("runs");
        let gmon = profiler.finish();
        let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
            .analyze(&exe, &gmon)
            .expect("analyzes");
        let flat_sum: f64 = analysis.flat().rows().iter().map(|r| r.self_seconds).sum();
        let sampled = gmon.sampled_cycles() as f64;
        prop_assert!(
            (flat_sum + analysis.unattributed_seconds() - sampled).abs() < 1e-6,
            "{flat_sum} + {} != {sampled}",
            analysis.unattributed_seconds()
        );
    }

    /// Generated programs are acyclic, the root inherits everything, and
    /// no entry exceeds the program total.
    #[test]
    fn dag_propagation_invariants(plans in arb_plan()) {
        let program = build_program(&plans);
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let (gmon, _) = profile_to_completion(exe.clone(), 1).expect("runs");
        let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
            .analyze(&exe, &gmon)
            .expect("analyzes");
        prop_assert_eq!(analysis.call_graph().cycle_count(), 0);
        let total = analysis.total_seconds();
        let root = analysis.call_graph().entry("f0").expect("root entry");
        prop_assert!((root.total_seconds() - total).abs() < 1e-6 * total.max(1.0));
        for entry in analysis.call_graph().entries() {
            prop_assert!(
                entry.total_seconds() <= total * (1.0 + 1e-9) + 1e-9,
                "{} exceeds total",
                entry.name
            );
            prop_assert!(entry.self_seconds >= 0.0 && entry.desc_seconds >= 0.0);
        }
    }

    /// Presentation invariants on random programs: flat rows descend by
    /// self time, and every called/total fraction is well-formed
    /// (numerator <= denominator, denominator = external calls).
    #[test]
    fn presentation_invariants(plans in arb_plan(), tick in 1u64..40) {
        let program = build_program(&plans);
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let (gmon, _) = profile_to_completion(exe.clone(), tick).expect("runs");
        let analysis = graphprof::analyze(&exe, &gmon).expect("analyzes");
        let rows = analysis.flat().rows();
        for pair in rows.windows(2) {
            prop_assert!(pair[0].self_seconds >= pair[1].self_seconds);
        }
        for entry in analysis.call_graph().entries() {
            for line in entry.parents.iter().chain(&entry.children) {
                if let Some(denom) = line.denom {
                    prop_assert!(line.count <= denom, "{line:?}");
                    prop_assert!(denom > 0, "{line:?}");
                }
                prop_assert!(line.flow() >= -1e-9, "{line:?}");
            }
        }
    }

    /// Profile files round-trip byte-exactly through serialization.
    #[test]
    fn gmon_round_trips(
        base in 0x1000u32..0x8000,
        len in 1u32..4096,
        shift in 0u8..8,
        samples in proptest::collection::vec((0u32..4096, 1u64..1000), 0..64),
        arcs in proptest::collection::vec((0u32..4096, 0u32..4096, 1u64..100_000), 0..64),
        tick in 1u64..10_000,
    ) {
        let mut h = Histogram::new(Addr::new(base), len, shift);
        for (off, count) in samples {
            h.record(Addr::new(base.saturating_add(off)), count);
        }
        let mut raw: Vec<RawArc> = arcs
            .into_iter()
            .map(|(f, t, c)| RawArc {
                from_pc: Addr::new(base + f),
                self_pc: Addr::new(base + t),
                count: c,
            })
            .collect();
        // The constructor sorts; duplicate keys are invalid input, so
        // dedup the generated arcs.
        raw.sort_by_key(|a| (a.from_pc, a.self_pc));
        raw.dedup_by_key(|a| (a.from_pc, a.self_pc));
        let data = GmonData::new(tick, h, raw);
        let back = GmonData::from_bytes(&data.to_bytes()).expect("round trips");
        prop_assert_eq!(back, data);
    }

    /// Merging profiles is commutative in totals and conserves counts.
    #[test]
    fn merge_conserves_counts(
        counts_a in proptest::collection::vec(1u64..1000, 1..16),
        counts_b in proptest::collection::vec(1u64..1000, 1..16),
    ) {
        let make = |counts: &[u64]| {
            let mut h = Histogram::new(Addr::new(0x1000), 256, 0);
            let arcs: Vec<RawArc> = counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    h.record(Addr::new(0x1000 + i as u32), c);
                    RawArc {
                        from_pc: Addr::new(0x1000 + i as u32 * 4),
                        self_pc: Addr::new(0x1100),
                        count: c,
                    }
                })
                .collect();
            GmonData::new(10, h, arcs)
        };
        let a = make(&counts_a);
        let b = make(&counts_b);
        let mut ab = a.clone();
        ab.merge(&b).expect("merges");
        let mut ba = b.clone();
        ba.merge(&a).expect("merges");
        prop_assert_eq!(&ab, &ba, "merge is symmetric");
        let total = |d: &GmonData| -> u64 { d.arcs().iter().map(|x| x.count).sum() };
        prop_assert_eq!(total(&ab), total(&a) + total(&b));
        prop_assert_eq!(
            ab.histogram().total(),
            a.histogram().total() + b.histogram().total()
        );
    }

    /// The assembler round-trips through the structured representation:
    /// parsing the pretty-printed form of a generated program reproduces
    /// the original.
    #[test]
    fn asm_parse_of_rendered_program(plans in arb_plan()) {
        let program = build_program(&plans);
        let mut source = String::new();
        for routine in program.routines() {
            source.push_str(&format!("routine {} {{\n", routine.name()));
            fn emit(stmts: &[Stmt], out: &mut String) {
                for stmt in stmts {
                    match stmt {
                        Stmt::Work(n) => out.push_str(&format!("  work {n}\n")),
                        Stmt::Call(t) => out.push_str(&format!("  call {t}\n")),
                        Stmt::Loop { count, body } => {
                            out.push_str(&format!("  loop {count} {{\n"));
                            emit(body, out);
                            out.push_str("  }\n");
                        }
                        _ => unreachable!("generator emits only work/call/loop"),
                    }
                }
            }
            emit(routine.body(), &mut source);
            source.push_str("}\n");
        }
        source.push_str("entry f0\n");
        let parsed = graphprof_machine::asm::parse(&source).expect("parses back");
        prop_assert_eq!(parsed, program);
    }
}
