//! The application-scale workloads through the whole pipeline: the kind
//! of programs the paper's authors were actually profiling, checked for
//! the profile features each one exists to exhibit.

use graphprof::{Gprof, Options};
use graphprof_machine::CompileOptions;
use graphprof_monitor::profiler::profile_to_completion;
use graphprof_workloads::apps;

fn analyzed(
    program: &graphprof_machine::Program,
) -> (graphprof::Analysis, graphprof_machine::GroundTruth) {
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, machine) = profile_to_completion(exe.clone(), 5).expect("runs");
    let truth = machine.ground_truth().expect("truth enabled");
    let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
        .analyze(&exe, &gmon)
        .expect("analyzes");
    (analysis, truth)
}

#[test]
fn compiler_hash_fan_in_is_attributed_to_phases() {
    let (analysis, truth) = analyzed(&apps::compiler_pipeline(3));
    let cg = analysis.call_graph();
    // hash is the deepest shared abstraction; its entry's parents split
    // its time across intern / st_lookup / st_insert with exact counts.
    let hash = cg.entry("hash").expect("hash entry");
    let count_of =
        |name: &str| hash.parents.iter().find(|p| p.name == name).map(|p| p.count).unwrap_or(0);
    assert_eq!(count_of("intern"), truth.routine("intern").expect("t").calls);
    assert_eq!(count_of("st_lookup"), truth.routine("st_lookup").expect("t").calls);
    assert_eq!(count_of("st_insert"), truth.routine("st_insert").expect("t").calls);
    // The parser's expression cycle is found and collapsed.
    assert_eq!(cg.cycle_count(), 1);
    let expr = cg.entry("parse_expr").expect("parse_expr entry");
    assert!(expr.name.contains("<cycle1>"), "{}", expr.name);
    // compile_unit inherits essentially the whole run.
    let unit = cg.entry("compile_unit").expect("compile_unit entry");
    assert!(unit.percent > 95.0, "{}", unit.percent);
}

#[test]
fn formatter_rare_path_is_visible_with_low_count() {
    let (analysis, truth) = analyzed(&apps::text_formatter(16));
    let cg = analysis.call_graph();
    let fill = cg.entry("fill_line").expect("fill_line entry");
    let hyph = fill.children.iter().find(|c| c.name == "hyphenate").expect("hyphenate child line");
    // The rarely-taken arc is listed with its exact (small) count...
    assert_eq!(hyph.count, truth.routine("hyphenate").expect("t").calls);
    assert!(hyph.count < fill.calls.external / 10);
    // ...yet carries a disproportionate share of time per traversal.
    let flush =
        fill.children.iter().find(|c| c.name == "flush_line").expect("flush_line child line");
    let per_hyph = hyph.flow() / hyph.count as f64;
    let per_flush = flush.flow() / flush.count as f64;
    assert!(per_hyph > 2.0 * per_flush, "{per_hyph} vs {per_flush}");
}

#[test]
fn server_cache_misses_show_in_buf_get_descendants() {
    let (analysis, truth) = analyzed(&apps::network_server(40));
    let cg = analysis.call_graph();
    let buf = cg.entry("buf_get").expect("buf_get entry");
    // buf_get's descendants are the rare disk reads.
    let disk_truth = truth.routine("disk_read").expect("t");
    assert!(
        (buf.desc_seconds - disk_truth.total_cycles as f64).abs()
            < 0.05 * disk_truth.total_cycles as f64 + 5.0,
        "desc {} vs disk {}",
        buf.desc_seconds,
        disk_truth.total_cycles
    );
    // The three request stages all appear among buf_get's parents.
    let parent_names: Vec<&str> = buf.parents.iter().map(|p| p.name.as_str()).collect();
    for stage in ["read_request", "process", "send_reply"] {
        assert!(parent_names.contains(&stage), "{stage} in {parent_names:?}");
    }
}

#[test]
fn app_profiles_render_without_panics_and_deterministically() {
    for program in [apps::compiler_pipeline(2), apps::text_formatter(8), apps::network_server(20)] {
        let (a1, _) = analyzed(&program);
        let (a2, _) = analyzed(&program);
        assert_eq!(a1.render_flat(), a2.render_flat());
        assert_eq!(a1.render_call_graph(), a2.render_call_graph());
        assert!(!graphprof::coverage(&a1).render().is_empty());
    }
}
