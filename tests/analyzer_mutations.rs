//! A mutation corpus for `graphprof analyze`: every seeded fault class
//! from the issue — impossible arcs, out-of-SCC counts, unreachable
//! samples — must be flagged with its expected rule code, and the
//! unmutated baselines must analyze clean. Detection is asserted at
//! 100%: one missed mutant fails the test.
//!
//! The corpus is deterministic and exhaustive rather than sampled:
//! arc-level mutations are applied to *every* eligible arc of the base
//! profile, so the detection guarantee does not depend on which arc a
//! random pick happens to land on.

use std::collections::BTreeSet;

use graphprof_analysis::analyze_profile;
use graphprof_machine::{Addr, CompileOptions, Executable};
use graphprof_monitor::profiler::profile_to_completion;
use graphprof_monitor::{GmonData, RawArc};

/// Direct calls only, everything reachable, one genuine cycle
/// (`ping <-> pong`), and three straight-line once-per-activation call
/// sites (`main->ping`, `main->worker`, `worker->leaf`).
const BASE: &str = "
    routine main { setcounter 7, 5 work 10 call ping call worker }
    routine ping { work 20 callwhile 7, pong }
    routine pong { work 20 callwhile 7, ping }
    routine worker { work 30 call leaf }
    routine leaf { work 15 }
";

/// A single-assignment indirect call: the slot dataflow proves slot 0
/// holds `helper`, so the profile is clean and the analyzer knows the
/// only value the `calli` site can reach.
const INDIRECT: &str = "
    routine main { setslot 0, helper call go }
    routine go { work 10 calli 0 }
    routine helper { work 5 }
";

/// `island` is never called: the baseline carries the (warning-level)
/// unreachable-routine finding, and planting histogram samples inside
/// the island is the unreachable-but-sampled corruption.
const ISLAND: &str = "
    routine main { work 10 call a }
    routine a { work 5 }
    routine island { work 5 }
";

fn profile(source: &str) -> (Executable, GmonData) {
    let exe = graphprof_machine::asm::parse(source)
        .unwrap()
        .compile(&CompileOptions::profiled())
        .unwrap();
    let (gmon, _) = profile_to_completion(exe.clone(), 16).unwrap();
    (exe, gmon)
}

fn entry_of(exe: &Executable, name: &str) -> Addr {
    exe.symbols().by_name(name).unwrap().1.addr()
}

fn with_arcs(gmon: &GmonData, arcs: Vec<RawArc>) -> GmonData {
    GmonData::new(gmon.cycles_per_tick(), gmon.histogram().clone(), arcs)
}

/// One corpus entry: a mutated profile and the rule code the analyzer
/// must raise (as an error) against it.
struct Mutant {
    label: String,
    exe: Executable,
    gmon: GmonData,
    expected: &'static str,
}

fn corpus() -> Vec<Mutant> {
    let mut mutants = Vec::new();

    let (exe, gmon) = profile(BASE);
    let entries: Vec<Addr> =
        ["main", "ping", "pong", "worker", "leaf"].iter().map(|n| entry_of(&exe, n)).collect();

    // Impossible dynamic arcs: retarget every real arc to every entry
    // other than the one its site statically calls.
    for (i, arc) in gmon.arcs().iter().enumerate() {
        if arc.from_pc.is_null() {
            continue;
        }
        for &wrong in entries.iter().filter(|&&e| e != arc.self_pc) {
            let mut arcs = gmon.arcs().to_vec();
            arcs[i].self_pc = wrong;
            mutants.push(Mutant {
                label: format!("retarget arc #{i} ({} -> {wrong})", arc.from_pc),
                exe: exe.clone(),
                gmon: with_arcs(&gmon, arcs),
                expected: "impossible-dynamic-arc",
            });
        }
    }

    // Out-of-SCC counts, shape 1: inflate a once-per-activation site's
    // count so calls no longer match the caller's activations.
    let main_entry = entry_of(&exe, "main");
    let ping = entry_of(&exe, "ping");
    let worker = entry_of(&exe, "worker");
    let leaf = entry_of(&exe, "leaf");
    for (i, arc) in gmon.arcs().iter().enumerate() {
        if arc.from_pc.is_null() {
            continue;
        }
        // The once-per-activation sites are main's `call ping` (the
        // count-1 arc into ping), main's `call worker`, and worker's
        // `call leaf`. The callwhile arcs inside the cycle run a
        // data-dependent number of times and are legitimately
        // unconstrained.
        let eligible =
            arc.self_pc == worker || arc.self_pc == leaf || (arc.self_pc == ping && arc.count == 1);
        if !eligible {
            continue;
        }
        let mut arcs = gmon.arcs().to_vec();
        arcs[i].count += 7;
        mutants.push(Mutant {
            label: format!("inflate arc #{i} (into {})", arc.self_pc),
            exe: exe.clone(),
            gmon: with_arcs(&gmon, arcs),
            expected: "call-count-mismatch",
        });
    }

    // Out-of-SCC counts, shape 2: sever the cycle's external entry arc
    // and fold its count into the in-cycle arc, so the members' calls
    // no longer explain how the cycle was ever entered.
    {
        let mut arcs = gmon.arcs().to_vec();
        let external = arcs
            .iter()
            .position(|a| a.self_pc == ping && a.count == 1)
            .expect("main enters the cycle once");
        let severed = arcs.remove(external);
        let internal = arcs.iter_mut().find(|a| a.self_pc == ping).expect("pong re-enters ping");
        internal.count += severed.count;
        mutants.push(Mutant {
            label: "sever cycle entry main->ping".into(),
            exe: exe.clone(),
            gmon: with_arcs(&gmon, arcs),
            expected: "scc-count-imbalance",
        });
    }

    // A dynamic back edge the text cannot produce: worker's `call leaf`
    // site claims to have called main, closing a main<->worker cycle
    // that Tarjan over the static graph refuses to collapse.
    {
        let mut arcs = gmon.arcs().to_vec();
        let site = arcs.iter().find(|a| a.self_pc == leaf).expect("worker calls leaf").from_pc;
        arcs.push(RawArc { from_pc: site, self_pc: main_entry, count: 2 });
        mutants.push(Mutant {
            label: "forge back edge worker->main".into(),
            exe: exe.clone(),
            gmon: with_arcs(&gmon, arcs),
            expected: "static-cycle-mismatch",
        });
    }

    // Retarget the resolved indirect arc: the slot provably holds
    // `helper`, so an arc from the calli site to anything else is
    // impossible.
    {
        let (exe, gmon) = profile(INDIRECT);
        let helper = entry_of(&exe, "helper");
        let main_entry = entry_of(&exe, "main");
        let mut arcs = gmon.arcs().to_vec();
        let arc = arcs.iter_mut().find(|a| a.self_pc == helper).expect("calli fired");
        arc.self_pc = main_entry;
        mutants.push(Mutant {
            label: "retarget resolved calli go->helper to main".into(),
            exe: exe.clone(),
            gmon: with_arcs(&gmon, arcs),
            expected: "impossible-dynamic-arc",
        });
    }

    // Samples planted in code no feasible path reaches.
    {
        let (exe, gmon) = profile(ISLAND);
        let island = entry_of(&exe, "island");
        let mut hist = gmon.histogram().clone();
        hist.record(island.offset(1), 3);
        mutants.push(Mutant {
            label: "plant samples in unreachable island".into(),
            exe: exe.clone(),
            gmon: GmonData::new(gmon.cycles_per_tick(), hist, gmon.arcs().to_vec()),
            expected: "unreachable-but-sampled",
        });
    }

    mutants
}

#[test]
fn baselines_analyze_clean() {
    for source in [BASE, INDIRECT] {
        let (exe, gmon) = profile(source);
        let findings = analyze_profile(&exe, &gmon);
        assert!(findings.is_empty(), "baseline should be clean: {findings:?}");
    }
    // The island baseline carries exactly the reachability warning and
    // no errors.
    let (exe, gmon) = profile(ISLAND);
    let findings = analyze_profile(&exe, &gmon);
    assert!(findings.iter().all(|f| !f.is_error()), "{findings:?}");
    assert!(findings.iter().any(|f| f.code() == "unreachable-routine"), "{findings:?}");
}

#[test]
fn every_mutant_is_detected_with_its_expected_code() {
    let corpus = corpus();
    assert!(corpus.len() >= 10, "corpus holds {} mutants — too small to mean much", corpus.len());
    let mut missed = Vec::new();
    for mutant in &corpus {
        let findings = analyze_profile(&mutant.exe, &mutant.gmon);
        let error_codes: BTreeSet<&str> =
            findings.iter().filter(|f| f.is_error()).map(|f| f.code()).collect();
        if !error_codes.contains(mutant.expected) {
            missed.push(format!(
                "{}: wanted {}, got {error_codes:?} ({findings:?})",
                mutant.label, mutant.expected
            ));
        }
    }
    assert!(
        missed.is_empty(),
        "{} of {} mutants missed:\n{}",
        missed.len(),
        corpus.len(),
        missed.join("\n")
    );
}
