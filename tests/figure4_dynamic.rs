//! The Figure 4 *structure* arising from a real execution: the paper's
//! worked example has every tricky presentation feature at once —
//! multiple callers, self-recursion, a cycle child with outside callers,
//! a rare call, and a static-only arc. `example_program` runs a program
//! with all of them, and the resulting profile entry must exhibit each.

use graphprof::{EntryKind, Gprof, Options};
use graphprof_machine::CompileOptions;
use graphprof_monitor::profiler::profile_to_completion;
use graphprof_workloads::paper::example_program;

fn analysis() -> graphprof::Analysis {
    let exe = example_program().compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), 1).expect("runs");
    Gprof::new(Options::default().cycles_per_second(1.0)).analyze(&exe, &gmon).expect("analyzes")
}

#[test]
fn the_figure4_structure_emerges_from_a_real_run() {
    let analysis = analysis();
    let cg = analysis.call_graph();
    let example = cg.entry("EXAMPLE").expect("EXAMPLE entry");

    // "called ten times, four times by CALLER1, and six times by CALLER2"
    // plus four self-recursive calls: the 10+4.
    assert_eq!(example.calls.external, 10);
    assert_eq!(example.calls.recursive, 4);
    let caller1 = example.parents.iter().find(|p| p.name == "CALLER1").unwrap();
    let caller2 = example.parents.iter().find(|p| p.name == "CALLER2").unwrap();
    assert_eq!((caller1.count, caller1.denom), (4, Some(10)));
    assert_eq!((caller2.count, caller2.denom), (6, Some(10)));
    // CALLER2's share of EXAMPLE exceeds CALLER1's, 6:4.
    assert!(caller2.flow() > caller1.flow());
    let ratio = caller2.flow() / caller1.flow();
    assert!((ratio - 1.5).abs() < 1e-6, "exact 6/4 split: {ratio}");

    // SUB1 is a cycle member; the denominator counts all external calls
    // into the whole cycle (EXAMPLE's 14 plus OTHER's 6).
    let sub1 = example
        .children
        .iter()
        .find(|c| c.name.starts_with("SUB1 <cycle"))
        .expect("SUB1 annotated as cycle member");
    assert_eq!(sub1.count, 14);
    assert_eq!(sub1.denom, Some(20));

    // SUB2 is called once by EXAMPLE out of five total.
    let sub2 = example.children.iter().find(|c| c.name == "SUB2").unwrap();
    assert_eq!((sub2.count, sub2.denom), (1, Some(5)));

    // SUB3: the arc is apparent in the code but never traversed.
    let sub3 = example.children.iter().find(|c| c.name == "SUB3").unwrap();
    assert_eq!((sub3.count, sub3.denom), (0, Some(5)));
    assert_eq!(sub3.flow(), 0.0, "static arcs never carry time");

    // The cycle exists as a whole entry with both members.
    assert_eq!(cg.cycle_count(), 1);
    let whole = cg
        .entries()
        .iter()
        .find(|e| matches!(e.kind, EntryKind::CycleWhole(_)))
        .expect("cycle entry");
    assert_eq!(whole.calls.external, 20);
    let member_names: Vec<&str> = whole.children.iter().map(|c| c.name.as_str()).collect();
    assert!(member_names.contains(&"SUB1 <cycle1>"), "{member_names:?}");
    assert!(member_names.contains(&"SUB1B <cycle1>"), "{member_names:?}");
}

#[test]
fn without_static_graph_sub3_vanishes_from_example() {
    let exe = example_program().compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), 1).expect("runs");
    let analysis =
        Gprof::new(Options::default().static_graph(false)).analyze(&exe, &gmon).expect("analyzes");
    let example = analysis.call_graph().entry("EXAMPLE").expect("entry");
    assert!(
        !example.children.iter().any(|c| c.name == "SUB3"),
        "dynamic-only analysis cannot know EXAMPLE could call SUB3"
    );
}

#[test]
fn rendered_entry_contains_the_figure4_fractions() {
    let analysis = analysis();
    let example = analysis.call_graph().entry("EXAMPLE").expect("entry");
    let text = graphprof::render::render_call_graph_entries(&[example]);
    for token in ["4/10", "6/10", "10+4", "14/20", "1/5", "0/5", "<cycle1>"] {
        assert!(text.contains(token), "missing {token} in:\n{text}");
    }
}
