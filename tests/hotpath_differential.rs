//! Differential suite for the monitoring hot paths.
//!
//! The optimized paths — `Histogram::record_batch`, the machine's
//! batched tick delivery (`MachineConfig::tick_batch`), the interpreter's
//! predecode sweep, and the arc table's software-prefetch probe — are all
//! governed by one contract: **they never change an output byte**. This
//! suite enforces the contract end to end by running real workloads twice:
//!
//! * once under a *reference profiler* built from the frozen scalar
//!   pieces (`ScalarHistogram`, the plain probe, per-sample tick
//!   delivery with `tick_batch = 1`), charging exactly the costs the
//!   seed's `RuntimeProfiler` charged;
//! * once under the shipping `RuntimeProfiler` across a matrix of
//!   hot-path knobs (batch sizes, prefetch, predecode jobs, shifts,
//!   tick granularities);
//!
//! and asserting the `gmon.out` bytes and the rendered listings are
//! identical. Any scheduling-only optimization that leaks into observable
//! state fails here first.

use graphprof::{Gprof, Options};
use graphprof_machine::{
    Addr, CompileOptions, Executable, Machine, MachineConfig, ProfilingHooks, Program,
};
use graphprof_monitor::{
    ArcRecorder, CallSiteTable, GmonData, MonitorCosts, RuntimeProfiler, ScalarHistogram,
};
use graphprof_workloads::synthetic::{layered_dag, DagParams};
use graphprof_workloads::{apps, paper, synthetic};

/// The seed's profiler, reassembled from the frozen scalar reference
/// pieces: plain (non-prefetching) arc probe, per-sample scalar
/// histogram recording, and the exact `MonitorCosts` cost formula of
/// `RuntimeProfiler` so the program clock — and therefore every tick —
/// advances identically.
struct ReferenceProfiler {
    arcs: CallSiteTable,
    histogram: ScalarHistogram,
    costs: MonitorCosts,
    cycles_per_tick: u64,
    range: Option<(Addr, Addr)>,
}

impl ReferenceProfiler {
    fn new(exe: &Executable, cycles_per_tick: u64, shift: u8) -> Self {
        let text_len = exe.end().checked_sub(exe.base()).expect("end >= base");
        ReferenceProfiler {
            arcs: CallSiteTable::new(exe.base(), text_len),
            histogram: ScalarHistogram::new(exe.base(), text_len, shift),
            costs: MonitorCosts::default(),
            cycles_per_tick,
            range: None,
        }
    }

    fn in_range(&self, addr: Addr) -> bool {
        match self.range {
            None => true,
            Some((from, to)) => addr >= from && addr < to,
        }
    }

    fn finish(self) -> GmonData {
        GmonData::new(self.cycles_per_tick, self.histogram.to_histogram(), self.arcs.arcs())
    }
}

impl ProfilingHooks for ReferenceProfiler {
    fn on_mcount(&mut self, from_pc: Addr, self_pc: Addr) -> u64 {
        if !self.in_range(self_pc) {
            return self.costs.disabled;
        }
        let probes = self.arcs.record(from_pc, self_pc);
        self.costs.mcount_base + probes * self.costs.probe
    }

    fn on_count_call(&mut self, self_pc: Addr) -> u64 {
        if !self.in_range(self_pc) {
            return self.costs.disabled;
        }
        self.costs.count_call
    }

    fn on_tick(&mut self, pc: Addr, ticks: u64) {
        if self.in_range(pc) {
            self.histogram.record(pc, ticks);
        }
    }
    // No on_tick_batch override: the reference runs with tick_batch = 1,
    // and if a batch ever reaches it the default in-order fold is itself
    // part of the contract under test.
}

/// One knob setting of the optimized pipeline.
#[derive(Clone, Copy, Debug)]
struct Knobs {
    tick_batch: usize,
    predecode_jobs: usize,
    prefetch: bool,
}

const KNOB_MATRIX: &[Knobs] = &[
    Knobs { tick_batch: 1, predecode_jobs: 1, prefetch: false },
    Knobs { tick_batch: 64, predecode_jobs: 1, prefetch: false },
    Knobs { tick_batch: 64, predecode_jobs: 4, prefetch: true },
    Knobs { tick_batch: 7, predecode_jobs: 4, prefetch: false },
    Knobs { tick_batch: 1 << 20, predecode_jobs: 1, prefetch: true },
];

fn profile_reference(exe: &Executable, tick: u64, shift: u8) -> GmonData {
    let config = MachineConfig {
        cycles_per_tick: tick,
        collect_ground_truth: false,
        tick_batch: 1,
        predecode_jobs: 1,
        ..MachineConfig::default()
    };
    let mut machine = Machine::with_config(exe.clone(), config);
    let mut hooks = ReferenceProfiler::new(exe, tick, shift);
    machine.run(&mut hooks).expect("reference run halts");
    hooks.finish()
}

fn profile_optimized(exe: &Executable, tick: u64, shift: u8, knobs: Knobs) -> GmonData {
    let config = MachineConfig {
        cycles_per_tick: tick,
        collect_ground_truth: false,
        tick_batch: knobs.tick_batch,
        predecode_jobs: knobs.predecode_jobs,
        ..MachineConfig::default()
    };
    let mut machine = Machine::with_config(exe.clone(), config);
    let mut profiler =
        RuntimeProfiler::with_granularity(exe, tick, shift).arc_prefetch(knobs.prefetch);
    machine.run(&mut profiler).expect("optimized run halts");
    profiler.finish()
}

fn listings(exe: &Executable, gmon: &GmonData) -> (String, String, String) {
    let analysis =
        Gprof::new(Options::default().cycles_per_second(1.0)).analyze(exe, gmon).expect("analyzes");
    (analysis.render_flat(), analysis.render_call_graph(), analysis.render_summary())
}

fn workloads() -> Vec<(&'static str, Program)> {
    vec![
        // The paper's Figure 4 worked example: recursion, a cycle, fan-in,
        // a rare call, and a static-only arc all at once.
        ("figure4", paper::example_program()),
        ("kernel", paper::kernel_program(6)),
        // Indirect calls: one site fanning out to many callees, the
        // collision-heavy case for the call-site-primary table.
        ("fan-out", synthetic::fan_out_indirect_program(12, 40)),
        ("fan-in", synthetic::fan_in_program(24, 20)),
        (
            "dag",
            layered_dag(
                11,
                DagParams { layers: 4, width: 6, max_fanout: 3, max_calls: 3, max_work: 40 },
            ),
        ),
        ("compiler", apps::compiler_pipeline(4)),
    ]
}

/// The tentpole contract: every knob combination writes the reference's
/// bytes, at every shift and tick granularity, for paper and synthetic
/// workloads alike (text lengths here are not multiples of the lane
/// stride, so the padded tail is exercised throughout).
#[test]
fn gmon_bytes_match_reference_across_the_knob_matrix() {
    for (name, program) in workloads() {
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        for &(tick, shift) in &[(1u64, 0u8), (1, 3), (7, 0), (7, 1), (7, 7)] {
            let reference = profile_reference(&exe, tick, shift).to_bytes();
            for &knobs in KNOB_MATRIX {
                let optimized = profile_optimized(&exe, tick, shift, knobs).to_bytes();
                assert_eq!(
                    optimized, reference,
                    "{name}: tick {tick} shift {shift} {knobs:?} diverged from reference"
                );
            }
        }
    }
}

/// The rendered reports — flat profile, call graph, summary — must come
/// out character-identical too (the Figure 4 listing among them).
#[test]
fn rendered_listings_match_reference() {
    for (name, program) in workloads() {
        let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
        let tick = if name == "figure4" { 1 } else { 7 };
        let reference = profile_reference(&exe, tick, 0);
        let ref_listings = listings(&exe, &reference);
        for &knobs in &[
            Knobs { tick_batch: 64, predecode_jobs: 4, prefetch: true },
            Knobs { tick_batch: 5, predecode_jobs: 1, prefetch: false },
        ] {
            let optimized = profile_optimized(&exe, tick, 0, knobs);
            assert_eq!(optimized.to_bytes(), reference.to_bytes(), "{name}: bytes");
            assert_eq!(listings(&exe, &optimized), ref_listings, "{name}: listings {knobs:?}");
        }
    }
}

/// The moncontrol(3) path: a restricted monitor range must filter the
/// same samples whether ticks arrive one at a time or in batches.
#[test]
fn monitor_range_filters_identically_under_batching() {
    let exe = paper::kernel_program(6).compile(&CompileOptions::profiled()).expect("compiles");
    let (_, sym) = exe.symbols().iter().nth(1).expect("a routine to restrict to");
    let range = (sym.addr(), sym.end());

    let run = |tick_batch: usize, prefetch: bool| {
        let config = MachineConfig {
            cycles_per_tick: 7,
            collect_ground_truth: false,
            tick_batch,
            ..MachineConfig::default()
        };
        let mut machine = Machine::with_config(exe.clone(), config);
        let mut profiler = RuntimeProfiler::with_granularity(&exe, 7, 0).arc_prefetch(prefetch);
        profiler.set_monitor_range(Some(range));
        machine.run(&mut profiler).expect("halts");
        profiler.finish().to_bytes()
    };

    let baseline = run(1, false);
    assert_eq!(run(64, false), baseline);
    assert_eq!(run(64, true), baseline);
    assert_eq!(run(3, true), baseline);
}
