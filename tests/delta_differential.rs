//! Differential tests of delta-mode uploads against full-blob uploads:
//! the same window sequence, driven through both transports into two
//! durable servers, must land byte-identically — per-series aggregates,
//! and the aggregates rebuilt from WAL replay after a restart. Forced
//! resyncs, duplicate retries, and out-of-order arrivals are part of
//! the sequence, because the wire encoding is only allowed to change
//! wire bytes, never what the server folds.
//!
//! Every scenario runs at stripes ∈ {1, 4}, mirroring the chaos suite:
//! sharding the ingest path must not move a single byte either.

use std::path::{Path, PathBuf};
use std::time::Duration;

use graphprof_machine::{CompileOptions, Executable, Machine, MachineConfig};
use graphprof_monitor::{encode_delta, GmonData};
use graphprof_server::{
    Client, DeltaOutcome, DeltaUploader, FaultPlan, ResilientClient, RetryPolicy, Server,
    ServerConfig, ServerHandle, UploadMode,
};
use graphprof_workloads::paper::kernel_program;

const TICK: u64 = 10;
const TIMEOUT: Duration = Duration::from_secs(10);
const STRIPE_COUNTS: [usize; 2] = [1, 4];

fn kernel_exe() -> Executable {
    kernel_program(10_000_000).compile(&CompileOptions::profiled()).expect("compiles")
}

/// Distinct profile windows of one run (same shape, different
/// contents), so a wrong delta reconstruction shows in the bytes.
fn windows(exe: &Executable, n: usize) -> Vec<Vec<u8>> {
    let config = MachineConfig { cycles_per_tick: TICK, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe.clone(), config);
    let mut profiler = graphprof_monitor::RuntimeProfiler::new(exe, TICK);
    let mut blobs = Vec::with_capacity(n);
    for i in 0..n {
        machine.run_for(&mut profiler, 20_000 + 7_000 * i as u64).expect("runs");
        blobs.push(profiler.snapshot().to_bytes());
        profiler.reset();
    }
    blobs
}

fn offline_sum(blobs: &[Vec<u8>]) -> Vec<u8> {
    graphprof::sum_profiles(
        blobs
            .iter()
            .map(|b| GmonData::from_bytes(b).expect("window parses"))
            .collect::<Vec<_>>()
            .iter(),
    )
    .expect("offline sum")
    .to_bytes()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "graphprof-delta-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable(dir: &Path, stripes: usize) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        stripes,
        drain_grace: Duration::from_secs(1),
        fault: FaultPlan::none(),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config, kernel_exe(), &[]).expect("binds an ephemeral port")
}

fn client(handle: &ServerHandle) -> ResilientClient {
    ResilientClient::new(&handle.addr().to_string(), TIMEOUT, RetryPolicy::none())
}

/// A tiny deterministic generator (splitmix64) for interleavings.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The core differential: a randomized multi-series window sequence is
/// driven once as full blobs and once through [`DeltaUploader`]; the
/// per-series aggregates must be byte-identical to each other and to
/// the offline sum, live and again after a crash-free restart replays
/// the WAL (which must hold full windows, never delta bodies).
#[test]
fn delta_and_full_transports_land_byte_identically() {
    let exe = kernel_exe();
    let series = ["web", "db", "batch"];
    let per_series = 5usize;
    let stream = windows(&exe, series.len() * per_series);

    for stripes in STRIPE_COUNTS {
        let full_dir = tmpdir(&format!("full-s{stripes}"));
        let delta_dir = tmpdir(&format!("delta-s{stripes}"));

        // Deal the stream across the series, then draw a randomized
        // interleaving that keeps each series' seq order (deltas chain
        // per series, but series interleave arbitrarily on the wire).
        let mut by_series: Vec<Vec<(u64, &Vec<u8>)>> = vec![Vec::new(); series.len()];
        for (i, blob) in stream.iter().enumerate() {
            by_series[i % series.len()].push(((i / series.len()) as u64, blob));
        }
        let mut rng = Rng(42 + stripes as u64);
        let mut cursors = vec![0usize; series.len()];
        let mut plan: Vec<(usize, u64, &Vec<u8>)> = Vec::new();
        while plan.len() < stream.len() {
            let mut s = (rng.next() % series.len() as u64) as usize;
            while cursors[s] == by_series[s].len() {
                s = (s + 1) % series.len();
            }
            let (seq, blob) = by_series[s][cursors[s]];
            cursors[s] += 1;
            plan.push((s, seq, blob));
        }

        {
            let full_handle = start(durable(&full_dir, stripes));
            let delta_handle = start(durable(&delta_dir, stripes));
            let mut full_client = client(&full_handle);
            let mut delta_client = client(&delta_handle);
            let mut uploader = DeltaUploader::new();

            let mut modes = Vec::new();
            for &(s, seq, blob) in &plan {
                full_client.upload(series[s], seq, blob).expect("full upload");
                let (_, mode) =
                    uploader.upload(&mut delta_client, series[s], seq, blob).expect("delta upload");
                modes.push(mode);
            }
            // The transport actually exercised deltas: everything after
            // each series' first window shipped incrementally.
            let deltas = modes.iter().filter(|m| **m == UploadMode::Delta).count();
            assert_eq!(
                deltas,
                plan.len() - series.len(),
                "stripes={stripes}: expected all non-first windows as deltas: {modes:?}"
            );

            for (s, name) in series.iter().enumerate() {
                let expected =
                    offline_sum(&by_series[s].iter().map(|&(_, b)| b.clone()).collect::<Vec<_>>());
                let full = full_client.fetch_sum(name).expect("full aggregate");
                let delta = delta_client.fetch_sum(name).expect("delta aggregate");
                assert_eq!(full, expected, "stripes={stripes}: full vs offline for {name}");
                assert_eq!(delta, expected, "stripes={stripes}: delta vs offline for {name}");
            }
            full_handle.shutdown();
            delta_handle.shutdown();
        }

        // WAL replay identity: both stores rebuild the same aggregates,
        // and the delta store replays the same number of (full-window)
        // records as the full store — the log never holds delta bodies.
        let full_handle = start(durable(&full_dir, stripes));
        let delta_handle = start(durable(&delta_dir, stripes));
        let full_rec = full_handle.recovery().expect("durable").records();
        let delta_rec = delta_handle.recovery().expect("durable").records();
        assert_eq!(full_rec, plan.len(), "stripes={stripes}");
        assert_eq!(delta_rec, plan.len(), "stripes={stripes}");
        let mut full_client = client(&full_handle);
        let mut delta_client = client(&delta_handle);
        for name in series {
            assert_eq!(
                full_client.fetch_sum(name).expect("full aggregate"),
                delta_client.fetch_sum(name).expect("delta aggregate"),
                "stripes={stripes}: replayed aggregates diverge for {name}"
            );
        }
        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&delta_dir);
    }
}

/// A forced resync mid-stream: one window slips past the uploader (an
/// out-of-band full upload moves the server's shadow), so the next
/// delta's base is stale. The server answers `Resync`, the uploader
/// falls back to one full blob, and the stream continues in delta mode
/// — with the aggregate still byte-identical to the offline sum.
#[test]
fn stale_base_forces_one_full_resync_then_deltas_resume() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 5);
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("resync-s{stripes}"));
        let handle = start(durable(&dir, stripes));
        let mut rc = client(&handle);
        let mut uploader = DeltaUploader::new();

        let (_, m0) = uploader.upload(&mut rc, "web", 0, &blobs[0]).expect("seq 0");
        let (_, m1) = uploader.upload(&mut rc, "web", 1, &blobs[1]).expect("seq 1");
        assert_eq!((m0, m1), (UploadMode::Full, UploadMode::Delta));

        // Out of band: another sender ships seq 2 in full. The server's
        // shadow is now seq 2; the uploader still shadows seq 1.
        let mut other = Client::connect(&handle.addr().to_string(), TIMEOUT).expect("connects");
        other.upload("web", 2, &blobs[2]).expect("out-of-band full upload");

        let (_, m3) = uploader.upload(&mut rc, "web", 3, &blobs[3]).expect("seq 3");
        assert_eq!(m3, UploadMode::FullResync, "stale base must fall back to a full blob");
        // Re-aligned: deltas flow again.
        let (total, m4) = uploader.upload(&mut rc, "web", 4, &blobs[4]).expect("seq 4");
        assert_eq!(m4, UploadMode::Delta);
        assert_eq!(total, 5);

        assert_eq!(
            rc.fetch_sum("web").expect("aggregate"),
            offline_sum(&blobs),
            "stripes={stripes}: resync fallback changed the aggregate"
        );
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Out-of-order retries: a delta for a (series, seq) the server already
/// folded — the retry after a lost ack — answers `Duplicate` and counts
/// nothing twice, even when the shadow has since moved on; a delta
/// whose base has not arrived yet answers `Resync`, never a misfold.
#[test]
fn duplicate_and_out_of_order_deltas_never_double_count() {
    let exe = kernel_exe();
    let blobs = windows(&exe, 4);
    let parsed: Vec<GmonData> =
        blobs.iter().map(|b| GmonData::from_bytes(b).expect("parses")).collect();
    for stripes in STRIPE_COUNTS {
        let dir = tmpdir(&format!("dup-s{stripes}"));
        let handle = start(durable(&dir, stripes));
        let mut rc = client(&handle);

        rc.upload("web", 0, &blobs[0]).expect("seq 0 full");
        let d1 = encode_delta(&parsed[0], &parsed[1]).expect("encodes");
        assert_eq!(
            rc.upload_delta("web", 0, 1, &d1).expect("seq 1 delta"),
            DeltaOutcome::Accepted { total: 2 }
        );

        // A delta against a base the server has not applied (seq 2 is
        // missing): resync, not a guess.
        let d3 = encode_delta(&parsed[2], &parsed[3]).expect("encodes");
        assert_eq!(
            rc.upload_delta("web", 2, 3, &d3).expect("roundtrips"),
            DeltaOutcome::Resync { expected: Some(1) }
        );

        // The retry of seq 1's delta after a lost ack: duplicate → the
        // existing total, nothing folded twice.
        assert_eq!(
            rc.upload_delta("web", 0, 1, &d1).expect("retry roundtrips"),
            DeltaOutcome::Accepted { total: 2 }
        );

        // Fill the gap and finish the stream in order.
        let d2 = encode_delta(&parsed[1], &parsed[2]).expect("encodes");
        assert_eq!(
            rc.upload_delta("web", 1, 2, &d2).expect("seq 2 delta"),
            DeltaOutcome::Accepted { total: 3 }
        );
        assert_eq!(
            rc.upload_delta("web", 2, 3, &d3).expect("seq 3 delta"),
            DeltaOutcome::Accepted { total: 4 }
        );

        assert_eq!(rc.fetch_sum("web").expect("aggregate"), offline_sum(&blobs));
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
