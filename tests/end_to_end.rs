//! Whole-pipeline integration tests: compile → execute under the monitor
//! → condense to a profile file → post-process → present, checked against
//! the machine's exact ground truth.

use graphprof::{analyze, Gprof, Options};
use graphprof_machine::{CompileOptions, Executable, Machine, MachineConfig};
use graphprof_monitor::profiler::{profile_to_completion, RuntimeProfiler};
use graphprof_monitor::GmonData;
use graphprof_workloads::{paper, synthetic};

fn profile(
    program: &graphprof_machine::Program,
    tick: u64,
) -> (Executable, GmonData, graphprof_machine::GroundTruth) {
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, machine) = profile_to_completion(exe.clone(), tick).expect("runs");
    let truth = machine.ground_truth().expect("truth enabled");
    (exe, gmon, truth)
}

#[test]
fn call_counts_are_exact_not_sampled() {
    // Arc counts come from the monitoring routine, not sampling, so they
    // must match ground truth exactly even at absurdly coarse ticks.
    let (exe, gmon, truth) = profile(&paper::output_program(), 5_000);
    let analysis = analyze(&exe, &gmon).expect("analyzes");
    for routine in truth.routines() {
        let entry = analysis.call_graph().entry(&routine.name);
        let counted = entry.map(|e| e.calls.external + e.calls.recursive).unwrap_or(0);
        assert_eq!(counted, routine.calls, "{}", routine.name);
    }
}

#[test]
fn flat_self_times_sum_to_sampled_total() {
    // "Notice that for this profile, the individual times sum to the
    // total execution time" (§5.1).
    for tick in [1u64, 13, 100] {
        let (exe, gmon, _) = profile(&paper::symbol_table_program(), tick);
        let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
            .analyze(&exe, &gmon)
            .expect("analyzes");
        let sum: f64 = analysis.flat().rows().iter().map(|r| r.self_seconds).sum();
        let sampled = gmon.sampled_cycles() as f64;
        assert!(
            (sum + analysis.unattributed_seconds() - sampled).abs() < 1e-6,
            "tick {tick}: {sum} + unattributed != {sampled}"
        );
    }
}

#[test]
fn entry_routine_inherits_the_whole_program() {
    // On an acyclic workload with a single spontaneous root, the root's
    // self+descendants must equal total time.
    let (exe, gmon, _) = profile(&paper::abstraction_program(10, 30, 200), 1);
    let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
        .analyze(&exe, &gmon)
        .expect("analyzes");
    let main = analysis.call_graph().entry("main").expect("main entry");
    let total = analysis.total_seconds();
    assert!(
        (main.total_seconds() - total).abs() < total * 1e-9,
        "main {} vs total {total}",
        main.total_seconds()
    );
    assert!((main.percent - 100.0).abs() < 1e-6);
}

#[test]
fn propagated_times_track_ground_truth_on_a_dag() {
    // With fine sampling, every routine's self+descendants should track
    // the machine's exact inclusive time on acyclic workloads.
    let (exe, gmon, truth) =
        profile(&synthetic::layered_dag(11, synthetic::DagParams::default()), 1);
    let analysis = Gprof::new(Options::default().cycles_per_second(1.0))
        .analyze(&exe, &gmon)
        .expect("analyzes");
    for routine in truth.routines() {
        if routine.calls == 0 {
            continue;
        }
        let entry = analysis
            .call_graph()
            .entry(&routine.name)
            .unwrap_or_else(|| panic!("{} has an entry", routine.name));
        let measured = entry.total_seconds();
        let exact = routine.total_cycles as f64;
        // The estimate is statistical only through the "average time per
        // call" assumption; layered DAGs reconverge shared callees, so
        // allow a modest tolerance.
        assert!(
            (measured - exact).abs() <= exact * 0.35 + 50.0,
            "{}: measured {measured} vs exact {exact}",
            routine.name
        );
    }
}

#[test]
fn unprofiled_routines_get_time_but_no_arcs() {
    // §3.1: "Routines that are not profiled run at full speed [...] no
    // arcs will be recorded whose destinations are in these routines."
    let source = "
        routine main { loop 10 { call library } }
        noprofile routine library { work 500 }
    ";
    let program = graphprof_machine::asm::parse(source).expect("parses");
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), 5).expect("runs");
    let analysis = analyze(&exe, &gmon).expect("analyzes");
    let row = analysis.flat().row("library").expect("library sampled");
    assert!(row.self_seconds > 0.0, "time is sampled regardless");
    assert_eq!(row.calls, None, "but no call counts exist");
    // The dynamic graph has no arc into library (static discovery still
    // sees the call instruction, count 0).
    let lib = analysis.graph().node_by_name("library").expect("node exists");
    assert_eq!(analysis.graph().calls_into(lib), 0);
}

#[test]
fn indirect_calls_are_recorded_dynamically() {
    // Functional-variable calls are invisible statically but the monitor
    // sees them (§2: the dynamic graph "may include arcs to functional
    // parameters or variables that the static call graph may omit").
    let (exe, gmon, truth) = profile(&synthetic::fan_out_indirect_program(5, 4), 10);
    let analysis = analyze(&exe, &gmon).expect("analyzes");
    for i in 0..5 {
        let name = format!("dest{i}");
        let entry = analysis.call_graph().entry(&name).expect("dest entry");
        assert_eq!(entry.calls.external, 4, "{name}");
        assert_eq!(truth.routine(&name).expect("truth").calls, 4);
        // The single dispatch site fans out: all parents are `dispatch`.
        assert_eq!(entry.parents.len(), 1);
        assert_eq!(entry.parents[0].name, "dispatch");
    }
}

#[test]
fn profile_file_round_trip_preserves_analysis() {
    let (exe, gmon, _) = profile(&paper::symbol_table_program(), 7);
    let bytes = gmon.to_bytes();
    let back = GmonData::from_bytes(&bytes).expect("reads back");
    let a = analyze(&exe, &gmon).expect("analyzes");
    let b = analyze(&exe, &back).expect("analyzes");
    assert_eq!(a.render_flat(), b.render_flat());
    assert_eq!(a.render_call_graph(), b.render_call_graph());
}

#[test]
fn never_called_listing_matches_reachability() {
    let source = "
        routine main { call used }
        routine used { work 100 }
        routine dead1 { work 1 }
        routine dead2 { call dead1 }
    ";
    let program = graphprof_machine::asm::parse(source).expect("parses");
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let (gmon, _) = profile_to_completion(exe.clone(), 5).expect("runs");
    // Without the static graph, dead1 has no arcs at all; with it, the
    // static arc dead2->dead1 exists but carries no calls. Either way the
    // never-called listing names both dead routines.
    let analysis =
        Gprof::new(Options::default().static_graph(false)).analyze(&exe, &gmon).expect("analyzes");
    assert_eq!(analysis.flat().never_called(), ["dead1", "dead2"]);
}

#[test]
fn renders_are_deterministic() {
    let (exe, gmon, _) = profile(&paper::symbol_table_program(), 7);
    let a = analyze(&exe, &gmon).expect("analyzes");
    let b = analyze(&exe, &gmon).expect("analyzes");
    assert_eq!(a.render_flat(), b.render_flat());
    assert_eq!(a.render_call_graph(), b.render_call_graph());
}

#[test]
fn run_for_then_snapshot_matches_final_profile_when_run_completes() {
    // Driving the machine in slices with a snapshot at the end must agree
    // with a straight run.
    let program = paper::output_program();
    let exe = program.compile(&CompileOptions::profiled()).expect("compiles");
    let tick = 10;

    let (gmon_straight, _) = profile_to_completion(exe.clone(), tick).expect("runs");

    let mut profiler = RuntimeProfiler::new(&exe, tick);
    let config = MachineConfig { cycles_per_tick: tick, ..MachineConfig::default() };
    let mut machine = Machine::with_config(exe.clone(), config);
    while !machine.halted() {
        let _ = machine.run_for(&mut profiler, 137).expect("slice runs");
    }
    let gmon_sliced = profiler.finish();
    assert_eq!(gmon_straight, gmon_sliced);
}
